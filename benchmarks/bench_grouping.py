"""E8: bias-domain grouping — solve-time speedup and the granularity
trade-off (DESIGN.md, "Bias-domain grouping"; paper Sec. 3.3 + Sec. 4).

The paper's premise is *physically clustered* FBB: a handful of bias
domains, not a knob per row.  The grouping layer makes that granularity
explicit, and this bench gates its two headline claims on the largest
catalog circuit (industrial3, the paper's biggest Table 1 module):

1. **Speedup** — ILP and heuristic cost scale with the decision-row
   count, so solving at ``bands:8`` (8 domains) instead of identity
   (per-row) must be >= 3x faster, combined across both method
   families (best-of-3 wall-clock, reduction + expansion included).
2. **Trade-off monotonicity** — the physical prediction: coarser
   domains mean fewer well-separation boundaries (cheaper layout) but
   higher leakage (less precise compensation).  Swept with the exact
   ILP over *nested* band cuts (each coarser cut set is a subset of
   the finer one, cuts at ``floor(i*N/k)`` for power-of-two ``k``), so
   leakage monotonicity is guaranteed by construction — every coarse
   assignment is expressible at the finer granularity — rather than
   empirical.  The equal-divmod ``bands:<k>`` splits do not nest, so
   the sweep builds its groupings explicitly.
3. **Identity equivalence** — ``grouping="identity"`` must reproduce
   the ungrouped solver's assignment bit for bit, both through the
   pass-through path and through the full aggregate/solve/expand
   machinery.

Artefact: ``benchmarks/out/grouping.txt`` (referenced by
EXPERIMENTS.md).
"""

import time

import pytest

from repro.core import solve, solve_single_bb
from repro.flow import format_grouping_tradeoff
from repro.grouping import RowGrouping, reduce_problem, solve_grouped
from repro.layout.wells import well_separation

DESIGN = "industrial3"  # largest catalog circuit (Table 1's biggest)
BETA = 0.05
CLUSTERS = 3
GROUPED_SPEC = "bands:8"
REQUIRED_SPEEDUP = 3.0
SWEEP_BAND_COUNTS = (2, 4, 8, 16, 32)


def _nested_banding(num_rows: int, num_bands: int) -> RowGrouping:
    """Contiguous bands with cuts at ``floor(i * N / k)``.

    For ``k | k'`` every cut of the ``k``-banding is a cut of the
    ``k'``-banding (``i*N/k == (i*k'/k)*N/k'``), so the power-of-two
    sweep's feasible sets nest — which is what makes the exact-ILP
    leakage curve provably monotone in granularity.
    """
    cuts = sorted({num_rows * index // num_bands
                   for index in range(1, num_bands)})
    bounds = [0] + cuts + [num_rows]
    return RowGrouping.from_band_sizes(
        [hi - lo for lo, hi in zip(bounds, bounds[1:])],
        name=f"nested:{num_bands}")


def _best_of(repeats, func):
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.benchmark(group="grouping")
def test_grouping_speedup_and_tradeoff(flow_factory, problem_factory,
                                       out_dir):
    flow = flow_factory(DESIGN)
    problem = problem_factory(DESIGN, BETA)
    baseline = solve_single_bb(problem)

    # -- gate 1: solve-time speedup at bands:8 vs identity -------------
    timings = {}
    for spec in ("identity", GROUPED_SPEC):
        for method in ("heuristic:row-descent", "ilp:highs"):
            opts = ({"time_limit_s": 300.0}
                    if method.startswith("ilp") else {})
            timings[(spec, method)], _ = _best_of(3, lambda: solve_grouped(
                problem, method, CLUSTERS, grouping=spec,
                placed=flow.placed, **opts))
    identity_s = sum(timings[("identity", m)]
                     for _s, m in timings if _s == "identity")
    grouped_s = sum(timings[(GROUPED_SPEC, m)]
                    for _s, m in timings if _s == GROUPED_SPEC)
    speedup = identity_s / grouped_s

    # -- gate 2: granularity trade-off, swept with the exact ILP over
    # nested cuts (coarse feasible sets are subsets of finer ones) ----
    sweep = [_nested_banding(problem.num_rows, count)
             for count in SWEEP_BAND_COUNTS]
    sweep.append(RowGrouping.identity(problem.num_rows))
    rows = []
    for banding in sweep:
        solve_s, solution = _best_of(1, lambda: solve_grouped(
            problem, "ilp:highs", CLUSTERS, grouping=banding,
            placed=flow.placed, time_limit_s=300.0))
        wells = well_separation(flow.placed, list(solution.levels))
        rows.append({
            "spec": banding.name,
            "groups": solution.num_groups,
            "savings_pct": solution.savings_vs(baseline.leakage_nw),
            "leakage_uw": solution.leakage_uw,
            "boundaries": wells.num_boundaries,
            "domains": solution.num_domains,
            "solve_s": solve_s,
        })

    # -- gate 3: identity equivalence, both paths ----------------------
    direct = solve(problem, "heuristic:row-descent", CLUSTERS)
    via_spec = solve_grouped(problem, "heuristic:row-descent", CLUSTERS,
                             grouping="identity", placed=flow.placed)
    aggregated = reduce_problem(problem,
                                RowGrouping.identity(problem.num_rows))
    via_reduce = solve(aggregated, "heuristic:row-descent", CLUSTERS)

    text = format_grouping_tradeoff(DESIGN, BETA, rows)
    text += (f"\n\nsolve-time speedup at {GROUPED_SPEC} vs identity "
             f"(heuristic + ILP, best of 3): {speedup:.1f}x "
             f"({identity_s * 1e3:.1f} ms -> {grouped_s * 1e3:.1f} ms; "
             f"gate >= {REQUIRED_SPEEDUP:.0f}x)\n")
    (out_dir / "grouping.txt").write_text(text)
    print("\n" + text)

    # gate 1: G << N must buy real solver time on the largest circuit
    assert speedup >= REQUIRED_SPEEDUP, (
        f"grouped solve only {speedup:.2f}x faster "
        f"(identity {identity_s:.4f}s, {GROUPED_SPEC} {grouped_s:.4f}s)")

    # gate 2: coarser -> fewer well boundaries, higher leakage
    # (rows are ordered coarsest-first; identity is the finest point)
    for coarse, fine in zip(rows, rows[1:]):
        assert coarse["boundaries"] <= fine["boundaries"], (
            f"{coarse['spec']} has more well boundaries than "
            f"{fine['spec']}")
        assert coarse["leakage_uw"] >= fine["leakage_uw"] - 1e-9, (
            f"{coarse['spec']} leaks less than finer {fine['spec']}")
    assert rows[0]["leakage_uw"] > rows[-1]["leakage_uw"], (
        "granularity made no leakage difference at all")
    assert rows[0]["boundaries"] < rows[-1]["boundaries"], (
        "granularity made no well-boundary difference at all")

    # gate 3: identity is bit-identical through every path
    assert via_spec.levels == direct.levels
    assert via_reduce.levels == direct.levels
    assert via_spec.leakage_nw == direct.leakage_nw
