"""E8 / Figure 6: placed-and-routed c5315 with two vbs rail pairs.

The paper's demonstrator: the c5315 benchmark placed, clustered, and
routed with one bundle of body-bias lines (2 vbs = 4 rails) through the
core.  This bench produces the same artefact as DEF + SVG and verifies
the rails' geometry.
"""

import pytest

from repro.core import solve_heuristic
from repro.layout import route_bias_rails, svg_layout
from repro.lefdef import read_def, write_def


@pytest.mark.benchmark(group="fig6")
def test_fig6_routed_c5315(benchmark, flow_factory, problem_factory,
                           out_dir):
    flow = flow_factory("c5315")
    problem = problem_factory("c5315", 0.10)

    def place_and_route():
        solution = solve_heuristic(problem, 3)
        route = route_bias_rails(flow.placed, solution.levels_array,
                                 problem.vbs_levels)
        def_path = out_dir / "fig6_c5315.def"
        write_def(flow.placed, def_path,
                  special_nets=route.special_nets())
        svg_layout(flow.placed, solution.levels,
                   out_dir / "fig6_c5315.svg", route=route)
        return solution, route, def_path

    solution, route, def_path = benchmark.pedantic(
        place_and_route, rounds=1, iterations=1)

    parsed = read_def(def_path)
    print(f"\nFig. 6 artefact: {def_path.name} with "
          f"{len(parsed.components)} components, "
          f"{len(parsed.special_nets)} bias rails "
          f"({route.num_bias_values} vbs values); SVG alongside")

    # the paper routed one bundle for 2 vbs values on the small design
    assert 1 <= route.num_bias_values <= 2
    assert len(parsed.special_nets) == len(route.rails)
    assert len(parsed.components) == flow.num_gates
    # rails span the full core height on the top metal
    for net in parsed.special_nets:
        (x1, y1, x2, y2) = net.rects_um[0]
        assert y1 == 0.0
        assert y2 == pytest.approx(flow.placed.floorplan.core_height_um)
        assert net.layer == flow.clib.tech.bias_rules.rail_layer
