"""E5: cluster-count sweep on c5315 (paper Sec. 5).

The paper sweeps C = 2..11 on c5315 at beta = 5 % and observes only a
2.56 % marginal savings gain — the argument for the cheap 2-rail
(3-cluster) physical implementation.  The report separates the two
counts the old version conflated: *voltage clusters* (distinct bias
values, what the paper's C budgets) and *physical domains* (contiguous
same-voltage row wells, what the layout pays for) — with bias-domain
grouping in the stack these genuinely differ, see DESIGN.md,
"Bias-domain grouping".
"""

import pytest

from repro.core import solve_heuristic, solve_single_bb
from repro.flow import format_sweep

BUDGETS = tuple(range(2, 12))


@pytest.mark.benchmark(group="cluster-sweep")
def test_cluster_sweep_c5315(benchmark, problem_factory, out_dir):
    problem = problem_factory("c5315", 0.05)
    baseline = solve_single_bb(problem)

    def sweep():
        return [solve_heuristic(problem, budget) for budget in BUDGETS]

    solutions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    savings = [solution.savings_vs(baseline.leakage_nw)
               for solution in solutions]
    clusters = [solution.num_clusters for solution in solutions]
    domains = [solution.num_domains for solution in solutions]

    text = format_sweep("c5315", 0.05, BUDGETS, savings,
                        clusters=clusters, domains=domains)
    extra = savings[-1] - savings[1]  # C=11 over C=3
    text += (f"\n\nC=11 gains only {extra:+.2f} points over C=3 "
             "(paper: +2.56 over the C=2..11 sweep)\n")
    (out_dir / "cluster_sweep.txt").write_text(text)
    print("\n" + text)

    # monotone non-decreasing in C
    for lower, higher in zip(savings, savings[1:]):
        assert higher >= lower - 1e-9
    # the paper's point: beyond 3 clusters the marginal gain is small
    assert extra < 6.0
    # but the first clusters matter
    assert savings[0] > 5.0
    # voltage clusters respect the budget; physical domains are what the
    # layout pays and can exceed the voltage count (interleaved rows)
    for budget, voltages, wells in zip(BUDGETS, clusters, domains):
        assert voltages <= budget
        # every distinct voltage occupies at least one contiguous run
        assert wells >= voltages
