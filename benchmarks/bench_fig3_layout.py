"""E3 / Figure 3: the row-biased standard-cell layout style.

Fig. 3 shows two rows under two vbs values: bias contact cells placed
under the rail pairs every ~50 um, no well separation inside a row, and
a separation strip between the differently-biased adjacent rows.  This
bench reconstructs that scene on a real placed design and verifies the
implementation rules.
"""

import pytest

from repro.core import solve_heuristic
from repro.layout import (ascii_layout, insert_contacts, route_bias_rails,
                          well_separation)


@pytest.mark.benchmark(group="fig3")
def test_fig3_row_bias_style(benchmark, flow_factory, problem_factory,
                             out_dir):
    flow = flow_factory("c1355")
    problem = problem_factory("c1355", 0.10)

    def build_scene():
        solution = solve_heuristic(problem, 3)
        contacts = insert_contacts(flow.placed)
        wells = well_separation(flow.placed, solution.levels_array)
        route = route_bias_rails(flow.placed, solution.levels_array,
                                 problem.vbs_levels)
        return solution, contacts, wells, route

    solution, contacts, wells, route = benchmark.pedantic(
        build_scene, rounds=1, iterations=1)

    art = ascii_layout(flow.placed, solution.levels, width_chars=64,
                       route=route)
    report = [
        "Figure 3 reproduction: row-level bias implementation",
        "",
        art,
        "",
        f"contact stations: {sum(len(p.station_x_um) for p in contacts.rows)}"
        f" ({contacts.rows[0].cells_per_station} cells each), max row"
        f" utilization increase {contacts.max_utilization_increase:.1%}"
        f" (paper bound ~6%)",
        f"well-separation boundaries: {wells.num_boundaries}, area overhead"
        f" {wells.area_overhead_percent:.2f}% (paper bound <5%)",
        f"bias rails: {len(route.rails)} on {route.rails[0].layer}"
        if route.rails else "bias rails: none",
    ]
    text = "\n".join(report)
    (out_dir / "fig3_layout.txt").write_text(text + "\n")
    print("\n" + text)

    # rows in the same cluster need no separation; only boundaries pay
    assert wells.num_boundaries < flow.placed.num_rows
    assert contacts.max_utilization_increase <= 0.065
    # every row has at least one contact station (biasing rule)
    assert all(plan.station_x_um for plan in contacts.rows)
    # two distributed voltages -> two rail pairs, as drawn in Fig. 3
    assert len(route.rails) == 2 * route.num_bias_values
