"""E4 / Table 1: the paper's main results table.

Runs all nine benchmarks at beta in {5 %, 10 %}: Single BB baseline
leakage, exact-ILP and heuristic savings at C in {2, 3}, and the
timing-constraint counts.  Mirrors the paper's treatment of the two
largest industrial designs (no ILP results).

Shape assertions (not absolute numbers — see EXPERIMENTS.md):
  * savings at beta=10% exceed savings at beta=5% per design;
  * C=3 never saves less than C=2;
  * the ILP never saves less than the heuristic;
  * constraint counts grow with beta;
  * the c6288-class multiplier is the worst-savings design.
"""

import pytest

from repro.circuits import BENCHMARK_NAMES
from repro.flow import ExperimentConfig, format_table1, run_design_beta

#: paper values for reference in the report artefact
PAPER_TABLE1 = """\
Paper Table 1 (for comparison):
Benchmark      Gates Rows beta SingleBB  ILP C=2 C=3   Heur C=2 C=3  Constr
c1355            439   13   5%   0.17u   11.76 17.65   11.76 11.76      32
c1355            439   13  10%   0.33u   30.30 33.33   27.27 30.30      72
c3540            842   15   5%   0.42u   23.08 23.08   11.54 19.23      31
c3540            842   15  10%   0.82u   40.82 44.90   30.61 34.69      70
c5315           1308   23   5%   0.26u   21.43 21.43   16.67 16.67      11
c5315           1308   23  10%   0.49u   46.34 47.56   31.71 36.59      33
c7552           1666   26   5%   0.63u   19.05 20.63   17.46 17.46       5
c7552           1666   26  10%   1.23u   44.72 47.15   30.89 36.59      11
adder_128bits   2026   28   5%   1.43u   26.57 30.07   23.08 25.17      26
adder_128bits   2026   28  10%   2.26u   28.76 33.63   20.80 25.22      55
c6288           2740   33   5%   1.74u    4.60  5.17    3.45  3.45     773
c6288           2740   33  10%   3.38u   22.78 23.96   18.64 18.64     810
industrial1     4219   41   5%   3.07u   20.85 24.76   16.94 18.57     136
industrial1     4219   41  10%   6.13u   33.77 36.22   22.51 24.63     237
industrial2    10464   63   5%   5.83u       -     -    8.58  8.58     489
industrial2    10464   63  10%  11.36u       -     -   24.74 24.74    1502
industrial3    23898   94   5%  12.25u       -     -   15.67 16.41    1012
industrial3    23898   94  10%  23.88u       -     -   25.21 25.21    2867
"""


@pytest.mark.benchmark(group="table1")
def test_table1_full(benchmark, flow_factory, out_dir):
    config = ExperimentConfig(
        betas=(0.05, 0.10),
        cluster_budgets=(2, 3),
        ilp_time_limit_s=60.0,
        skip_ilp_above_rows=70,  # paper: no ILP on industrial2/3
    )

    def regenerate():
        rows = []
        for name in BENCHMARK_NAMES:
            flow = flow_factory(name)
            for beta in config.betas:
                rows.append(run_design_beta(flow, beta, config))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table = format_table1(rows)
    (out_dir / "table1.txt").write_text(
        "Table 1 reproduction\n\n" + table + "\n\n" + PAPER_TABLE1)
    print("\n" + table)

    by_design = {}
    for row in rows:
        by_design.setdefault(row.design, {})[row.beta] = row

    for design, betas in by_design.items():
        low, high = betas[0.05], betas[0.10]
        # savings grow with beta (heuristic, C=3)
        assert (high.heuristic_savings[3]
                >= low.heuristic_savings[3] - 1e-9), design
        # constraint counts grow with beta
        assert high.num_constraints >= low.num_constraints, design
        for row in (low, high):
            # C=3 never hurts
            assert (row.heuristic_savings[3]
                    >= row.heuristic_savings[2] - 1e-9), design
            # single BB leakage grows with beta within a design
            for clusters in (2, 3):
                ilp = row.ilp_savings[clusters]
                if ilp is not None:
                    assert (ilp >= row.heuristic_savings[clusters]
                            - 1e-6), design
        assert high.single_bb_uw > low.single_bb_uw, design

    # the multiplier is the worst-savings design at beta=5% (paper: 4.6%)
    low_savings = {d: r[0.05].heuristic_savings[3]
                   for d, r in by_design.items()}
    assert min(low_savings, key=low_savings.get) == "c6288"

    # ILP skipped on the two largest designs, like the paper
    for design in ("industrial2", "industrial3"):
        assert by_design[design][0.05].ilp_savings[2] is None
