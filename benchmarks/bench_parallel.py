"""Serial vs process-pool population tuning on a 1000-die population.

The parallel execution engine (``repro/flow/parallel.py``) shards a
Monte Carlo population's out-of-budget dies across a
``ProcessPoolExecutor``; every die's calibration is independent, so the
sweep should scale with cores while staying bit-identical to the serial
reference path.  This bench tunes the same 1000-die c1355 population
serially and with 4 workers, asserts the summaries are equal, and
writes the artefact to ``benchmarks/out/parallel.txt`` (referenced by
EXPERIMENTS.md).

Acceptance (tiered by host size, so a shared CI runner cannot fail the
gate nondeterministically):

* more than 4 usable cores — the 4-worker sweep must be >= 2x faster
  than serial (the full engine claim, with scheduling headroom);
* exactly 4 usable cores (public ubuntu-latest runners: 4 shared
  vCPUs) — a relaxed >= 1.3x still proves real parallel speedup while
  tolerating runner contention;
* fewer cores than workers — a process pool cannot beat one busy
  core, so the gate degrades to the bit-identity assertions and the
  artefact records the measured ratio with a note.

Both modes are timed best-of-2 to amortize cold pool spawn and noise.
"""

import os
import time

import pytest

from repro.tuning import TuningController, tune_population
from repro.variation import sample_dies

DESIGN = "c1355"
DIES = 1000
SEED = 0
WORKERS = 4
REQUIRED_SPEEDUP = 2.0
RELAXED_SPEEDUP = 1.3  # hosts with exactly WORKERS (shared) cores


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="parallel-tuning")
def test_parallel_population_tuning_speedup(flow_factory, out_dir):
    flow = flow_factory(DESIGN)
    population = sample_dies(flow.placed, DIES, seed=SEED,
                             store_scales=False)
    controller = TuningController(flow.placed, flow.clib)
    slow_dies = len(population.slow_dies())

    # Best-of-2 per mode: shared CI runners are noisy and the first
    # pooled run additionally pays cold process-spawn; the gate should
    # measure the engine, not scheduler jitter.
    def timed(workers):
        best_s, summary = float("inf"), None
        for _ in range(2):
            started = time.perf_counter()
            summary = tune_population(controller, population,
                                      workers=workers)
            best_s = min(best_s, time.perf_counter() - started)
        return best_s, summary

    serial_s, serial = timed(1)
    parallel_s, parallel = timed(WORKERS)

    assert parallel == serial  # bit-identical summary, floats and all
    speedup = serial_s / parallel_s
    cores = _usable_cores()
    if cores > WORKERS:
        required = REQUIRED_SPEEDUP
        gate_note = f"ENFORCED at {required:.1f}x (> {WORKERS} cores)"
    elif cores == WORKERS:
        required = RELAXED_SPEEDUP
        gate_note = (f"ENFORCED at relaxed {required:.1f}x (exactly "
                     f"{WORKERS} possibly-shared cores)")
    else:
        required = None
        gate_note = ("skipped (host has fewer cores than workers; "
                     "equivalence still asserted)")

    text = "\n".join([
        f"parallel population tuning: {DESIGN}, {DIES} dies "
        f"(seed {SEED}), {slow_dies} out-of-budget dies tuned",
        f"  serial  (workers=1): {serial_s:8.3f} s  (best of 2)",
        f"  pooled  (workers={WORKERS}): {parallel_s:8.3f} s  (best of 2)",
        f"  speedup:             {speedup:8.2f}x "
        f"(required >= {REQUIRED_SPEEDUP:.0f}x above {WORKERS} cores, "
        f">= {RELAXED_SPEEDUP:.1f}x at exactly {WORKERS})",
        f"  usable cores:        {cores}",
        f"  speedup gate:        {gate_note}",
        "",
        f"tuned yield {serial.yield_after:.3f} "
        f"(before {serial.yield_before:.3f}), "
        f"{serial.recovered} recovered / {serial.lost} lost",
        "parallel summary is bit-identical to serial "
        "(asserted, not sampled).",
    ])
    (out_dir / "parallel.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)

    if required is not None:
        assert speedup >= required
