"""Warm vs cold Table 1 sweep through the content-addressed cache.

The `repro-fbb sweep` batch interface memoizes characterized libraries,
implemented flows and solved rows in the artifact cache
(``repro.flow.cache``), so re-running a sweep spec-for-spec should cost
only cache lookups.  This bench runs the same Table 1 RunSpec batch
twice through one fresh cache and records the cold/warm wall-clock
ratio plus the hit counters, writing the artefact to
``benchmarks/out/cache.txt`` (referenced by EXPERIMENTS.md).

Acceptance: the warm sweep must be >= 50x faster than the cold one,
produce bit-identical payloads, and hit the run cache on every spec.
"""

import time

import pytest

from repro.api import RunSpec, run_many
from repro.flow import ArtifactCache, format_cache_stats

DESIGN = "c1355"
BETAS = (0.05, 0.10)
REQUIRED_SPEEDUP = 50.0


@pytest.mark.benchmark(group="artifact-cache")
def test_cache_warm_vs_cold_sweep(benchmark, out_dir):
    specs = [RunSpec(kind="table1", design=DESIGN, beta=beta,
                     ilp_time_limit_s=60.0) for beta in BETAS]
    cache = ArtifactCache()

    started = time.perf_counter()
    cold = run_many(specs, cache=cache)
    cold_s = time.perf_counter() - started

    warm = benchmark.pedantic(lambda: run_many(specs, cache=cache),
                              rounds=3, iterations=1)
    warm_s = benchmark.stats.stats.mean
    speedup = cold_s / warm_s

    assert [r.cache_hit for r in cold] == [False] * len(specs)
    assert all(r.cache_hit for r in warm)
    assert [r.payload for r in warm] == [r.payload for r in cold]

    stats = cache.stats()
    text = "\n".join([
        f"artifact-cache sweep: {DESIGN}, betas {BETAS}, "
        f"{len(specs)} table1 RunSpecs",
        f"  cold sweep (miss path): {cold_s:8.3f} s",
        f"  warm sweep (hit path):  {warm_s:8.3f} s",
        f"  speedup:                {speedup:8.0f}x "
        f"(required >= {REQUIRED_SPEEDUP:.0f}x)",
        "",
        format_cache_stats(stats),
        "",
        "warm payloads are bit-identical to cold payloads "
        "(asserted, not sampled).",
    ])
    (out_dir / "cache.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)

    assert speedup >= REQUIRED_SPEEDUP
    assert stats["by_kind"]["run"]["hits"] >= len(specs)
