"""Batched vs scalar STA over a Monte Carlo die population.

The population experiments (Table 1 betas, Fig. 2 tuning) need the
critical delay of thousands of process-sampled dies.  This bench times
``sample_dies`` on an ISCAS-class design with 1000 dies through both
engines and records the speedup of the vectorized backend, while
asserting the two engines' betas agree bit-for-bit (the DESIGN.md
validation contract, "Scalar vs batched STA").

Acceptance: batched must be >= 10x faster than the scalar per-die path
with per-die critical delays within 1e-9.
"""

import time

import numpy as np
import pytest

from repro.variation import sample_dies

DESIGN = "c1355"
NUM_DIES = 1000
REQUIRED_SPEEDUP = 10.0
BETA_TOLERANCE = 1e-9


@pytest.mark.benchmark(group="batched-sta")
def test_batched_sta_speedup(benchmark, flow_factory, out_dir):
    flow = flow_factory(DESIGN)

    started = time.perf_counter()
    scalar = sample_dies(flow.placed, NUM_DIES, seed=7, engine="scalar",
                         store_scales=False)
    scalar_s = time.perf_counter() - started

    batched = benchmark.pedantic(
        lambda: sample_dies(flow.placed, NUM_DIES, seed=7,
                            engine="batched", store_scales=False),
        rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.mean
    speedup = scalar_s / batched_s

    worst = float(np.abs(batched.betas - scalar.betas).max())
    text = "\n".join([
        f"batched vs scalar STA: {DESIGN} "
        f"({flow.num_gates} gates), {NUM_DIES} dies",
        f"  scalar  per-die engine: {scalar_s:8.3f} s",
        f"  batched array engine:   {batched_s:8.3f} s",
        f"  speedup:                {speedup:8.1f}x "
        f"(required >= {REQUIRED_SPEEDUP:.0f}x)",
        f"  worst |beta difference|: {worst:.3e} "
        f"(required <= {BETA_TOLERANCE:.0e})",
    ])
    (out_dir / "batched_sta.txt").write_text(text + "\n")
    print("\n" + text)

    np.testing.assert_allclose(batched.betas, scalar.betas,
                               rtol=0, atol=BETA_TOLERANCE)
    assert batched.nominal_delay_ps == scalar.nominal_delay_ps
    assert speedup >= REQUIRED_SPEEDUP


@pytest.mark.benchmark(group="batched-sta")
def test_batched_sta_population_scaling(benchmark, flow_factory, out_dir):
    """Throughput stays super-linear-friendly as the population grows."""
    flow = flow_factory(DESIGN)
    sizes = (100, 1000, 10000)

    def sweep():
        # warm-up run so first-touch allocation costs don't skew the
        # smallest population's timing
        sample_dies(flow.placed, sizes[0], seed=11, engine="batched",
                    store_scales=False)
        timings = {}
        for num in sizes:
            started = time.perf_counter()
            sample_dies(flow.placed, num, seed=11, engine="batched",
                        store_scales=False)
            timings[num] = time.perf_counter() - started
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"batched STA population scaling: {DESIGN}"]
    for num in sizes:
        rate = num / timings[num]
        lines.append(f"  {num:>6} dies: {timings[num]:7.3f} s "
                     f"({rate:9.0f} dies/s)")
    text = "\n".join(lines)
    (out_dir / "batched_sta_scaling.txt").write_text(text + "\n")
    print("\n" + text)

    # Per-die cost at 10k dies may degrade at most 5x vs the 100-die
    # baseline (cache pressure), never the 100x a python loop would pay
    # on top of its constant factor.
    assert timings[10000] < 5 * 100 * max(timings[100], 1e-3)
