"""Per-die vs batched population calibration on a 1000-die population.

The batched calibration engine (``repro/tuning/batched.py``) advances
every out-of-budget die one sense/allocate/verify step per matrix pass:
one allocation per *distinct* quantised estimate (cached across
passes), one batched-STA verify per pass (incremental via ``refine``
from the second pass on).  This bench tunes the same 1000-die c1355
population through the per-die reference loop and the batched engine,
asserts the summaries are bit-identical, and writes the artefact to
``benchmarks/out/tuning_throughput.txt`` (referenced by
EXPERIMENTS.md).

Acceptance (tiered by host size, mirroring ``bench_parallel.py``, so a
shared CI runner cannot fail the gate nondeterministically):

* 4 or more usable cores — the batched engine must tune >= 10x more
  dies/s than the per-die loop (the ROADMAP claim; measured ~50x on an
  unloaded host);
* 2-3 usable cores — a relaxed >= 6x still proves the engine while
  tolerating runner contention (both paths are single-process, but
  numpy's threaded kernels and co-tenants skew small-host timings);
* 1 usable core — the gate degrades to the bit-identity assertion and
  the artefact records the measured ratio with a note.

The batched mode is timed best-of-2; the serial reference runs once
(it is the slow side by an order of magnitude, and noise on seconds of
runtime cannot tip a 10x gate).
"""

import os
import time

import pytest

from repro.tuning import TuningController, tune_population
from repro.variation import sample_dies

DESIGN = "c1355"
DIES = 1000
SEED = 0
REQUIRED_SPEEDUP = 10.0
RELAXED_SPEEDUP = 6.0  # small (2-3 core, possibly shared) hosts
ENFORCE_CORES = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="tuning-throughput")
def test_batched_calibration_throughput(flow_factory, out_dir):
    flow = flow_factory(DESIGN)
    population = sample_dies(flow.placed, DIES, seed=SEED,
                             store_scales=False)
    controller = TuningController(flow.placed, flow.clib)
    slow_dies = len(population.slow_dies())

    started = time.perf_counter()
    serial = tune_population(controller, population)
    serial_s = time.perf_counter() - started

    batched_s, batched = float("inf"), None
    for _ in range(2):
        fresh = TuningController(flow.placed, flow.clib)
        started = time.perf_counter()
        batched = tune_population(fresh, population, mode="batched")
        batched_s = min(batched_s, time.perf_counter() - started)

    assert batched == serial  # bit-identical summary, floats and all
    speedup = serial_s / batched_s
    cores = _usable_cores()
    if cores >= ENFORCE_CORES:
        required = REQUIRED_SPEEDUP
        gate_note = (f"ENFORCED at {required:.0f}x "
                     f"(>= {ENFORCE_CORES} cores)")
    elif cores >= 2:
        required = RELAXED_SPEEDUP
        gate_note = (f"ENFORCED at relaxed {required:.0f}x "
                     f"({cores} possibly-shared cores)")
    else:
        required = None
        gate_note = ("skipped (single-core host; equivalence still "
                     "asserted)")

    text = "\n".join([
        f"batched population calibration: {DESIGN}, {DIES} dies "
        f"(seed {SEED}), {slow_dies} out-of-budget dies tuned",
        f"  per-die loop:   {serial_s:8.3f} s "
        f"({DIES / serial_s:9.1f} dies/s)",
        f"  batched engine: {batched_s:8.3f} s "
        f"({DIES / batched_s:9.1f} dies/s, best of 2)",
        f"  speedup:        {speedup:8.2f}x "
        f"(required >= {REQUIRED_SPEEDUP:.0f}x at {ENFORCE_CORES}+ "
        f"cores, >= {RELAXED_SPEEDUP:.0f}x at 2-3)",
        f"  usable cores:   {cores}",
        f"  speedup gate:   {gate_note}",
        "",
        f"tuned yield {serial.yield_after:.3f} "
        f"(before {serial.yield_before:.3f}), "
        f"{serial.recovered} recovered / {serial.lost} lost",
        "batched summary is bit-identical to the per-die loop "
        "(asserted, not sampled).",
    ])
    (out_dir / "tuning_throughput.txt").write_text(text + "\n",
                                                   encoding="utf-8")
    print("\n" + text)

    if required is not None:
        assert speedup >= required
