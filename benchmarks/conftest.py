"""Shared benchmark fixtures: cached design flows and an output dir.

Each benchmark regenerates one table or figure of the paper and writes
its artefact under ``benchmarks/out/`` so EXPERIMENTS.md can reference
the measured numbers.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

OUT_DIR = Path(__file__).resolve().parent / "out"

_FLOW_CACHE = {}


@pytest.fixture(scope="session")
def out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def flow_factory():
    """Session-cached `implement()` so benches share synthesis/placement."""
    from repro.flow import implement

    def get(name: str):
        if name not in _FLOW_CACHE:
            _FLOW_CACHE[name] = implement(name)
        return _FLOW_CACHE[name]

    return get


@pytest.fixture(scope="session")
def problem_factory(flow_factory):
    """(design, beta) -> FBBProblem, reusing cached flows and paths."""
    from repro.core import build_problem

    cache = {}

    def get(name: str, beta: float):
        key = (name, beta)
        if key not in cache:
            flow = flow_factory(name)
            cache[key] = build_problem(
                flow.placed, flow.clib, beta, analyzer=flow.analyzer,
                paths=list(flow.paths), dcrit_ps=flow.dcrit_ps)
        return cache[key]

    return get
