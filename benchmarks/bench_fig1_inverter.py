"""E1 / Figure 1: inverter delay & leakage vs forward body bias.

Paper anchors: linear speed-up reaching ~21 % at vbs = 0.95 V,
exponential leakage growth reaching ~12.74x, and a junction-current
knee that clamps the usable range to 0..0.5 V.
"""

import pytest

from repro.tech import sweep_inverter, usable_bias_limit


def _format_sweep(points):
    lines = [f"{'vbs (V)':>8} {'delay (ps)':>11} {'speedup %':>10} "
             f"{'leakage (nW)':>13} {'ratio':>8} {'junction %':>11}"]
    for point in points:
        lines.append(
            f"{point.vbs:>8.2f} {point.delay_ps:>11.2f} "
            f"{point.speedup_fraction * 100:>10.2f} "
            f"{point.leakage_nw:>13.4f} {point.leakage_ratio:>8.2f} "
            f"{point.junction_fraction * 100:>11.4f}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig1")
def test_fig1_inverter_sweep(benchmark, out_dir):
    points = benchmark(sweep_inverter)

    table = _format_sweep(points)
    (out_dir / "fig1_inverter_sweep.txt").write_text(
        "Figure 1 reproduction: inverter vs forward body bias\n"
        "paper anchors: 21% speedup and 12.74x leakage at 0.95 V\n\n"
        + table + "\n")
    print("\n" + table)

    last = points[-1]
    # paper anchor: ~21% speed-up at 0.95 V
    assert last.speedup_fraction == pytest.approx(0.21, abs=0.01)
    # paper anchor: ~12.74x leakage at 0.95 V
    assert last.leakage_ratio == pytest.approx(12.74, rel=0.03)
    # linear speed-up, exponential leakage
    speedups = [p.speedup_fraction for p in points]
    increments = [b - a for a, b in zip(speedups, speedups[1:])]
    assert max(increments) < 2.5 * min(increments)
    ratios = [b.leakage_nw / a.leakage_nw
              for a, b in zip(points, points[1:])]
    assert min(ratios) > 1.1


@pytest.mark.benchmark(group="fig1")
def test_fig1_usable_range(benchmark):
    """Paper Sec. 3.2: junction current limits usable FBB to 0.5 V."""
    limit = benchmark(usable_bias_limit)
    assert limit == pytest.approx(0.5)
