"""Incremental ECO re-solve vs full re-solve over a drift lifetime.

``EcoSolver`` (``repro/tuning/eco.py``) decomposes the Sec. 4
allocation per bias domain and memoises every sub-solve in an
``ArtifactCache``, so a drift epoch only pays for its *dirty* domains
— rows whose quantised beta actually moved.  This bench ages
``industrial3`` through a multi-epoch NBTI trajectory
(``repro/variation/drift.py``), re-solves every epoch twice — once
against the solver's persistent cache (incremental) and once against a
cold cache (the reference full re-solve, same code path) — asserts the
two are bit-identical per epoch, and writes the artefact to
``benchmarks/out/aging.txt`` (referenced by EXPERIMENTS.md).

Two gates:

* **speedup** — over the post-warmup epochs (the first resolve is cold
  on both sides by definition) the incremental path must be faster
  than the full path, tiered by host size exactly as
  ``bench_tuning_throughput.py``: >= 5x on 4+ usable cores, a relaxed
  >= 3x on 2-3 possibly-shared cores, equivalence-only on 1 core;
* **zero-drift collapse** — re-resolving the final epoch's unchanged
  field must report no dirty domains and add *zero* new misses to the
  ``eco-domain`` cache kind (pure hits; asserted unconditionally via
  the cache tier counters, never skipped).

Equal final yield is by construction: the per-epoch assignments are
asserted bit-identical, so incremental and full recover exactly the
same dies.
"""

import os
import time

import numpy as np
import pytest

from repro.flow.cache import ArtifactCache
from repro.tuning.eco import DOMAIN_KIND, EcoSolver
from repro.variation import DriftModel, NbtiModel, row_betas_epochs

DESIGN = "industrial3"
EPOCHS = 8
SEED = 7
REQUIRED_SPEEDUP = 5.0
RELAXED_SPEEDUP = 3.0  # small (2-3 core, possibly shared) hosts
ENFORCE_CORES = 4

#: mild trajectory: the shared NBTI mean sits one quantisation step up
#: (every domain is degraded, so the full re-solve pays for all of
#: them) and stays inside that step across the lifetime, while the
#: small activity walk re-quantises only the correlated patches that
#: drift near a step boundary — the regime the incremental path is
#: designed for.
DRIFT = DriftModel(nbti=NbtiModel(prefactor_v=0.008),
                   activity_sigma_v=0.0004,
                   correlation_length_fraction=0.25)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="aging")
def test_incremental_eco_resolve_speedup(flow_factory, out_dir):
    flow = flow_factory(DESIGN)
    placed = flow.placed
    betas = row_betas_epochs(placed, placed.library.tech, DRIFT, SEED,
                             EPOCHS)

    incremental = EcoSolver(placed, flow.clib)
    full = EcoSolver(placed, flow.clib)

    inc_s, full_s, dirty_counts = [], [], []
    for epoch in range(EPOCHS):
        started = time.perf_counter()
        inc = incremental.resolve(betas[epoch])
        inc_s.append(time.perf_counter() - started)

        started = time.perf_counter()
        ref = full.resolve(betas[epoch], cache=ArtifactCache())
        full_s.append(time.perf_counter() - started)

        # Bit-identical splice — same levels, same leakage, every epoch.
        assert inc.levels == ref.levels
        assert inc.leakage_nw == ref.leakage_nw
        dirty_counts.append(len(inc.dirty_domains))

    # Zero-drift epoch: the unchanged field must collapse to pure
    # cache hits — no dirty domains, no new eco-domain misses.
    before = incremental.cache.stats()["by_kind"][DOMAIN_KIND]["misses"]
    repeat = incremental.resolve(betas[-1])
    after = incremental.cache.stats()["by_kind"][DOMAIN_KIND]["misses"]
    assert repeat.dirty_domains == ()
    assert after == before
    assert repeat.levels == inc.levels

    # Epoch 0 is cold on both sides by definition; the incremental
    # claim is about the steady state, so the gate covers epochs 1+.
    inc_steady = sum(inc_s[1:])
    full_steady = sum(full_s[1:])
    speedup = full_steady / inc_steady
    cores = _usable_cores()
    if cores >= ENFORCE_CORES:
        required = REQUIRED_SPEEDUP
        gate_note = (f"ENFORCED at {required:.0f}x "
                     f"(>= {ENFORCE_CORES} cores)")
    elif cores >= 2:
        required = RELAXED_SPEEDUP
        gate_note = (f"ENFORCED at relaxed {required:.0f}x "
                     f"({cores} possibly-shared cores)")
    else:
        required = None
        gate_note = ("skipped (single-core host; equivalence still "
                     "asserted)")

    mean_dirty = float(np.mean(dirty_counts[1:]))
    text = "\n".join([
        f"incremental ECO re-solve: {DESIGN}, {EPOCHS} drift epochs "
        f"(seed {SEED}), {incremental.num_domains} bias domains",
        f"  full re-solve:  {full_steady:8.3f} s over epochs 1+ "
        f"(cold cache each epoch)",
        f"  incremental:    {inc_steady:8.3f} s over epochs 1+ "
        f"(mean {mean_dirty:.1f} dirty domains/epoch)",
        f"  speedup:        {speedup:8.2f}x "
        f"(required >= {REQUIRED_SPEEDUP:.0f}x at {ENFORCE_CORES}+ "
        f"cores, >= {RELAXED_SPEEDUP:.0f}x at 2-3)",
        f"  usable cores:   {cores}",
        f"  speedup gate:   {gate_note}",
        "",
        f"dirty domains per epoch: {dirty_counts}",
        "zero-drift epoch re-resolve: 0 dirty domains, 0 new "
        "eco-domain cache misses (asserted, never skipped)",
        "incremental assignment is bit-identical to the full re-solve "
        "every epoch (asserted, not sampled).",
    ])
    (out_dir / "aging.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)

    if required is not None:
        assert speedup >= required
