"""E7: ILP vs heuristic runtime (paper Sec. 5).

The paper reports the heuristic running >1000x faster than the ILP on
large benchmarks, with the ILP failing to converge on Industrial2/3.
Our lp_solve stand-in is the pure-Python branch & bound; the heuristic
is the two-pass greedy.  HiGHS timings are reported alongside for
context (modern MILP solvers have moved on since 2009).
"""

import time

import pytest

from repro.core import solve_heuristic, solve_ilp
from repro.errors import TimeoutError_

DESIGNS = ("c1355", "c3540", "c5315")
BNB_TIME_LIMIT_S = 60.0


@pytest.mark.benchmark(group="runtime")
def test_heuristic_runtime_linear_in_rows(benchmark, problem_factory,
                                          out_dir):
    """Heuristic cost is O(P*N) CheckTiming calls (paper Sec. 4.3)."""
    problems = [problem_factory(name, 0.05) for name in DESIGNS]

    def run_all():
        return [solve_heuristic(problem, 3) for problem in problems]

    solutions = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for problem, solution in zip(problems, solutions):
        bound = 2 * problem.num_levels * problem.num_rows
        assert solution.extras["check_timing_calls"] <= bound


@pytest.mark.benchmark(group="runtime")
def test_ilp_vs_heuristic_gap(benchmark, problem_factory, out_dir):
    lines = [f"{'design':<10} {'rows':>5} {'constr':>7} "
             f"{'heuristic':>10} {'B&B ILP':>10} {'HiGHS':>8} {'ratio':>8}"]
    results = {}

    def measure():
        for name in DESIGNS:
            problem = problem_factory(name, 0.05)
            start = time.perf_counter()
            solve_heuristic(problem, 2)
            heuristic_s = time.perf_counter() - start

            start = time.perf_counter()
            try:
                solve_ilp(problem, 2, backend="bnb",
                          time_limit_s=BNB_TIME_LIMIT_S)
                bnb_s = time.perf_counter() - start
                bnb_text = f"{bnb_s:>9.2f}s"
            except TimeoutError_:
                bnb_s = BNB_TIME_LIMIT_S
                bnb_text = "  timeout"

            start = time.perf_counter()
            solve_ilp(problem, 2, backend="highs")
            highs_s = time.perf_counter() - start
            results[name] = (heuristic_s, bnb_s, highs_s)
            lines.append(
                f"{name:<10} {problem.num_rows:>5} "
                f"{problem.num_constraints:>7} {heuristic_s:>9.3f}s "
                f"{bnb_text} {highs_s:>7.2f}s "
                f"{bnb_s / max(heuristic_s, 1e-9):>8.0f}")
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "\n".join(lines) + (
        "\n\nratio = B&B-ILP time / heuristic time; the paper reports "
        ">1000x on its largest ILP-solvable designs.\n")
    (out_dir / "runtime_scaling.txt").write_text(text)
    print("\n" + text)

    # the heuristic beats the exact branch & bound by orders of magnitude
    worst_ratio = max(bnb / max(h, 1e-9)
                      for h, bnb, _ in results.values())
    assert worst_ratio > 100.0
