"""E2 / Figure 2: central bias generator tuning four circuit blocks.

Fig. 2 sketches a die with four blocks, each flagging timing alarms
(Tc1..Tc4) and receiving its own pair of vbs rails from a central
generator.  This bench runs that scenario end to end in simulation:
four blocks with different die slowdowns, each calibrated closed-loop.
"""

import pytest

from repro.flow import characterized_library
from repro.tuning import TuningController

BLOCKS = ("c1355", "c3540", "c5315", "c7552")
SLOWDOWNS = (0.02, 0.05, 0.08, 0.03)


@pytest.mark.benchmark(group="fig2")
def test_fig2_four_block_tuning(benchmark, flow_factory, out_dir):
    clib = characterized_library()

    def tune_all():
        outcomes = {}
        for name, beta in zip(BLOCKS, SLOWDOWNS):
            flow = flow_factory(name)
            controller = TuningController(flow.placed, flow.clib,
                                          max_clusters=3)
            outcomes[name] = (beta, controller.calibrate(beta),
                              controller.generator)
        return outcomes

    outcomes = benchmark.pedantic(tune_all, rounds=1, iterations=1)

    lines = ["Figure 2 scenario: central generator tuning four blocks", ""]
    for name, (beta, outcome, generator) in outcomes.items():
        rails = ", ".join(f"{rail}={vbs * 1000:.0f}mV"
                          for rail, vbs in generator.rail_voltages.items())
        lines.append(
            f"block {name:<8} slowdown {beta:.0%}: "
            f"{'converged' if outcome.converged else 'FAILED'} in "
            f"{outcome.iterations} iteration(s), rails [{rails}], "
            f"leakage {outcome.leakage_nw / 1e3:.3f} uW")
    text = "\n".join(lines)
    (out_dir / "fig2_tuning.txt").write_text(text + "\n")
    print("\n" + text)

    for name, (beta, outcome, generator) in outcomes.items():
        assert outcome.converged, name
        # each block uses at most the 2 rails the generator provides
        assert len(generator.rail_voltages) <= clib.tech.bias_rules \
            .max_bias_rails, name
        assert outcome.solution is not None
        assert outcome.solution.num_clusters <= 3
