"""Spatial-vs-uniform compensation across correlation lengths.

The paper's central claim is that *physically clustered* FBB beats
die-uniform biasing because intra-die variation is spatially
correlated.  This bench reproduces that claim on the block-local
``soc_quad`` workload: one correlated Monte Carlo population per
correlation length, each calibrated twice through ``repro.api``
(kind="spatial") — per-region sensing + clustered allocation vs the
classic single-replica sensor + single-voltage FBB — and writes the
sweep to ``benchmarks/out/spatial.txt`` (referenced by EXPERIMENTS.md).

Acceptance gates (shape assertions, per EXPERIMENTS.md convention):

* **dominance** — at every correlation length the spatial arm achieves
  strictly higher timing yield, or equal yield at strictly lower
  recovered-die leakage, than the uniform arm;
* **monotonicity in correlation** — the yield advantage
  (spatial - uniform) grows monotonically as the correlation length
  shrinks from die-coherent (1.0) toward the cluster scale (0.25): a
  single sensor speaks for the whole die only while the die drifts as
  one;
* **monotonicity in resolution** — at block-scale correlation, the
  spatial arm's recovered yield is monotone non-decreasing in the
  sensing/cluster resolution (1 region/2 clusters -> 2/2 -> 4/3):
  finer physical clustering can only see (and fix) more;
* **determinism** — the spatial study payload is bit-identical between
  ``workers=1`` and ``workers=4`` (modulo the ``*runtime_s``
  wall-clock diagnostics, i.e. equal under ``stable_payload``).
"""

import pytest

from repro.api import RunSpec, run
from repro.flow import ArtifactCache, stable_payload

DESIGN = "soc_quad"
DIES = 80
SEED = 5
REGIONS = 4
BETA_BUDGET = 0.02
#: die-coherent -> cluster-scale; below the region scale the advantage
#: fades again (short-range noise averages out along every path), so
#: the sweep stops where the paper's argument lives
CORRELATION_LENGTHS = (1.0, 0.5, 0.25)
#: (sensor regions, cluster budget) resolution sweep at block-scale
#: correlation — coarse single-monitor sensing up to one region/block
RESOLUTIONS = ((1, 2), (2, 2), (4, 3))
PROCESS = {
    "sigma_inter_v": 0.004,
    "sigma_intra_v": 0.03,
    "intra_independent_fraction": 0.1,
}


def _spec(correlation: float, workers: int = 1,
          regions: int = REGIONS, clusters: int = 3) -> RunSpec:
    return RunSpec(
        kind="spatial", design=DESIGN, num_dies=DIES, seed=SEED,
        beta_budget=BETA_BUDGET, num_regions=regions, clusters=clusters,
        process=dict(PROCESS, correlation_length_fraction=correlation),
        workers=workers)


@pytest.mark.benchmark(group="spatial")
def test_spatial_beats_uniform_and_gap_tracks_correlation(out_dir):
    cache = ArtifactCache()
    rows = [run(_spec(corr), cache=cache).to_spatial_row()
            for corr in CORRELATION_LENGTHS]

    lines = [
        f"spatial-vs-uniform compensation: {DESIGN}, {DIES} dies "
        f"(seed {SEED}), {REGIONS} sensor regions, "
        f"beta budget {BETA_BUDGET:.0%}",
        "",
        f"{'corr len':>9} {'yield':>7} {'uniform':>9} {'spatial':>9} "
        f"{'gap':>7} {'U leak uW':>11} {'S leak uW':>11} {'saving':>8}",
    ]
    gaps = []
    for row in rows:
        gap = row.spatial_yield - row.uniform_yield
        gaps.append(gap)
        saving = 100.0 * (1.0 - row.spatial_leakage_uw
                          / row.uniform_leakage_uw)
        lines.append(
            f"{row.correlation_length:>9.3f} {row.yield_before:>6.1%} "
            f"{row.uniform_yield:>8.1%} {row.spatial_yield:>8.1%} "
            f"{gap:>+7.3f} {row.uniform_leakage_uw:>11.3f} "
            f"{row.spatial_leakage_uw:>11.3f} {saving:>7.1f}%")

        # Dominance gate: strictly higher yield, or equal yield at
        # strictly lower leakage on the commonly recovered dies.
        assert (row.spatial_yield > row.uniform_yield
                or (row.spatial_yield == row.uniform_yield
                    and row.spatial_leakage_uw < row.uniform_leakage_uw)), (
            f"spatial arm does not dominate at correlation "
            f"{row.correlation_length}: {row}")

    # Monotonicity gate: the advantage grows as correlation shrinks.
    assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:])), (
        f"yield advantage not monotone in correlation length: {gaps}")

    # Resolution gate: at block-scale correlation, finer sensing /
    # cluster budgets recover monotonically more yield.
    resolution_rows = [
        run(_spec(CORRELATION_LENGTHS[-1], regions=regions,
                  clusters=clusters), cache=cache).to_spatial_row()
        for regions, clusters in RESOLUTIONS]
    spatial_yields = [row.spatial_yield for row in resolution_rows]
    assert all(later >= earlier for earlier, later
               in zip(spatial_yields, spatial_yields[1:])), (
        f"spatial yield not monotone in resolution: {spatial_yields}")
    lines += [
        "",
        f"resolution sweep at correlation {CORRELATION_LENGTHS[-1]} "
        "(regions/clusters -> spatial yield): "
        + ", ".join(f"{regions}/{clusters} -> {a_yield:.1%}"
                    for (regions, clusters), a_yield
                    in zip(RESOLUTIONS, spatial_yields))
        + "  (gate: monotone non-decreasing)",
    ]

    # Determinism gate: workers is an execution knob, not an input.
    serial = run(_spec(CORRELATION_LENGTHS[-1], workers=1), cache=cache,
                 use_cache=False)
    pooled = run(_spec(CORRELATION_LENGTHS[-1], workers=4), cache=cache,
                 use_cache=False)
    assert stable_payload(serial.payload) == stable_payload(pooled.payload)

    lines += [
        "",
        "uniform = single central path-replica sensor + single-voltage "
        "FBB; spatial = per-region sensing + clustered allocation.",
        f"yield advantage by falling correlation length: "
        + " -> ".join(f"{gap:+.3f}" for gap in gaps)
        + "  (gate: monotone non-decreasing, spatial dominant)",
        "workers=1 vs workers=4 spatial payloads: bit-identical "
        "(asserted via stable_payload).",
    ]
    text = "\n".join(lines)
    (out_dir / "spatial.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
