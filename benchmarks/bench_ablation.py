"""Ablation benches for the design choices called out in DESIGN.md.

* PassTwo strategy: row-descent (strong reading of Fig. 5) vs
  level-sweep (literal reading).
* Row-ranking metric: the paper's 1/slack weighting vs plain
  critical-cell counts.
* Generator grid resolution: 25 / 50 / 100 mV.
"""

import pytest

from repro.core import build_problem, solve_heuristic, solve_single_bb
from repro.flow import implement
from repro.tech import Technology

DESIGNS = ("c3540", "c5315")


@pytest.mark.benchmark(group="ablation")
def test_ablation_strategy_and_ranking(benchmark, problem_factory, out_dir):
    def run():
        rows = []
        for name in DESIGNS:
            problem = problem_factory(name, 0.10)
            baseline = solve_single_bb(problem).leakage_nw
            variants = {
                "row-descent/inverse-slack": solve_heuristic(
                    problem, 3, "row-descent", "inverse-slack"),
                "row-descent/gate-count": solve_heuristic(
                    problem, 3, "row-descent", "gate-count"),
                "level-sweep/inverse-slack": solve_heuristic(
                    problem, 3, "level-sweep", "inverse-slack"),
            }
            rows.append((name, baseline, {
                key: sol.savings_vs(baseline)
                for key, sol in variants.items()}))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["PassTwo ablation (beta=10%, C=3): savings % vs single BB", ""]
    for name, _baseline, savings in rows:
        for variant, value in savings.items():
            lines.append(f"  {name:<8} {variant:<28} {value:>7.2f}%")
        lines.append("")
    text = "\n".join(lines)
    (out_dir / "ablation_strategy.txt").write_text(text)
    print("\n" + text)

    for name, _baseline, savings in rows:
        # the strong reading dominates the literal one
        assert (savings["row-descent/inverse-slack"]
                >= savings["level-sweep/inverse-slack"] - 1e-9), name


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid_resolution(benchmark, out_dir):
    """Finer bias grids buy savings; coarser grids cost leakage."""
    def run():
        results = {}
        for resolution in (0.025, 0.05, 0.10):
            tech = Technology(name=f"repro45_{resolution}",
                              vbs_resolution=resolution)
            flow = implement("c3540", tech=tech)
            problem = build_problem(flow.placed, flow.clib, 0.10,
                                    analyzer=flow.analyzer,
                                    paths=list(flow.paths),
                                    dcrit_ps=flow.dcrit_ps)
            baseline = solve_single_bb(problem)
            clustered = solve_heuristic(problem, 3)
            results[resolution] = (baseline.leakage_uw,
                                   clustered.leakage_uw)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["bias-grid resolution ablation (c3540, beta=10%, C=3)", "",
             f"{'grid (mV)':>10} {'singleBB uW':>12} {'clustered uW':>13}"]
    for resolution, (single, clustered) in sorted(results.items()):
        lines.append(f"{resolution * 1000:>10.0f} {single:>12.3f} "
                     f"{clustered:>13.3f}")
    text = "\n".join(lines)
    (out_dir / "ablation_grid.txt").write_text(text + "\n")
    print("\n" + text)

    # a coarser grid can only cost leakage at the single-BB level
    # (PassOne rounds the needed voltage up to the next grid step)
    assert results[0.10][0] >= results[0.025][0] - 1e-9
