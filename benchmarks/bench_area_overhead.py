"""E6: physical implementation overheads (paper Sec. 3.3 + Sec. 5).

Checks, on real allocation solutions across the small benchmarks:
  * contact-cell row-utilization increase <= ~6 %;
  * well-separation area overhead < 5 %;
  * at most 2 distributed vbs rails.
"""

import pytest

from repro.core import solve_heuristic
from repro.layout import area_report

DESIGNS = ("c1355", "c3540", "c5315", "c7552")


@pytest.mark.benchmark(group="area")
def test_area_overheads(benchmark, flow_factory, problem_factory, out_dir):
    def analyse():
        reports = {}
        for name in DESIGNS:
            flow = flow_factory(name)
            problem = problem_factory(name, 0.10)
            solution = solve_heuristic(problem, 3)
            reports[name] = area_report(
                flow.placed, solution.levels_array, problem.vbs_levels)
        return reports

    reports = benchmark.pedantic(analyse, rounds=1, iterations=1)

    lines = ["implementation overheads on heuristic solutions "
             "(beta=10%, C=3)", ""]
    for name, report in reports.items():
        lines.append(report.format())
        lines.append("")
    text = "\n".join(lines)
    (out_dir / "area_overhead.txt").write_text(text)
    print("\n" + text)

    for name, report in reports.items():
        # paper: <= ~6% utilization increase from contact cells
        assert report.contacts.max_utilization_increase <= 0.065, name
        # paper: well separation area always below 5%
        assert report.wells.area_overhead_fraction < 0.05, name
        # paper: no more than two distributed voltages
        assert report.route.num_bias_values <= 2, name
        assert report.contacts.fits_without_area_growth, name
