"""E9: annealing placer — well-boundary quality and kernel throughput
(DESIGN.md, "Annealing placement"; paper Sec. 2-3.3 premise).

Row-clustered FBB is cheap exactly when timing-critical gates sit in
few contiguous rows (Sec. 3.3's < 5 % area claim).  The BFS placer
inherits whatever clustering the netlist order gives; the annealer
optimizes for it.  This bench gates the two headline claims on the
largest catalog circuit (industrial3, Table 1's biggest module):

1. **Quality** — after the same allocation flow, the ``anneal:default``
   placement must produce <= 0.8x the BFS well-separation boundaries at
   equal-or-better leakage: fewer boundaries means less separation
   area, and leakage must not pay for it.
2. **Throughput** — the batched numpy
   :meth:`~repro.placement.hpwl.HpwlKernel.delta_hpwl` evaluator must
   be >= 10x faster than the scalar per-move oracle at equal move
   count (best-of-5 wall-clock); without that margin the vectorized
   hot path would not buy the anneal its move budget.
3. **Pareto sweep** — presets (iterations axis), ``lambda_scale``
   (HPWL-vs-boundary trade) and ``t0_scale`` (exploration) swept into
   the runtime-vs-quality frontier table.

Artefact: ``benchmarks/out/placer.txt`` (referenced by
EXPERIMENTS.md).
"""

import time

import numpy as np
import pytest

from repro.core import build_problem, solve, solve_single_bb
from repro.flow import format_placer_sweep
from repro.layout.wells import well_separation
from repro.placement import HpwlKernel, MoveBatch, place_design, total_hpwl

DESIGN = "industrial3"  # largest catalog circuit (Table 1's biggest)
BETA = 0.05
CLUSTERS = 3
METHOD = "heuristic:row-descent"
BOUNDARY_GATE = 0.80   # anneal:default boundaries <= 0.8x BFS
SPEEDUP_GATE = 10.0    # batched delta-HPWL vs scalar oracle
KERNEL_MOVES = 256

#: the sweep: label -> (registry method, engine options)
SWEEP = (
    ("bfs", "bfs", {}),
    ("anneal:quick", "anneal:quick", {}),
    ("anneal:default", "anneal:default", {}),
    ("anneal:deep", "anneal:deep", {}),
    ("anneal lambda=0.25", "anneal:default", {"lambda_scale": 0.25}),
    ("anneal lambda=4", "anneal:default", {"lambda_scale": 4.0}),
    ("anneal t0x4", "anneal:default", {"t0_scale": 4.0}),
)


def _allocate(placed, clib):
    """Run the standard allocation flow on one placement."""
    problem = build_problem(placed, clib, BETA)
    baseline = solve_single_bb(problem)
    solution = solve(problem, METHOD, CLUSTERS)
    wells = well_separation(placed, list(solution.levels))
    return {
        "boundaries": wells.num_boundaries,
        "leakage_uw": solution.leakage_uw,
        "savings_pct": solution.savings_vs(baseline.leakage_nw),
    }


def _random_batch(kernel, rng, num_moves):
    """Mixed swap/relocate batch (the annealer's proposal shapes)."""
    num_gates = len(kernel.rows)
    gate_a = rng.integers(0, num_gates, num_moves)
    gate_b = rng.integers(0, num_gates, num_moves)
    is_swap = rng.random(num_moves) < 0.5
    target = rng.integers(0, kernel.num_rows, num_moves)
    ends = kernel.row_ends()
    return MoveBatch(
        gate0=gate_a,
        row0=np.where(is_swap, kernel.rows[gate_b], target),
        site0=np.where(is_swap, kernel.sites[gate_b], ends[target]),
        gate1=np.where(is_swap, gate_b, -1),
        row1=np.where(is_swap, kernel.rows[gate_a], 0),
        site1=np.where(is_swap, kernel.sites[gate_a], 0))


def _best_of(repeats, func):
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.benchmark(group="placer")
def test_placer_quality_and_kernel_throughput(flow_factory, out_dir):
    flow = flow_factory(DESIGN)
    mapped = flow.placed.netlist
    library = flow.placed.library

    # -- gate 3 data: runtime-vs-quality sweep -------------------------
    rows = []
    for label, method, opts in SWEEP:
        start = time.perf_counter()
        placed = place_design(mapped, library, placer=method, **opts)
        place_s = time.perf_counter() - start
        rows.append({
            "placer": label,
            "hpwl_um": total_hpwl(placed),
            "place_s": place_s,
            **_allocate(placed, flow.clib),
        })
    by_label = {row["placer"]: row for row in rows}
    bfs = by_label["bfs"]
    tuned = by_label["anneal:default"]

    # -- gate 2: batched evaluator vs scalar oracle --------------------
    kernel = HpwlKernel(flow.placed)
    rng = np.random.default_rng(0)
    batch = _random_batch(kernel, rng, KERNEL_MOVES)
    batched_s, batched = _best_of(5, lambda: kernel.delta_hpwl(batch))
    scalar_s, scalar = _best_of(1, lambda: np.array(
        [kernel.delta_hpwl_scalar(batch, move)
         for move in range(len(batch))]))
    speedup = scalar_s / batched_s
    assert np.array_equal(batched, scalar)

    text = format_placer_sweep(DESIGN, BETA, rows)
    text += (f"\n\nbatched delta-HPWL at {KERNEL_MOVES} moves: "
             f"{batched_s * 1e6:.0f} us vs scalar {scalar_s * 1e6:.0f} us "
             f"-> {speedup:.0f}x (gate >= {SPEEDUP_GATE:.0f}x)\n")
    (out_dir / "placer.txt").write_text(text)
    print("\n" + text)

    # gate 1: fewer well boundaries at equal-or-better leakage
    assert tuned["boundaries"] <= BOUNDARY_GATE * bfs["boundaries"], (
        f"anneal:default kept {tuned['boundaries']} boundaries vs "
        f"bfs {bfs['boundaries']} (gate <= {BOUNDARY_GATE:.0%})")
    assert tuned["leakage_uw"] <= bfs["leakage_uw"] + 1e-9, (
        "boundary savings paid for with leakage: "
        f"{tuned['leakage_uw']:.3f} uW vs bfs {bfs['leakage_uw']:.3f} uW")

    # gate 2: the vectorized hot path must carry the move budget
    assert speedup >= SPEEDUP_GATE, (
        f"batched evaluator only {speedup:.1f}x faster than scalar "
        f"({batched_s * 1e6:.0f} us vs {scalar_s * 1e6:.0f} us)")
