"""Sustained throughput of the allocation service on a mixed workload.

The serving layer (``repro.serve``) turns the paper's clustered-FBB
allocator into an always-on decision service; its economics depend on
the warm path: after the first allocation of a spec lands in the
artifact cache, every later identical request must be answered at
HTTP-overhead cost, not allocation cost.  This bench drives a real
:class:`~repro.serve.client.ServerThread` over the loopback socket
with a mixed hot/cold workload — a cold phase that executes distinct
c1355 allocations, then a hot phase hammering the same specs — plus a
burst of concurrent *identical* cold requests to measure single-flight
collapse.  The artefact goes to ``benchmarks/out/serve.txt``
(referenced by EXPERIMENTS.md).

Acceptance:

* warm requests must be >= 5x faster than cold ones (warm-path
  dominance — the mixed workload's cost is the cold executions; the
  floor is conservative because the cold specs share one implemented
  flow, so only the first request pays the full build);
* the hot phase must sustain >= 10 requests/s through the full
  HTTP + cache path (loopback, one core);
* N concurrent identical cold specs must collapse to exactly one
  execution (``coalesced == N - 1`` on the server's counters).
"""

import threading
import time

import pytest

from repro.api import RunSpec
from repro.flow import ArtifactCache, format_serve_stats
from repro.serve import ServerThread, fetch_stats, submit_spec

DESIGN = "c1355"
COLD_BETAS = (0.05, 0.08, 0.10)
HOT_ROUNDS = 20          # hot requests = HOT_ROUNDS * len(COLD_BETAS)
BURST_CLIENTS = 4        # concurrent identical cold requests
BURST_DESIGN = "c5315"   # unseen design: the burst is cold and its
BURST_BETA = 0.10        # execution window is wide enough to overlap
REQUIRED_WARM_DOMINANCE = 5.0
REQUIRED_HOT_RPS = 10.0


@pytest.mark.benchmark(group="serve")
def test_serve_mixed_workload_throughput(out_dir):
    specs = [RunSpec(kind="allocate", design=DESIGN, beta=beta)
             for beta in COLD_BETAS]
    with ServerThread(cache=ArtifactCache()) as srv:
        # cold phase: first sight of each spec, real allocations
        started = time.perf_counter()
        cold = [submit_spec(srv.url, spec) for spec in specs]
        cold_s = time.perf_counter() - started

        # hot phase: the steady-state mix, every request a cache hit
        started = time.perf_counter()
        hot = [submit_spec(srv.url, spec)
               for _ in range(HOT_ROUNDS) for spec in specs]
        hot_s = time.perf_counter() - started

        # burst phase: identical cold spec from concurrent clients;
        # single-flight must collapse them to one execution
        burst_spec = RunSpec(kind="allocate", design=BURST_DESIGN,
                             beta=BURST_BETA)
        burst_results = []
        burst_lock = threading.Lock()

        def burst_client():
            result = submit_spec(srv.url, burst_spec)
            with burst_lock:
                burst_results.append(result)

        threads = [threading.Thread(target=burst_client)
                   for _ in range(BURST_CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        burst_s = time.perf_counter() - started

        stats = fetch_stats(srv.url)

    cold_mean_s = cold_s / len(specs)
    hot_mean_s = hot_s / len(hot)
    dominance = cold_mean_s / hot_mean_s
    hot_rps = len(hot) / hot_s
    run_stats = stats["endpoints"]["run"]

    assert [r.cache_hit for r in cold] == [False] * len(specs)
    assert all(r.cache_hit for r in hot)
    for result in hot:
        reference = cold[COLD_BETAS.index(result.spec.beta)]
        assert result.payload == reference.payload

    # exactly one burst execution; every client got the same answer
    assert len(burst_results) == BURST_CLIENTS
    burst_payloads = {r.to_json() for r in burst_results}
    assert len(burst_payloads) == 1
    coalesced = stats["single_flight"]["coalesced"]
    assert coalesced == BURST_CLIENTS - 1
    assert run_stats["cache_misses"] == len(specs) + 1
    assert run_stats["requests"] == (len(specs) + len(hot)
                                     + BURST_CLIENTS)
    assert run_stats["errors"] == 0

    text = "\n".join([
        f"allocation service, mixed workload: {DESIGN}, "
        f"betas {COLD_BETAS}, inline backend, loopback HTTP",
        f"  cold phase: {len(specs)} specs in {cold_s:8.3f} s "
        f"({cold_mean_s * 1e3:9.1f} ms/request)",
        f"  hot phase:  {len(hot)} requests in {hot_s:8.3f} s "
        f"({hot_mean_s * 1e3:9.1f} ms/request, {hot_rps:7.1f} req/s)",
        f"  warm-path dominance: {dominance:8.0f}x "
        f"(required >= {REQUIRED_WARM_DOMINANCE:.0f}x)",
        f"  single-flight burst: {BURST_CLIENTS} identical cold "
        f"requests in {burst_s:.3f} s -> 1 execution, "
        f"{coalesced} coalesced",
        "",
        format_serve_stats(stats),
        "",
        "hot payloads are bit-identical to cold payloads "
        "(asserted, not sampled).",
    ])
    (out_dir / "serve.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)

    assert dominance >= REQUIRED_WARM_DOMINANCE
    assert hot_rps >= REQUIRED_HOT_RPS
