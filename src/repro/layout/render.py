"""Layout rendering: ASCII (terminal) and SVG (file) views.

Regenerates the visual artefacts of the paper: Fig. 3 (abstract two-row
layout with bias contacts and well separation) and Fig. 6 (placed &
routed c5315 with two vbs rail pairs) as ASCII/SVG, colour-coding rows
by bias cluster and overlaying the rails.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.errors import LayoutError
from repro.layout.routing import RoutePlan
from repro.placement.placed_design import PlacedDesign

_CLUSTER_CHARS = ".12abcdefg"
_CLUSTER_COLORS = ("#d9d9d9", "#f28e2b", "#4e79a7", "#59a14f", "#e15759",
                   "#b07aa1", "#edc948", "#76b7b2", "#ff9da7", "#9c755f")


def _cluster_index_map(row_levels: Sequence[int]) -> dict[int, int]:
    """Map bias level -> dense cluster index (0 reserved for no-bias)."""
    distinct = sorted(set(row_levels))
    mapping = {}
    next_index = 1
    for level in distinct:
        if level == 0:
            mapping[level] = 0
        else:
            mapping[level] = next_index
            next_index += 1
    return mapping


def ascii_layout(placed: PlacedDesign, row_levels: Sequence[int],
                 width_chars: int = 72,
                 route: RoutePlan | None = None) -> str:
    """Terminal rendering: one line per row, glyph per cluster.

    ``.`` marks no-bias rows; digits mark bias clusters; ``|`` marks
    rail positions when a route plan is given.  Rows are printed top
    row first (highest y), like a layout viewer.
    """
    if len(row_levels) != placed.num_rows:
        raise LayoutError("assignment length mismatch")
    mapping = _cluster_index_map(row_levels)
    core_width = placed.floorplan.core_width_um
    rail_columns: set[int] = set()
    if route is not None:
        for rail in route.rails:
            column = int(rail.x_um / core_width * (width_chars - 1))
            rail_columns.add(min(column, width_chars - 1))

    lines = []
    for row_index in reversed(range(placed.num_rows)):
        cluster = mapping[row_levels[row_index]]
        glyph = _CLUSTER_CHARS[min(cluster, len(_CLUSTER_CHARS) - 1)]
        used = placed.row_utilization(row_index)
        filled = int(round(used * width_chars))
        characters = [glyph if i < filled else " "
                      for i in range(width_chars)]
        for column in rail_columns:
            characters[column] = "|"
        vbs = placed.library.tech.bias_levels()[row_levels[row_index]]
        lines.append("row %3d |%s| %3.0f mV" % (
            row_index, "".join(characters), vbs * 1000))
    legend = "legend: '.'=no bias, digits=bias clusters, '|'=vbs rails"
    return "\n".join(lines + [legend])


def svg_layout(placed: PlacedDesign, row_levels: Sequence[int],
               path: str | Path, route: RoutePlan | None = None,
               scale: float = 4.0) -> None:
    """Write an SVG rendering of the clustered layout (Fig. 6 analogue)."""
    if len(row_levels) != placed.num_rows:
        raise LayoutError("assignment length mismatch")
    mapping = _cluster_index_map(row_levels)
    floorplan = placed.floorplan
    width = floorplan.core_width_um * scale
    height = floorplan.core_height_um * scale
    row_height = placed.library.tech.row_height_um * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.1f} {height:.1f}">',
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        'fill="#ffffff" stroke="#000000"/>',
    ]
    for row_index in range(placed.num_rows):
        cluster = mapping[row_levels[row_index]]
        color = _CLUSTER_COLORS[min(cluster, len(_CLUSTER_COLORS) - 1)]
        # SVG y grows downward; flip so row 0 is at the bottom.
        y = height - (row_index + 1) * row_height
        used_width = placed.row_utilization(row_index) * width
        parts.append(
            f'<rect x="0" y="{y:.1f}" width="{used_width:.1f}" '
            f'height="{row_height * 0.9:.1f}" fill="{color}"/>')
    if route is not None:
        for rail in route.rails:
            x = rail.x_um * scale
            rail_width = max(rail.width_um * scale, 1.0)
            parts.append(
                f'<rect x="{x:.1f}" y="0" width="{rail_width:.1f}" '
                f'height="{height:.1f}" fill="#222222" opacity="0.8">'
                f'<title>{rail.net_name}</title></rect>')
    parts.append("</svg>")
    Path(path).write_text("\n".join(parts) + "\n", encoding="ascii")
