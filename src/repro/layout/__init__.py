"""Physical implementation of row-clustered body biasing
(paper Sec. 3.3: wells, contacts, rails, area overhead)."""

from repro.layout.area import (MAX_UTILIZATION_INCREASE,
                               MAX_WELL_AREA_FRACTION, AreaReport,
                               area_report)
from repro.layout.contacts import (ContactPlan, RowContactPlan,
                                   insert_contacts)
from repro.layout.render import ascii_layout, svg_layout
from repro.layout.routing import BiasRail, RoutePlan, route_bias_rails
from repro.layout.wells import (WellSeparationReport,
                                boundary_count_upper_bound, well_separation)

__all__ = [
    "AreaReport",
    "BiasRail",
    "ContactPlan",
    "MAX_UTILIZATION_INCREASE",
    "MAX_WELL_AREA_FRACTION",
    "RoutePlan",
    "RowContactPlan",
    "WellSeparationReport",
    "area_report",
    "ascii_layout",
    "boundary_count_upper_bound",
    "insert_contacts",
    "route_bias_rails",
    "svg_layout",
    "well_separation",
]
