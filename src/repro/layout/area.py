"""Combined physical-implementation cost report (Sec. 3.3 + Sec. 5).

Gathers the three implementation costs of row-clustered FBB into one
report: contact-cell utilization increase, well-separation area, and
rail count — with the paper's acceptance bounds (<= 6 % utilization
increase, < 5 % area, <= 2 distributed rails) checked explicitly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.layout.contacts import ContactPlan, insert_contacts
from repro.layout.routing import RoutePlan, route_bias_rails
from repro.layout.wells import WellSeparationReport, well_separation
from repro.placement.hpwl import total_hpwl
from repro.placement.placed_design import PlacedDesign

#: the paper's reported bounds
MAX_UTILIZATION_INCREASE = 0.06
MAX_WELL_AREA_FRACTION = 0.05


@dataclass(frozen=True)
class AreaReport:
    """Implementation cost of one clustered-FBB solution."""

    design_name: str
    contacts: ContactPlan
    wells: WellSeparationReport
    route: RoutePlan
    hpwl_um: float | None = None
    """Total placement wirelength (vectorized HPWL); None when the
    report was built without it (older call sites)."""

    @property
    def within_paper_bounds(self) -> bool:
        return (self.contacts.max_utilization_increase
                <= MAX_UTILIZATION_INCREASE + 1e-9
                and self.wells.area_overhead_fraction
                < MAX_WELL_AREA_FRACTION)

    def format(self) -> str:
        lines = [
            f"implementation cost for {self.design_name}:",
            f"  contact cells: +{self.contacts.total_added_sites} sites, "
            f"max row utilization increase "
            f"{self.contacts.max_utilization_increase:.1%}",
            f"  well separation: {self.wells.num_boundaries} boundaries, "
            f"{self.wells.area_overhead_percent:.2f}% area",
            f"  bias rails: {len(self.route.rails)} "
            f"({self.route.num_bias_values} voltages)",
            f"  within paper bounds: "
            f"{'yes' if self.within_paper_bounds else 'NO'}",
        ]
        if self.hpwl_um is not None:
            lines.insert(1, f"  wirelength: {self.hpwl_um:.1f} um (HPWL)")
        return "\n".join(lines)


def area_report(placed: PlacedDesign, row_levels: Sequence[int],
                vbs_levels: Sequence[float]) -> AreaReport:
    """Full implementation-cost analysis of a cluster assignment."""
    return AreaReport(
        design_name=placed.netlist.name,
        contacts=insert_contacts(placed),
        wells=well_separation(placed, row_levels),
        route=route_bias_rails(placed, row_levels, vbs_levels),
        hpwl_um=total_hpwl(placed),
    )
