"""Well-separation overhead between adjacent rows in different clusters.

Within a row every gate shares one body voltage, so no intra-row well
separation is ever needed — the key physical advantage of row-level
clustering (Sec. 2-3.3).  The only cost appears *between* vertically
adjacent rows that landed in different clusters: their wells must be
separated by a spacing strip.  The paper reports this overhead stayed
below 5 % of the design area on every benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.placement.placed_design import PlacedDesign


@dataclass(frozen=True)
class WellSeparationReport:
    """Area cost of separating differently-biased adjacent rows."""

    boundaries: tuple[int, ...]
    """Row indices i where rows i and i+1 are in different clusters."""
    separation_um: float
    core_width_um: float
    core_area_um2: float

    @property
    def num_boundaries(self) -> int:
        return len(self.boundaries)

    @property
    def added_area_um2(self) -> float:
        return self.num_boundaries * self.separation_um * self.core_width_um

    @property
    def area_overhead_fraction(self) -> float:
        return self.added_area_um2 / self.core_area_um2

    @property
    def area_overhead_percent(self) -> float:
        return 100.0 * self.area_overhead_fraction


def well_separation(placed: PlacedDesign,
                    row_levels: Sequence[int]) -> WellSeparationReport:
    """Compute the separation strips a cluster assignment requires."""
    if len(row_levels) != placed.num_rows:
        raise LayoutError(
            f"assignment covers {len(row_levels)} rows, design has "
            f"{placed.num_rows}")
    rules = placed.library.tech.bias_rules
    boundaries = tuple(
        index for index in range(placed.num_rows - 1)
        if row_levels[index] != row_levels[index + 1])
    return WellSeparationReport(
        boundaries=boundaries,
        separation_um=rules.well_separation_um,
        core_width_um=placed.floorplan.core_width_um,
        core_area_um2=placed.floorplan.core_area_um2,
    )


def boundary_count_upper_bound(num_rows: int, num_clusters: int) -> int:
    """Worst-case boundaries for C clusters over N rows.

    With contiguous cluster bands the count is ``C - 1``; a fully
    interleaved assignment can reach ``N - 1``.  Useful for sanity
    checks in the area benchmark.
    """
    if num_clusters <= 1:
        return 0
    return num_rows - 1
