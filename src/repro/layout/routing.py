"""Body-bias rail routing on the top metal layer (Figs. 3 and 6).

Each distributed vbs value needs a *pair* of vertical rails on the top
metal — one biasing the p-wells (NMOS bodies at ``vbs``), one the
n-wells (PMOS bodies at ``Vdd - vbs``).  The paper restricts designs to
at most two distributed values (plus the no-bias default), i.e. at most
four rails, and routes them through the core (Fig. 6 shows one rail
bundle through the centre of c5315).

The router here allocates rail x-positions on the rail pitch, spreads
bundles evenly across the core, and emits DEF SPECIALNETS geometry.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.lefdef.def_io import SpecialNet
from repro.placement.placed_design import PlacedDesign


@dataclass(frozen=True)
class BiasRail:
    """One vertical bias rail."""

    net_name: str
    vbs: float
    polarity: str       # "nmos" (p-well tap) or "pmos" (n-well tap)
    x_um: float
    width_um: float
    layer: str


@dataclass(frozen=True)
class RoutePlan:
    """All rails for a clustered design."""

    rails: tuple[BiasRail, ...]
    core_height_um: float

    @property
    def num_bias_values(self) -> int:
        return len({rail.vbs for rail in self.rails})

    def special_nets(self) -> list[SpecialNet]:
        """DEF SPECIALNETS geometry for the rails."""
        nets = []
        for rail in self.rails:
            nets.append(SpecialNet(
                name=rail.net_name, layer=rail.layer,
                rects_um=[(rail.x_um, 0.0, rail.x_um + rail.width_um,
                           self.core_height_um)]))
        return nets


def route_bias_rails(placed: PlacedDesign,
                     row_levels: Sequence[int],
                     vbs_levels: Sequence[float]) -> RoutePlan:
    """Route rails for every distributed (non-zero) voltage in use.

    Raises :class:`LayoutError` if the assignment needs more distinct
    distributed voltages than the technology allows (Sec. 3.3: at most
    two, because more contact cells per station would blow up row
    utilization).
    """
    if len(row_levels) != placed.num_rows:
        raise LayoutError(
            f"assignment covers {len(row_levels)} rows, design has "
            f"{placed.num_rows}")
    rules = placed.library.tech.bias_rules
    distributed = sorted({vbs_levels[level] for level in row_levels
                          if level != 0})
    if len(distributed) > rules.max_bias_rails:
        raise LayoutError(
            f"{len(distributed)} distributed voltages exceed the "
            f"{rules.max_bias_rails}-rail limit")

    core_width = placed.floorplan.core_width_um
    rails: list[BiasRail] = []
    num_bundles = len(distributed)
    for bundle, vbs in enumerate(distributed):
        # Spread bundles evenly; each bundle holds an n/p rail pair.
        centre = core_width * (bundle + 1) / (num_bundles + 1)
        for pair_index, polarity in enumerate(("nmos", "pmos")):
            x = centre + (pair_index - 0.5) * rules.rail_pitch_um
            x = min(max(x, 0.0), core_width - rules.rail_width_um)
            rails.append(BiasRail(
                net_name=f"vbs{bundle + 1}_{polarity[0]}",
                vbs=vbs,
                polarity=polarity,
                x_um=x,
                width_um=rules.rail_width_um,
                layer=rules.rail_layer,
            ))
    return RoutePlan(rails=tuple(rails),
                     core_height_um=placed.floorplan.core_height_um)
