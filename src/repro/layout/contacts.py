"""Body-bias contact cell insertion (paper Sec. 3.3).

Design rules require body-bias contact cells every ~50 um along each row
for proper well biasing.  A row assigned to a distributed vbs needs one
contact cell per rail pair member at each station (one tapping the
p-well for NMOS, one the n-well for PMOS); no-bias rows keep their taps
tied to the supply rails, which costs the same sites.  The paper reports
a maximum ~6 % utilization increase per row with two contact cells per
50 um station and argues the spatial slack of typical rows absorbs it
without growing the die.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import LayoutError
from repro.placement.placed_design import PlacedDesign


@dataclass(frozen=True)
class RowContactPlan:
    """Contact stations for one row."""

    row: int
    station_x_um: tuple[float, ...]
    cells_per_station: int
    added_sites: int
    utilization_before: float
    utilization_after: float

    @property
    def utilization_increase(self) -> float:
        return self.utilization_after - self.utilization_before


@dataclass(frozen=True)
class ContactPlan:
    """Contact insertion result for a whole design."""

    rows: tuple[RowContactPlan, ...]
    overflowing_rows: tuple[int, ...]
    """Rows whose contacts exceed the free space (would force area growth)."""

    @property
    def max_utilization_increase(self) -> float:
        return max(plan.utilization_increase for plan in self.rows)

    @property
    def total_added_sites(self) -> int:
        return sum(plan.added_sites for plan in self.rows)

    @property
    def fits_without_area_growth(self) -> bool:
        return not self.overflowing_rows


def insert_contacts(placed: PlacedDesign,
                    cells_per_station: int | None = None) -> ContactPlan:
    """Plan contact-cell stations for every row of a placed design.

    ``cells_per_station`` defaults to the technology rule (2: one NMOS
    tap + one PMOS tap per station).  Raises :class:`LayoutError` only
    for invalid inputs; rows that cannot absorb their contacts are
    reported in ``overflowing_rows`` rather than raising, since the
    paper's mitigation (die growth) is a reporting concern.
    """
    rules = placed.library.tech.bias_rules
    if cells_per_station is None:
        cells_per_station = rules.contacts_per_station
    if cells_per_station < 1:
        raise LayoutError(
            f"cells_per_station must be >= 1, got {cells_per_station}")

    site_width = placed.library.tech.site_width_um
    contact_sites = math.ceil(rules.contact_cell_width_um / site_width)
    plans = []
    overflowing = []
    for row_index in range(placed.num_rows):
        row = placed.floorplan.row(row_index)
        num_stations = max(1, math.ceil(row.width_um / rules.contact_pitch_um))
        stations = tuple(
            min((station + 0.5) * rules.contact_pitch_um,
                row.width_um - rules.contact_cell_width_um)
            for station in range(num_stations))
        added = num_stations * cells_per_station * contact_sites
        used = placed.row_used_sites(row_index)
        before = used / row.num_sites
        after = (used + added) / row.num_sites
        if after > 1.0:
            overflowing.append(row_index)
        plans.append(RowContactPlan(
            row=row_index,
            station_x_um=stations,
            cells_per_station=cells_per_station,
            added_sites=added,
            utilization_before=before,
            utilization_after=after,
        ))
    return ContactPlan(rows=tuple(plans),
                       overflowing_rows=tuple(overflowing))
