"""Blocking client helpers and an in-process server harness
(repro.serve).

The consumer side of the always-on allocation service: small
``urllib``-based functions that submit one paper RunSpec and decode
the RunResult, plus :class:`ServerThread`, which runs a complete
:class:`~repro.serve.service.AllocationServer` on a daemon thread with
its own event loop — the harness TUTORIAL.md, the serve tests and
``benchmarks/bench_serve.py`` all drive, so the documented client code
exercises the real socket path end to end.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request
from typing import Any

from repro.errors import ServeError
from repro.flow.cache import ArtifactCache
from repro.flow.executor import ExecutionEngine
from repro.serve.service import AllocationServer

#: default per-request client timeout (allocations are seconds-scale)
DEFAULT_TIMEOUT_S = 120.0


def _request(url: str, data: bytes | None = None,
             method: str = "GET",
             timeout_s: float = DEFAULT_TIMEOUT_S) -> bytes:
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.read()
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        raise ServeError(f"HTTP {exc.code} from {url}: {detail}") from exc
    except urllib.error.URLError as exc:
        raise ServeError(f"cannot reach {url}: {exc.reason}") from exc
    except (ConnectionError, TimeoutError) as exc:
        # a draining server may reset a connection it accepted off the
        # listen backlog just before closing; surface it uniformly
        raise ServeError(f"connection to {url} failed: {exc}") from exc


def submit_spec(base_url: str, spec: Any,
                timeout_s: float = DEFAULT_TIMEOUT_S) -> Any:
    """POST one RunSpec to ``/run``; returns the decoded RunResult."""
    from repro.api import RunResult
    body = _request(f"{base_url}/run", data=spec.to_json().encode(),
                    method="POST", timeout_s=timeout_s)
    return RunResult.from_json(body.decode())


def fetch_stats(base_url: str,
                timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """GET the server's ``/stats`` counter document."""
    return json.loads(_request(f"{base_url}/stats", timeout_s=timeout_s))


def request_shutdown(base_url: str,
                     timeout_s: float = DEFAULT_TIMEOUT_S) -> dict:
    """POST ``/shutdown``: ask the server to drain and exit."""
    return json.loads(_request(f"{base_url}/shutdown", data=b"{}",
                               method="POST", timeout_s=timeout_s))


class ServerThread:
    """An :class:`AllocationServer` on a daemon thread (own event loop).

    Context-manager lifecycle: entering starts the loop, binds an
    ephemeral port and waits until the server accepts connections;
    exiting requests a graceful drain and joins the thread.  When no
    ``engine`` is passed one is built from ``cache``/``backend``/
    ``workers`` and owned (closed) by the harness.
    """

    def __init__(self, engine: ExecutionEngine | None = None,
                 cache: ArtifactCache | None = None,
                 backend: str = "inline", workers: int = 1,
                 host: str = "127.0.0.1") -> None:
        self._own_engine = engine is None
        if engine is None:
            engine = ExecutionEngine(
                cache=cache if cache is not None else ArtifactCache(),
                backend=backend, workers=workers)
        self.engine = engine
        self.host = host
        self.port: int | None = None
        self.server: AllocationServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        assert self.port is not None, "server not started"
        return f"http://{self.host}:{self.port}"

    def start(self, timeout_s: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServeError("server thread did not become ready")
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}")
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout_s)
        if self._own_engine:
            self.engine.close()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        server = AllocationServer(self.engine, host=self.host, port=0)
        await server.start()
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.serve_until_shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
