"""Serving-layer telemetry counters (repro.serve).

The paper's closed tuning loop lives or dies on its monitors; the
serving twin gets the same treatment: per-endpoint request, error,
in-flight, cache-hit/miss and single-flight-coalesced counters plus
latency aggregates, snapshotted by the ``/stats`` endpoint and
rendered by :func:`repro.flow.reports.format_serve_stats`.  All
mutation happens on the server's single event-loop thread, so the
counters need no locks; ``snapshot()`` returns plain JSON-able dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Streaming latency aggregate (count / total / min / max, in
    base seconds per the units contract)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float | None = None
    max_s: float = 0.0

    def observe(self, elapsed_s: float) -> None:
        """Fold one request's wall-clock duration into the aggregate."""
        self.count += 1
        self.total_s += elapsed_s
        self.max_s = max(self.max_s, elapsed_s)
        self.min_s = (elapsed_s if self.min_s is None
                      else min(self.min_s, elapsed_s))

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s,
                "mean_s": self.mean_s,
                "min_s": self.min_s if self.min_s is not None else 0.0,
                "max_s": self.max_s}


@dataclass
class EndpointMetrics:
    """One endpoint's counters: volume, failures, concurrency, cache
    outcome split (hit / miss / coalesced-behind-a-leader)."""

    requests: int = 0
    errors: int = 0
    in_flight: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    def to_dict(self) -> dict:
        return {"requests": self.requests, "errors": self.errors,
                "in_flight": self.in_flight,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "latency": self.latency.to_dict()}


class ServeMetrics:
    """Registry of per-endpoint counters for one server instance."""

    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(self, name: str) -> EndpointMetrics:
        """The (lazily created) counter block for one endpoint."""
        if name not in self._endpoints:
            self._endpoints[name] = EndpointMetrics()
        return self._endpoints[name]

    def snapshot(self) -> dict:
        """JSON-able view of every endpoint's counters."""
        return {name: metrics.to_dict()
                for name, metrics in sorted(self._endpoints.items())}
