"""Minimal HTTP/1.1 framing for the allocation service (repro.serve).

Just enough protocol for the paper reproduction's serving layer — the
software twin of an on-chip bias regulator's request interface — to
speak to curl, ``urllib`` and CI smoke jobs without any third-party
dependency: parse one request (line, headers, Content-Length body)
from an :mod:`asyncio` stream and render one ``Connection: close``
response.  Anything streaming, chunked or persistent is out of scope
on purpose; every exchange is one request, one response, one
connection.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ServeError

#: request-size ceiling (status line + headers + body), bytes
MAX_REQUEST_BYTES = 1 << 20

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A request the server refuses, carrying the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, target path, headers, raw body."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target with any query string stripped."""
        return self.target.split("?", 1)[0]


async def read_request(reader: asyncio.StreamReader,
                       max_bytes: int = MAX_REQUEST_BYTES
                       ) -> HttpRequest | None:
    """Parse one HTTP request from the stream.

    Returns ``None`` when the client closed the connection before
    sending anything; raises :class:`HttpError` on malformed or
    oversized input (the caller turns that into a 4xx response).
    """
    line = await reader.readline()
    if not line.strip():
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > max_bytes:
            raise HttpError(413, "request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {name!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0 or length > max_bytes:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method.upper(), target=target,
                       headers=headers, body=body)


def response_bytes(status: int, body: str | bytes,
                   content_type: str = "application/json") -> bytes:
    """Render one complete ``Connection: close`` HTTP response."""
    if isinstance(body, str):
        body = body.encode()
    head = (f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body
