"""The always-on allocation server (repro.serve; ROADMAP item 2).

The deployment form of the paper's clustered-FBB allocator: an
asyncio socket server that accepts RunSpec JSON over HTTP and answers
with RunResult JSON, the software twin of an on-chip body-bias
regulator continuously deciding "what bias settings for this die".
One event loop multiplexes every connection; actual spec execution is
bridged to a small thread pool driving the shared
:class:`repro.flow.executor.ExecutionEngine` (whose backend may itself
be a warm process pool), so the loop never blocks on an allocation.

Endpoints::

    POST /run       RunSpec JSON -> RunResult JSON (200)
    GET  /stats     counters: endpoints, single-flight, tiered cache
    GET  /healthz   liveness probe
    POST /shutdown  begin graceful drain (202)

Contracts: concurrent identical specs collapse to one execution
(:class:`~repro.serve.singleflight.SingleFlight` by ``spec_hash``);
shutdown — via ``POST /shutdown``, SIGINT or SIGTERM — stops accepting
connections, lets every in-flight request finish, then exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.flow.executor import ExecutionEngine
from repro.serve.http import (MAX_REQUEST_BYTES, HttpError, HttpRequest,
                              read_request, response_bytes)
from repro.serve.metrics import ServeMetrics
from repro.serve.singleflight import SingleFlight

#: schema of the /stats JSON document; bumped on breaking change
STATS_SCHEMA_VERSION = 1


class AllocationServer:
    """One serving instance: listener + router + metrics + drain logic.

    ``engine`` is the shared :class:`ExecutionEngine`; the server never
    executes specs itself, it resolves requests through
    ``engine.run_spec`` on a bridge thread pool.  ``port=0`` binds an
    ephemeral port (read ``self.port`` after :meth:`start` — the CI
    smoke job does exactly that via ``--port-file``).
    """

    def __init__(self, engine: ExecutionEngine,
                 host: str = "127.0.0.1", port: int = 0,
                 bridge_threads: int = 8,
                 max_request_bytes: int = MAX_REQUEST_BYTES) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.max_request_bytes = max_request_bytes
        self.metrics = ServeMetrics()
        self.single_flight = SingleFlight()
        self._bridge = ThreadPoolExecutor(max_workers=bridge_threads)
        self._server: asyncio.base_events.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._drained: asyncio.Event | None = None
        self._draining = False
        self._connections = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the ephemeral port."""
        self._shutdown = asyncio.Event()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful drain (idempotent; signal-handler safe)."""
        self._draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Drain on SIGINT/SIGTERM where the platform supports it."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_shutdown)

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown request arrives, then drain."""
        assert self._shutdown is not None, "start() first"
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work.

        New connections are refused (listener closed) and any request
        arriving on an already-open connection gets 503; requests
        already executing run to completion and deliver their
        responses before the bridge pool is released.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections and self._drained is not None:
            await self._drained.wait()
        self._bridge.shutdown(wait=True)

    # -- connection handling ----------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._connections -= 1
            if (self._connections == 0 and self._draining
                    and self._drained is not None):
                self._drained.set()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader,
                                             self.max_request_bytes)
                if request is None:
                    return
                status, body = await self._dispatch(request)
            except HttpError as exc:
                status, body = exc.status, _error_body(exc)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request
            except Exception as exc:  # never kill the loop on one request
                status, body = 500, _error_body(exc)
            writer.write(response_bytes(status, body))
            await writer.drain()
        except ConnectionError:
            pass  # response undeliverable; nothing left to do
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest) -> tuple[int, str]:
        routes = {
            ("POST", "/run"): ("run", self._handle_run),
            ("GET", "/stats"): ("stats", self._handle_stats),
            ("GET", "/healthz"): ("healthz", self._handle_healthz),
            ("POST", "/shutdown"): ("shutdown", self._handle_shutdown),
        }
        route = routes.get((request.method, request.path))
        if route is None:
            known = {path for _method, path in routes}
            if request.path in known:
                raise HttpError(405,
                                f"method {request.method} not allowed "
                                f"for {request.path}")
            raise HttpError(404, f"no such endpoint {request.path}")
        name, handler = route
        endpoint = self.metrics.endpoint(name)
        endpoint.requests += 1
        endpoint.in_flight += 1
        started = time.perf_counter()
        try:
            return await handler(request, endpoint)
        except Exception:
            endpoint.errors += 1
            raise
        finally:
            endpoint.in_flight -= 1
            endpoint.latency.observe(time.perf_counter() - started)

    # -- endpoints --------------------------------------------------------

    async def _handle_run(self, request: HttpRequest,
                          endpoint: Any) -> tuple[int, str]:
        if self._draining:
            raise HttpError(503, "server is draining")
        from repro.api import RunSpec
        try:
            spec = RunSpec.from_json(request.body.decode())
            key = spec.spec_hash()
        except (ReproError, ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"bad RunSpec: {exc}") from exc
        loop = asyncio.get_running_loop()

        async def execute() -> Any:
            return await loop.run_in_executor(
                self._bridge, self.engine.run_spec, spec)

        result, coalesced = await self.single_flight.run(key, execute)
        if coalesced:
            endpoint.coalesced += 1
        elif result.cache_hit:
            endpoint.cache_hits += 1
        else:
            endpoint.cache_misses += 1
        return 200, result.to_json()

    async def _handle_stats(self, request: HttpRequest,
                            endpoint: Any) -> tuple[int, str]:
        return 200, json.dumps(self.stats())

    async def _handle_healthz(self, request: HttpRequest,
                              endpoint: Any) -> tuple[int, str]:
        return 200, json.dumps({"status": "ok",
                                "draining": self._draining})

    async def _handle_shutdown(self, request: HttpRequest,
                               endpoint: Any) -> tuple[int, str]:
        self.request_shutdown()
        return 202, json.dumps({"status": "draining"})

    def stats(self) -> dict:
        """The ``/stats`` document: endpoint counters, single-flight
        state, the engine's tiered cache counters and backend identity."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "endpoints": self.metrics.snapshot(),
            "single_flight": self.single_flight.snapshot(),
            "cache": self.engine.cache.stats(),
            "backend": self.engine.describe(),
            "draining": self._draining,
        }


def _error_body(exc: BaseException) -> str:
    return json.dumps({"error": type(exc).__name__,
                       "message": str(exc)})


async def serve_forever(engine: ExecutionEngine, host: str = "127.0.0.1",
                        port: int = 0,
                        port_file: str | Path | None = None,
                        quiet: bool = False) -> int:
    """Run one server until SIGINT/SIGTERM/``POST /shutdown``; exit 0.

    The ``repro-fbb serve`` entry point.  With ``port=0`` the bound
    ephemeral port is announced on stdout and, when ``port_file`` is
    given, written there (how the CI smoke job finds the server).
    """
    server = AllocationServer(engine, host=host, port=port)
    await server.start()
    server.install_signal_handlers()
    if port_file is not None:
        # one-shot startup write, before any request is in flight
        Path(port_file).write_text(f"{server.port}\n")  # repro-lint: ignore[async-blocking] -- pre-serving startup write, loop is idle
    if not quiet:
        print(f"repro-fbb serve: listening on "
              f"http://{server.host}:{server.port} "
              f"(backend {server.engine.describe()['name']})")
    await server.serve_until_shutdown()
    if not quiet:
        print("repro-fbb serve: drained, exiting")
    return 0
