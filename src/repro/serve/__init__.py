"""repro.serve — the always-on clustered-FBB allocation service.

The paper's allocator, deployed: an on-chip body-bias regulator is a
continuously available decision service ("what bias settings for this
die right now"), and this package is its software twin (ROADMAP item
2; paper Sec. 5 workloads served per request).  A stdlib-``asyncio``
HTTP service accepts RunSpec JSON on ``POST /run``, drives the shared
:class:`repro.flow.executor.ExecutionEngine`, collapses concurrent
identical specs to one execution (single-flight by ``spec_hash``),
drains in-flight work on shutdown, and reports per-endpoint plus
tiered-cache counters on ``GET /stats``.

Entry points: ``repro-fbb serve`` (CLI),
:class:`~repro.serve.service.AllocationServer` (embedding),
:class:`~repro.serve.client.ServerThread` and
:func:`~repro.serve.client.submit_spec` (clients and tests).
"""

from repro.serve.client import (ServerThread, fetch_stats,
                                request_shutdown, submit_spec)
from repro.serve.metrics import (EndpointMetrics, LatencyStats,
                                 ServeMetrics)
from repro.serve.service import AllocationServer, serve_forever
from repro.serve.singleflight import SingleFlight

__all__ = [
    "AllocationServer",
    "EndpointMetrics",
    "LatencyStats",
    "ServeMetrics",
    "ServerThread",
    "SingleFlight",
    "fetch_stats",
    "request_shutdown",
    "serve_forever",
    "submit_spec",
]
