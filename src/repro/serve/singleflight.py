"""Single-flight deduplication for in-flight specs (repro.serve).

The batch engine dedupes identical RunSpecs inside one batch; a server
faces the same duplication *across concurrent requests* — e.g. every
die of a wafer asking for the paper's c1355 allocation at once.  This
module collapses them: the first request for a ``spec_hash`` becomes
the leader and actually executes, every concurrent duplicate awaits
the leader's future and receives the identical result (counted as
``coalesced``).  Once the leader resolves, the key leaves the
in-flight table — later requests hit the artifact cache instead, which
is the cheaper steady-state path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable


class SingleFlight:
    """In-flight dedup table keyed by an opaque string (``spec_hash``).

    Single-threaded by design: all calls happen on the server's event
    loop, so a dict plus per-key futures is the whole mechanism.
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.leaders = 0
        self.coalesced = 0

    @property
    def in_flight(self) -> int:
        """Number of keys currently executing."""
        return len(self._inflight)

    async def run(self, key: str,
                  supplier: Callable[[], Awaitable[Any]]
                  ) -> tuple[Any, bool]:
        """Execute ``supplier`` once per concurrently requested key.

        Returns ``(value, coalesced)``: the leader gets
        ``coalesced=False`` and runs the supplier; concurrent callers
        with the same key get ``coalesced=True`` and the leader's
        value (or its exception).  The shared future is shielded so a
        cancelled follower cannot cancel the leader's work.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            value = await supplier()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # mark retrieved: followers may all have gone away
                future.exception()
            raise
        else:
            if not future.done():
                future.set_result(value)
            return value, False
        finally:
            self._inflight.pop(key, None)

    def snapshot(self) -> dict:
        """JSON-able counter view for the ``/stats`` endpoint."""
        return {"leaders": self.leaders, "coalesced": self.coalesced,
                "in_flight": self.in_flight}
