"""RowGrouping: the bias-domain map from placement rows to well domains.

The paper's whole premise is *physically clustered* FBB (Sec. 2-3): a
few bias domains driven by a shared generator, not one knob per row.
The allocation stack nevertheless formulates an ``N_rows x P`` problem
and lets clusters emerge a-posteriori as distinct voltage levels.  A
:class:`RowGrouping` makes the granularity explicit: it maps every
placement row to a bias-domain index, so the allocators can solve the
reduced ``G x P`` problem (``G << N``) while the physical layers —
wells, contacts, rails, leakage — keep seeing full per-row level
vectors through :meth:`RowGrouping.expand`.

A grouping is just a surjective labelling ``row -> domain`` with
domains numbered ``0..G-1``.  The shipped strategies (see
``repro/grouping/registry.py``) all produce *contiguous row bands* —
the only shape a real well layout supports, and the shape the paper's
Sec. 3.3 well-separation cost model assumes — but the abstraction does
not require contiguity, so experimental strategies can relax it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import GroupingError


@dataclass(frozen=True)
class RowGrouping:
    """An immutable rows -> bias-domain assignment.

    ``group_of_row[i]`` is the domain index of row ``i``; domains must
    be numbered contiguously from 0 (every label in ``0..G-1`` occurs).
    """

    name: str
    """Canonical strategy spec this grouping came from, e.g.
    ``"identity"`` or ``"bands:8"`` (free-form for hand-built ones)."""

    group_of_row: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.group_of_row:
            raise GroupingError(f"{self.name!r}: grouping covers no rows")
        labels = np.asarray(self.group_of_row, dtype=int)
        if labels.min() < 0:
            raise GroupingError(
                f"{self.name!r}: negative domain index {labels.min()}")
        present = np.unique(labels)
        expected = np.arange(labels.max() + 1)
        if present.shape != expected.shape or np.any(present != expected):
            raise GroupingError(
                f"{self.name!r}: domain labels must cover 0..G-1 with no "
                f"gaps, got {sorted(set(self.group_of_row))}")
        object.__setattr__(self, "group_of_row",
                           tuple(int(label) for label in labels))

    # -- shape ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.group_of_row)

    @property
    def num_groups(self) -> int:
        """The paper's G: how many independent bias domains exist."""
        return max(self.group_of_row) + 1

    @property
    def is_identity(self) -> bool:
        """True when every row is its own domain (today's granularity)."""
        return self.num_groups == self.num_rows

    @cached_property
    def group_of_row_array(self) -> np.ndarray:
        return np.asarray(self.group_of_row, dtype=np.intp)

    def rows_of_groups(self) -> tuple[tuple[int, ...], ...]:
        """Member rows per domain, ascending within each domain."""
        members: list[list[int]] = [[] for _ in range(self.num_groups)]
        for row, group in enumerate(self.group_of_row):
            members[group].append(row)
        return tuple(tuple(rows) for rows in members)

    def group_sizes(self) -> np.ndarray:
        """Rows per domain, shape (G,)."""
        return np.bincount(self.group_of_row_array,
                           minlength=self.num_groups)

    @property
    def is_contiguous(self) -> bool:
        """True when every domain is one contiguous row band (the shape
        physical well layouts require)."""
        labels = self.group_of_row_array
        changes = int(np.count_nonzero(labels[1:] != labels[:-1]))
        return changes == self.num_groups - 1

    # -- the two directions -----------------------------------------------

    def expand(self, group_values: np.ndarray) -> np.ndarray:
        """Broadcast per-domain values to the full per-row vector.

        This is the group -> row direction every physical layer
        consumes: a solver's per-domain level assignment becomes the
        per-row vector wells/contacts/rails/leakage already understand.
        """
        values = np.asarray(group_values)
        if values.shape != (self.num_groups,):
            raise GroupingError(
                f"{self.name!r}: expected {self.num_groups} per-domain "
                f"values, got shape {values.shape}")
        return values[self.group_of_row_array]

    def indicator(self) -> csr_matrix:
        """The (N, G) 0/1 aggregation matrix ``S`` with
        ``S[i, g] = 1`` iff row ``i`` belongs to domain ``g``; the
        grouped problem's matrices are ``L_g = S.T @ L`` and
        ``D_g = D @ S``."""
        num_rows = self.num_rows
        return csr_matrix(
            (np.ones(num_rows), (np.arange(num_rows),
                                 self.group_of_row_array)),
            shape=(num_rows, self.num_groups))

    def aggregate_max(self, row_values: np.ndarray) -> np.ndarray:
        """Per-domain maximum of a per-row vector (the conservative
        reduction used for sensed slowdowns: a domain must be biased for
        its worst row)."""
        values = np.asarray(row_values, dtype=float)
        if values.shape != (self.num_rows,):
            raise GroupingError(
                f"{self.name!r}: expected {self.num_rows} per-row "
                f"values, got shape {values.shape}")
        out = np.full(self.num_groups, -np.inf)
        np.maximum.at(out, self.group_of_row_array, values)
        return out

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, num_rows: int) -> "RowGrouping":
        """Every row its own bias domain — today's allocation granularity."""
        if num_rows < 1:
            raise GroupingError(f"need at least one row, got {num_rows}")
        return cls(name="identity", group_of_row=tuple(range(num_rows)))

    @classmethod
    def contiguous_bands(cls, num_rows: int, num_bands: int,
                         name: str | None = None) -> "RowGrouping":
        """``num_bands`` contiguous row bands, sizes as equal as possible
        (the same deterministic split the sensor grid and the parallel
        engine use, so domains and sensor regions align by default)."""
        if num_rows < 1:
            raise GroupingError(f"need at least one row, got {num_rows}")
        if num_bands < 1:
            raise GroupingError(
                f"need at least one band, got {num_bands}")
        bands = min(num_bands, num_rows)
        base, extra = divmod(num_rows, bands)
        labels: list[int] = []
        for band in range(bands):
            labels.extend([band] * (base + (1 if band < extra else 0)))
        return cls(name=name or f"bands:{num_bands}",
                   group_of_row=tuple(labels))

    @classmethod
    def from_band_sizes(cls, sizes: list[int] | tuple[int, ...],
                        name: str = "bands") -> "RowGrouping":
        """Contiguous bands with explicit sizes (must all be >= 1)."""
        if not sizes or any(size < 1 for size in sizes):
            raise GroupingError(
                f"band sizes must all be >= 1, got {tuple(sizes)}")
        labels: list[int] = []
        for band, size in enumerate(sizes):
            labels.extend([band] * int(size))
        return cls(name=name, group_of_row=tuple(labels))
