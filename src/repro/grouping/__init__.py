"""Bias-domain grouping: allocation granularity as a first-class axis.

The paper's clustered-FBB argument (Sec. 2-3) is physical: a few well
domains driven by a shared bias generator, not one knob per row.  This
package decouples the *allocation granularity* from the physical row
count — a :class:`RowGrouping` maps rows to bias domains, a strategy
registry (``identity``, ``bands:<k>``, ``correlation:<k>``,
``community:<k>``) decides where domain boundaries fall, and
:func:`reduce_problem` / :func:`solve_grouped` let every Sec. 4
allocator run on the reduced ``G x P`` problem while wells, contacts,
rails, leakage and reports keep operating on expanded per-row level
vectors.  See DESIGN.md, "Bias-domain grouping".
"""

from repro.grouping.domains import RowGrouping
from repro.grouping.reduce import (reduce_problem, resolve_grouping,
                                   solve_grouped)
from repro.grouping.registry import (GroupingContext, GroupingEntry,
                                     GroupingRegistry, grouping_registry,
                                     is_field_driven, make_grouping,
                                     parse_grouping_spec,
                                     validate_grouping_spec)

__all__ = [
    "GroupingContext",
    "GroupingEntry",
    "GroupingRegistry",
    "RowGrouping",
    "grouping_registry",
    "is_field_driven",
    "make_grouping",
    "parse_grouping_spec",
    "reduce_problem",
    "resolve_grouping",
    "solve_grouped",
    "validate_grouping_spec",
]
