"""Problem reduction over bias domains (the grouped Sec. 4 formulation).

Both the ILP (Sec. 4.2) and the two-pass heuristic (Sec. 4.3) scale
with the number of decision rows, so solving at domain granularity is
the big lever grouping opens: a ``bands:8`` problem has 8 decision
variables where industrial3 has 94.  The reduction is *exact*, not an
approximation, because every per-row quantity the formulation uses is
additive over the rows of a domain once they share a voltage:

* leakage:   ``L_g[g, j] = sum_{i in g} L[i, j]``      (Eq. 1 objective)
* recovery:  ``D_g[k, g] = sum_{i in g} D[k, i]``      (Eq. 2 lhs)
* counts:    ``Q_g[k, g] = sum_{i in g} Q[k, i]``      (ct_i ranking)

so for any per-domain assignment the reduced problem's CheckTiming and
leakage agree with the full problem evaluated on the expanded per-row
assignment (floating-point reassociation aside, far below
``TIMING_TOL_PS``).  ``required_ps``, the path set, the voltage grid
and the speedups are untouched; per-row slowdowns reduce by ``max`` —
a display/diagnostic field on the reduced problem, since the sensed
field already entered ``D`` row by row.

:func:`solve_grouped` is the one-call façade: resolve the strategy,
reduce, dispatch to the solver registry, and expand the solution back
to rows (``grouping="identity"`` bypasses everything and is
bit-identical to a direct ``registry.solve``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import FBBProblem
from repro.core.registry import registry
from repro.core.solution import BiasSolution
from repro.errors import GroupingError
from repro.grouping.domains import RowGrouping
from repro.grouping.registry import GroupingContext, make_grouping

if TYPE_CHECKING:
    from repro.placement.placed_design import PlacedDesign


def reduce_problem(problem: FBBProblem,
                   grouping: RowGrouping) -> FBBProblem:
    """Aggregate a per-row problem into its bias-domain formulation.

    The returned :class:`FBBProblem` has ``num_rows == G`` — every
    solver consumes it unchanged — and its "rows" are the grouping's
    domains, in domain order.  Reduction is exact (sums over member
    rows); an identity grouping reproduces the input matrices entry for
    entry.
    """
    if grouping.num_rows != problem.num_rows:
        raise GroupingError(
            f"grouping {grouping.name!r} covers {grouping.num_rows} "
            f"rows, problem has {problem.num_rows}")
    indicator = grouping.indicator()
    leakage = np.asarray(indicator.T @ problem.leakage_nw)
    recovery = (problem.recovery @ indicator).tocsr()
    gate_counts = (problem.gate_counts @ indicator).tocsr()
    return FBBProblem(
        design_name=problem.design_name,
        beta=problem.beta,
        dcrit_ps=problem.dcrit_ps,
        num_rows=grouping.num_groups,
        vbs_levels=problem.vbs_levels,
        speedups=problem.speedups,
        leakage_nw=leakage,
        recovery=recovery,
        gate_counts=gate_counts,
        required_ps=problem.required_ps,
        paths=problem.paths,
        row_betas=grouping.aggregate_max(problem.row_betas),
    )


def resolve_grouping(grouping: "str | RowGrouping | None",
                     problem: FBBProblem,
                     placed: "PlacedDesign | None" = None
                     ) -> RowGrouping | None:
    """Turn a spec string (or prebuilt grouping, or None) into a
    validated :class:`RowGrouping` for a problem.

    Strategy specs resolve against the problem's own context: its row
    count, its sensed ``row_betas`` field (what ``correlation`` merges
    on) and, when supplied, the placed design (what ``community``
    reads).  ``None`` stays ``None`` — the caller's signal that no
    grouping machinery should run at all.
    """
    if grouping is None:
        return None
    if isinstance(grouping, RowGrouping):
        if grouping.num_rows != problem.num_rows:
            raise GroupingError(
                f"grouping {grouping.name!r} covers {grouping.num_rows} "
                f"rows, problem has {problem.num_rows}")
        return grouping
    context = GroupingContext(num_rows=problem.num_rows,
                              row_betas=problem.row_betas,
                              placed=placed)
    return make_grouping(grouping, context)


def solve_grouped(problem: FBBProblem, method: str = "heuristic",
                  clusters: int = 3,
                  grouping: "str | RowGrouping | None" = None,
                  placed: "PlacedDesign | None" = None,
                  **opts) -> BiasSolution:
    """Solve an allocation problem at bias-domain granularity.

    ``grouping`` is a strategy spec (``"bands:8"``), a prebuilt
    :class:`RowGrouping`, or ``None``/``"identity"`` — the latter two
    dispatch straight to the solver registry, bit-identical to an
    ungrouped ``solve``.  Otherwise the problem is reduced, solved at
    ``G`` decision rows, and the solution expanded back to per-row
    levels on the *original* problem (so leakage, timing, clusters and
    every physical layer read it unchanged).  The expanded assignment
    is re-checked against the full problem's CheckTiming as a safety
    net — the reduction is exact, so a failure here is a bug, not a
    modelling error.
    """
    resolved = resolve_grouping(grouping, problem, placed=placed)
    if resolved is None or resolved.is_identity:
        return registry.solve(problem, method, clusters, **opts)
    reduced = reduce_problem(problem, resolved)
    solution = registry.solve(reduced, method, clusters, **opts)
    expanded = solution.expand_to(problem, resolved)
    if not expanded.is_timing_feasible:
        raise GroupingError(
            f"{problem.design_name}: expanded {resolved.name!r} "
            "assignment fails CheckTiming on the ungrouped problem — "
            "reduction bug")
    return expanded
