"""Grouping-strategy registry: every bias-domain policy behind one call.

The paper fixes one granularity — a bias knob per placement row (Sec. 3)
— and only discusses coarser physical clustering qualitatively.  This
registry makes granularity a first-class, pluggable axis, mirroring the
solver registry in ``repro/core/registry.py``: strategies are named
declaratively (``"bands:8"``, ``"correlation:4"``), resolve through one
:func:`make_grouping` entry point, and new policies plug in without
touching any caller.

Registered strategies (aliases in parentheses):

* ``identity`` — every row its own domain; today's per-row granularity
  and the bit-identical baseline;
* ``bands:<k>`` — ``k`` equal contiguous row bands, the physically
  obvious well-domain floorplan;
* ``correlation:<k>`` (``corr:<k>``) — ``k`` contiguous bands grown by
  merging the adjacent rows whose *sensed slowdowns* are most alike, so
  domain boundaries land where the correlated intra-die field actually
  changes;
* ``community:<k>`` (``netlist:<k>``) — ``k`` contiguous bands grown by
  merging the adjacent rows that share the most nets, so domains follow
  the design's communication structure and critical paths cross fewer
  domain boundaries.

Every entry must carry a docstring — registration fails without one,
and ``make lint`` / CI enforce it via ``tests/grouping/test_grouping.py``
(the same policy the solver registry carries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import GroupingError
from repro.grouping.domains import RowGrouping

if TYPE_CHECKING:  # placement imports nothing from grouping: no cycle
    from repro.placement.placed_design import PlacedDesign


@dataclass(frozen=True)
class GroupingContext:
    """Everything a strategy may consult when drawing domain boundaries.

    ``num_rows`` is always required; ``row_betas`` carries the sensed or
    process slowdown field (the ``correlation`` strategy's input) and
    ``placed`` the physical design (the ``community`` strategy's input).
    """

    num_rows: int
    row_betas: np.ndarray | None = None
    placed: "PlacedDesign | None" = None

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise GroupingError(
                f"need at least one row, got {self.num_rows}")
        if self.row_betas is not None:
            betas = np.asarray(self.row_betas, dtype=float)
            if betas.shape != (self.num_rows,):
                raise GroupingError(
                    f"row_betas needs shape ({self.num_rows},), got "
                    f"{betas.shape}")
            object.__setattr__(self, "row_betas", betas)


GroupingFunc = Callable[[GroupingContext, "int | None"], RowGrouping]


@dataclass(frozen=True)
class GroupingEntry:
    """One registered grouping strategy."""

    name: str
    func: GroupingFunc
    summary: str
    """First docstring line, shown in CLI/API listings."""
    requires_param: bool = True
    """Whether the spec must carry a ``:<k>`` domain-count parameter."""
    field_driven: bool = False
    """True when boundaries depend on the sensed slowdown field (so the
    grouping must be rebuilt whenever the field changes, e.g. per
    tuning iteration)."""


class GroupingRegistry:
    """Name -> strategy dispatch table with alias support.

    Entries are callables ``func(context, param) -> RowGrouping``.
    Registration enforces a non-empty docstring so the registry doubles
    as user-facing documentation of the granularity policies.
    """

    def __init__(self) -> None:
        self._entries: dict[str, GroupingEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(self, name: str, func: GroupingFunc | None = None, *,
                 requires_param: bool = True,
                 field_driven: bool = False) -> GroupingFunc:
        """Register a strategy (usable as a decorator)."""
        if func is None:
            return lambda f: self.register(
                name, f, requires_param=requires_param,
                field_driven=field_driven)
        if name in self._entries or name in self._aliases:
            raise GroupingError(
                f"grouping strategy {name!r} is already registered")
        doc = (func.__doc__ or "").strip()
        if not doc:
            raise GroupingError(
                f"grouping strategy {name!r} has no docstring; every "
                "registry entry must document its policy")
        self._entries[name] = GroupingEntry(
            name=name, func=func, summary=doc.splitlines()[0].strip(),
            requires_param=requires_param, field_driven=field_driven)
        return func

    def alias(self, alias: str, target: str) -> None:
        """Register ``alias`` as another name for entry ``target``."""
        if alias in self._entries or alias in self._aliases:
            raise GroupingError(
                f"grouping strategy {alias!r} is already registered")
        if target not in self._entries:
            raise GroupingError(
                f"alias target {target!r} is not a registered strategy")
        self._aliases[alias] = target

    def get(self, strategy: str) -> GroupingEntry:
        """Resolve a strategy name (or alias) to its entry."""
        name = self._aliases.get(strategy, strategy)
        try:
            return self._entries[name]
        except KeyError:
            raise GroupingError(
                f"unknown grouping strategy {strategy!r}; registered "
                f"strategies: {', '.join(self.names())}") from None

    def names(self, include_aliases: bool = False) -> tuple[str, ...]:
        """Registered strategy names, sorted."""
        names = set(self._entries)
        if include_aliases:
            names |= set(self._aliases)
        return tuple(sorted(names))

    def entries(self) -> tuple[GroupingEntry, ...]:
        """All registered entries, sorted by name."""
        return tuple(self._entries[name] for name in sorted(self._entries))


grouping_registry = GroupingRegistry()
"""The process-wide default registry, pre-loaded with the strategies
below."""


def parse_grouping_spec(spec: str) -> tuple[str, int | None]:
    """Split ``"bands:8"`` into ``("bands", 8)``; bare names get None."""
    if not isinstance(spec, str) or not spec.strip():
        raise GroupingError(f"grouping spec must be a non-empty string, "
                            f"got {spec!r}")
    base, sep, raw = spec.partition(":")
    base = base.strip()
    if not sep:
        return base, None
    try:
        param = int(raw)
    except ValueError:
        raise GroupingError(
            f"grouping spec {spec!r}: parameter {raw!r} is not an "
            "integer") from None
    if param < 1:
        raise GroupingError(
            f"grouping spec {spec!r}: need at least one domain")
    return base, param


def validate_grouping_spec(spec: str) -> str:
    """Check a spec names a registered strategy with a legal parameter;
    returns the canonical form (aliases resolved)."""
    base, param = parse_grouping_spec(spec)
    entry = grouping_registry.get(base)
    if entry.requires_param and param is None:
        raise GroupingError(
            f"grouping strategy {entry.name!r} needs a domain count, "
            f"e.g. {entry.name}:8")
    if not entry.requires_param and param is not None:
        raise GroupingError(
            f"grouping strategy {entry.name!r} takes no parameter, got "
            f"{spec!r}")
    return entry.name if param is None else f"{entry.name}:{param}"


def is_field_driven(spec: str) -> bool:
    """True when the spec's boundaries depend on the sensed field."""
    base, _param = parse_grouping_spec(spec)
    return grouping_registry.get(base).field_driven


def make_grouping(spec: str, context: GroupingContext) -> RowGrouping:
    """Resolve a strategy spec against a context into a RowGrouping."""
    canonical = validate_grouping_spec(spec)
    base, param = parse_grouping_spec(canonical)
    grouping = grouping_registry.get(base).func(context, param)
    if grouping.num_rows != context.num_rows:
        raise GroupingError(
            f"strategy {canonical!r} covered {grouping.num_rows} rows, "
            f"design has {context.num_rows}")
    return grouping


# -- agglomerative band merging (shared by correlation and community) ------

def _merge_adjacent_bands(num_rows: int, num_groups: int,
                          pair_key) -> list[tuple[int, int]]:
    """Merge adjacent single-row segments until ``num_groups`` remain.

    ``pair_key(a, b)`` scores merging adjacent segments ``a=(lo, hi)``
    and ``b=(hi, hi2)``; the *smallest* key merges first, and keys embed
    (combined size, index) tie-breakers so the result is deterministic.
    """
    segments = [(row, row + 1) for row in range(num_rows)]
    target = min(num_groups, num_rows)
    while len(segments) > target:
        best_index = 0
        best_key = None
        for index in range(len(segments) - 1):
            key = pair_key(segments[index], segments[index + 1])
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        lo, _ = segments[best_index]
        _, hi = segments.pop(best_index + 1)
        segments[best_index] = (lo, hi)
    return segments


def _bands_to_grouping(segments: list[tuple[int, int]],
                       name: str) -> RowGrouping:
    return RowGrouping.from_band_sizes(
        [hi - lo for lo, hi in segments], name=name)


# -- the shipped strategies -------------------------------------------------

@grouping_registry.register("identity", requires_param=False)
def _identity(context: GroupingContext,
              _param: int | None) -> RowGrouping:
    """Every row its own bias domain (the paper's per-row granularity).

    The bit-identical baseline: allocation behaves exactly as it did
    before the grouping layer existed.
    """
    return RowGrouping.identity(context.num_rows)


@grouping_registry.register("bands")
def _bands(context: GroupingContext, param: int | None) -> RowGrouping:
    """K equal contiguous row bands (the obvious well-domain floorplan).

    Sizes differ by at most one row — the same deterministic split the
    spatial sensor grid uses for its monitor regions, so domains and
    sensors align when their counts match.
    """
    return RowGrouping.contiguous_bands(context.num_rows, int(param))


@grouping_registry.register("correlation", field_driven=True)
def _correlation(context: GroupingContext,
                 param: int | None) -> RowGrouping:
    """K bands grown by merging adjacent rows with the most similar
    sensed slowdowns (boundaries follow the correlated intra-die field).

    Agglomerative: every row starts as its own band; the adjacent pair
    whose mean slowdowns differ least merges first (ties: smallest
    combined band, then lowest row index).  With no field — or a
    uniform one — every pair ties and the size tie-breaker grows
    near-equal bands, degrading gracefully to ``bands:<k>`` behaviour.
    """
    betas = (context.row_betas if context.row_betas is not None
             else np.zeros(context.num_rows))
    prefix = np.concatenate(([0.0], np.cumsum(betas)))

    def mean(segment: tuple[int, int]) -> float:
        lo, hi = segment
        return (prefix[hi] - prefix[lo]) / (hi - lo)

    def key(a: tuple[int, int], b: tuple[int, int]):
        return (abs(mean(a) - mean(b)), (a[1] - a[0]) + (b[1] - b[0]),
                a[0])

    segments = _merge_adjacent_bands(context.num_rows, int(param), key)
    return _bands_to_grouping(segments, f"correlation:{param}")


@grouping_registry.register("community")
def _community(context: GroupingContext,
               param: int | None) -> RowGrouping:
    """K bands grown by merging the adjacent rows that share the most
    nets (domains follow the netlist's communication structure).

    Agglomerative over the row-pair net-incidence matrix: the adjacent
    band pair connected by the most nets merges first (ties: smallest
    combined band, then lowest row index), so strongly-communicating
    neighbourhoods — where critical paths live — end up inside one
    domain instead of straddling a well boundary.
    """
    placed = context.placed
    if placed is None:
        raise GroupingError(
            "the 'community' strategy needs the placed design "
            "(GroupingContext.placed) to read net affinity")
    num_rows = context.num_rows
    affinity = np.zeros((num_rows, num_rows))
    for net in placed.netlist.nets.values():
        gates = set(name for name, _pin in net.sinks)
        if net.driver is not None:
            gates.add(net.driver)
        rows = sorted({placed.row_of(name) for name in gates})
        for i, row_a in enumerate(rows):
            for row_b in rows[i + 1:]:
                affinity[row_a, row_b] += 1.0
                affinity[row_b, row_a] += 1.0
    # 2-D prefix sums make band-pair affinity an O(1) block lookup.
    prefix = np.zeros((num_rows + 1, num_rows + 1))
    prefix[1:, 1:] = affinity.cumsum(axis=0).cumsum(axis=1)

    def block(a: tuple[int, int], b: tuple[int, int]) -> float:
        (a0, a1), (b0, b1) = a, b
        return float(prefix[a1, b1] - prefix[a0, b1]
                     - prefix[a1, b0] + prefix[a0, b0])

    def key(a: tuple[int, int], b: tuple[int, int]):
        return (-block(a, b), (a[1] - a[0]) + (b[1] - b[0]), a[0])

    segments = _merge_adjacent_bands(num_rows, int(param), key)
    return _bands_to_grouping(segments, f"community:{param}")


grouping_registry.alias("corr", "correlation")
grouping_registry.alias("netlist", "community")
