"""Exception hierarchy for the repro package (one family per layer of
the paper reproduction).

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at flow boundaries while the
subclasses keep diagnostics precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TechnologyError(ReproError):
    """Invalid technology parameters or characterization inputs."""


class NetlistError(ReproError):
    """Structural netlist problems: dangling pins, cycles, bad names."""


class ParseError(ReproError):
    """Malformed input file (.bench, Verilog, LEF, DEF, .lib)."""

    def __init__(self, message: str, filename: str | None = None,
                 line: int | None = None) -> None:
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if line is not None:
            location += f"{line}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)
        self.filename = filename
        self.line = line


class PlacementError(ReproError):
    """Placement failures: overcapacity floorplans, illegal sites."""


class TimingError(ReproError):
    """Static timing analysis failures (e.g. combinational cycles)."""


class SolverError(ReproError):
    """ILP/LP solver failures other than infeasibility."""


class InfeasibleError(SolverError):
    """The optimisation problem admits no feasible solution."""


class TimeoutError_(SolverError):
    """Solver hit its time budget before proving optimality."""


class AllocationError(ReproError):
    """FBB allocation problems: no voltage grid, empty row set, etc."""


class LayoutError(ReproError):
    """Physical implementation rule violations (contacts, wells, rails)."""


class TuningError(ReproError):
    """Post-silicon tuning loop failures (sensor or generator limits)."""


class RegistryError(ReproError):
    """Solver-registry misuse: unknown method, duplicate or undocumented
    entry."""


class GroupingError(ReproError):
    """Bias-domain grouping problems: malformed spec, unknown strategy,
    or a grouping that does not cover the design's rows."""


class SpecError(ReproError):
    """Invalid or unserializable RunSpec/RunResult (repro.api layer)."""


class LintError(ReproError):
    """repro.lint misuse: unknown rule, undocumented checker entry, or
    an unreadable lint target."""


class ServeError(ReproError):
    """Allocation-service failures (repro.serve layer): malformed
    requests, a draining server refusing new work, transport errors."""
