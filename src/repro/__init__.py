"""repro — physically clustered forward body biasing (DATE 2009).

Reproduction of Sathanur et al., *"Physically Clustered Forward Body
Biasing for Variability Compensation in Nanometer CMOS design"*,
DATE 2009.

The package implements the paper's contribution — row-level clustered
FBB allocation (exact ILP + two-pass linear heuristic) — and every
substrate it stands on: a 45 nm-like device/cell model, netlist and
benchmark generators, a row placer, LEF/DEF I/O, static timing analysis,
leakage accounting, an MILP solver, the physical bias-implementation
rules, variability models and a closed-loop tuning controller.

Quickstart (the :mod:`repro.api` facade)::

    from repro.api import RunSpec, run

    result = run(RunSpec(kind="allocate", design="c5315", beta=0.05,
                         method="heuristic:row-descent", clusters=3))
    print(result.payload["savings_pct"], "% leakage saved")

or, driving the layers directly::

    from repro import implement, build_problem, solve

    flow = implement("c5315")                       # synth+place+STA
    problem = build_problem(flow.placed, flow.clib, beta=0.05)
    baseline = solve(problem, "single_bb")          # block-level FBB
    clustered = solve(problem, "heuristic", clusters=3)
    print(clustered.savings_vs(baseline.leakage_nw), "% leakage saved")
"""

from repro.api import RunResult, RunSpec, run, run_many, solver_names
from repro.core import (BiasSolution, FBBProblem, build_problem, pass_one,
                        pass_two, registry, solve, solve_heuristic,
                        solve_ilp, solve_single_bb, uniform_solution)
from repro.flow import (ArtifactCache, ExperimentConfig, FlowResult,
                        PopulationConfig, PopulationRow, SpatialConfig,
                        SpatialRow, Table1Row, characterized_library,
                        default_cache, format_cache_stats,
                        format_population, format_spatial, format_table1,
                        implement, run_design_beta, run_population,
                        run_population_study, run_spatial, run_table1)
from repro.grouping import (RowGrouping, grouping_registry, make_grouping,
                            reduce_problem, solve_grouped)
from repro.tech import (CellLibrary, CharacterizedLibrary, Technology,
                        characterize_library, reduced_library,
                        sweep_inverter)

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "BiasSolution",
    "CellLibrary",
    "CharacterizedLibrary",
    "ExperimentConfig",
    "FBBProblem",
    "FlowResult",
    "PopulationConfig",
    "PopulationRow",
    "RowGrouping",
    "RunResult",
    "RunSpec",
    "SpatialConfig",
    "SpatialRow",
    "Table1Row",
    "Technology",
    "__version__",
    "build_problem",
    "characterize_library",
    "characterized_library",
    "default_cache",
    "format_cache_stats",
    "format_population",
    "format_spatial",
    "format_table1",
    "grouping_registry",
    "implement",
    "make_grouping",
    "pass_one",
    "pass_two",
    "reduce_problem",
    "reduced_library",
    "registry",
    "run",
    "run_design_beta",
    "run_many",
    "run_population",
    "run_population_study",
    "run_spatial",
    "run_table1",
    "solve",
    "solve_grouped",
    "solve_heuristic",
    "solve_ilp",
    "solve_single_bb",
    "solver_names",
    "sweep_inverter",
    "uniform_solution",
]
