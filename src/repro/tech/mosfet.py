"""Analytical MOSFET model — the reproduction's SPICE substitute.

The paper characterises forward body bias with SPICE on a 45 nm SOI
process (Fig. 1).  We replace SPICE with a compact analytical model that
captures exactly the behaviours the FBB methodology depends on:

* **Body effect (linearised).**  Forward bias lowers the threshold:
  ``Vth(vbs) = Vth0 - gamma * vbs``.  Over the 0..1 V range of interest a
  linear fit to the square-root body-effect law is accurate to a few mV.
* **Alpha-power-law drive current.**  ``Ion ~ W * (Vdd - Vth)^alpha`` which
  yields the near-*linear* speed-up vs vbs the paper reports.
* **Subthreshold leakage.**  ``Ioff ~ W * exp(-Vth / (n * vT))`` which
  yields the *exponential* leakage growth vs vbs.
* **Forward body-source junction current.**  A diode term that is
  negligible below ~0.5 V and explodes beyond it — the paper's reason for
  clamping usable FBB to 0..0.5 V.

Calibration targets (checked by tests/tech/test_mosfet.py): an inverter
sees ~21 % delay reduction and ~12.74x leakage at vbs = 0.95 V, matching
the two quantitative anchors of Fig. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TechnologyError
from repro.tech.technology import Technology
from repro.units import thermal_voltage

#: Drive-current prefactor, uA per um of gate width (45 nm-like).
SATURATION_CURRENT_UA_PER_UM = 252.0

#: Subthreshold current prefactor, uA per um of gate width.
SUBTHRESHOLD_I0_UA_PER_UM = 37.5

#: Minimum threshold voltage the linearised model will report, volts.
VTH_FLOOR = 0.05


@dataclass(frozen=True)
class Mosfet:
    """A single MOS device of a given polarity, width and length.

    Width and length are in micrometres.  The model is symmetric in
    polarity: the ``vbs`` argument of every method is the *forward* bias
    magnitude (0 = no body bias), matching the paper's scalar convention
    ``vbsn = vbs``, ``vbsp = Vdd - vbs``.
    """

    polarity: str
    width_um: float
    length_um: float = 0.045
    tech: Technology = Technology()

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError(
                f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        if self.width_um <= 0 or self.length_um <= 0:
            raise TechnologyError("device dimensions must be positive")

    # -- threshold ----------------------------------------------------------

    @property
    def vth0(self) -> float:
        """Zero-bias threshold magnitude, volts."""
        if self.polarity == "nmos":
            return self.tech.vth0_n
        return self.tech.vth0_p

    def vth(self, vbs: float = 0.0) -> float:
        """Threshold magnitude under forward body bias ``vbs``, volts."""
        if vbs < 0:
            raise TechnologyError(
                f"reverse bias not modelled here, got vbs={vbs}")
        value = self.vth0 - self.tech.body_effect_gamma * vbs
        return max(value, VTH_FLOOR)

    # -- currents ------------------------------------------------------------

    def on_current_ua(self, vbs: float = 0.0) -> float:
        """Saturation drive current at Vgs = Vdd, microamps."""
        overdrive = self.tech.vdd - self.vth(vbs)
        if overdrive <= 0:
            return 0.0
        mobility_ratio = 1.0 if self.polarity == "nmos" else 0.45
        return (SATURATION_CURRENT_UA_PER_UM * mobility_ratio *
                self.width_um * overdrive ** self.tech.alpha_power)

    def subthreshold_current_na(self, vbs: float = 0.0,
                                vds: float | None = None,
                                stack_factor: float = 1.0) -> float:
        """Off-state (Vgs = 0) subthreshold current, nanoamps.

        ``stack_factor`` < 1 models series-stacked off devices (NAND/NOR
        pull networks leak much less than a single device).
        """
        if vds is None:
            vds = self.tech.vdd
        n_vt = self.tech.subthreshold_swing_n * thermal_voltage(
            self.tech.temperature_k)
        exponent = -self.vth(vbs) / n_vt
        drain_term = 1.0 - math.exp(-vds / thermal_voltage(
            self.tech.temperature_k))
        current_ua = (SUBTHRESHOLD_I0_UA_PER_UM * self.width_um *
                      stack_factor * math.exp(exponent) * drain_term)
        return current_ua * 1e3

    def junction_current_na(self, vbs: float = 0.0) -> float:
        """Forward body-source junction diode current, nanoamps."""
        if vbs <= 0:
            return 0.0
        nj_vt = self.tech.junction_ideality * thermal_voltage(
            self.tech.temperature_k)
        saturation = self.tech.junction_saturation_na_per_um * self.width_um
        return saturation * (math.exp(vbs / nj_vt) - 1.0)

    def off_current_na(self, vbs: float = 0.0,
                       stack_factor: float = 1.0) -> float:
        """Total off-state current: subthreshold + forward junction, nA."""
        return (self.subthreshold_current_na(vbs, stack_factor=stack_factor) +
                self.junction_current_na(vbs))

    # -- derived scale factors ------------------------------------------------

    def delay_scale(self, vbs: float) -> float:
        """Gate-delay multiplier at bias ``vbs`` relative to zero bias.

        Below 1.0 for forward bias; approximately ``1 - k * vbs`` (the
        paper's observed linear speed-up).
        """
        base = self.tech.vdd - self.vth(0.0)
        biased = self.tech.vdd - self.vth(vbs)
        return (base / biased) ** self.tech.alpha_power

    def leakage_scale(self, vbs: float) -> float:
        """Subthreshold-leakage multiplier at bias ``vbs`` vs zero bias."""
        n_vt = self.tech.subthreshold_swing_n * thermal_voltage(
            self.tech.temperature_k)
        return math.exp((self.vth(0.0) - self.vth(vbs)) / n_vt)


def delay_scale(tech: Technology, vbs: float) -> float:
    """Technology-level delay multiplier at forward bias ``vbs``.

    Identical for NMOS and PMOS under the linearised model, so cells can
    share a single scale factor (this is what the allocation algorithms
    consume when computing the ``a[i,j,k]`` coefficients).
    """
    return Mosfet("nmos", 1.0, tech=tech).delay_scale(vbs)


def speedup(tech: Technology, vbs: float) -> float:
    """Fractional delay reduction at bias ``vbs`` (0.21 means 21 % faster)."""
    return 1.0 - delay_scale(tech, vbs)


def subthreshold_leakage_scale(tech: Technology, vbs: float) -> float:
    """Technology-level subthreshold leakage multiplier at bias ``vbs``."""
    return Mosfet("nmos", 1.0, tech=tech).leakage_scale(vbs)


def required_vbs(tech: Technology, target_speedup: float) -> float:
    """Smallest continuous vbs achieving ``target_speedup``, volts.

    Inverts the alpha-power delay model analytically.  Raises
    :class:`TechnologyError` if the target exceeds what ``vbs_max`` can
    deliver (callers decide whether to clamp or fail).
    """
    if target_speedup <= 0:
        return 0.0
    if target_speedup >= 1:
        raise TechnologyError(
            f"speed-up target {target_speedup} is not achievable")
    base = tech.vdd - tech.vth0_n
    # (base / (base + gamma*vbs))^alpha = 1 - s  =>  solve for vbs.
    ratio = (1.0 - target_speedup) ** (-1.0 / tech.alpha_power)
    vbs = base * (ratio - 1.0) / tech.body_effect_gamma
    if vbs > tech.vbs_max + 1e-9:
        raise TechnologyError(
            f"speed-up {target_speedup:.3%} needs vbs={vbs:.3f} V, beyond "
            f"the usable limit {tech.vbs_max} V")
    return vbs
