"""Technology substrate: device model, cell library, characterization
(the paper's Sec. 5 foundry inputs, rebuilt from first principles)."""

from repro.tech.cells import CellLibrary, StandardCell, reduced_library
from repro.tech.characterize import (CellCharacterization,
                                     CharacterizedLibrary,
                                     characterize_library)
from repro.tech.liberty import read_liberty, write_liberty
from repro.tech.mosfet import (Mosfet, delay_scale, required_vbs, speedup,
                               subthreshold_leakage_scale)
from repro.tech.spice import (BiasMeasurement, InverterBench, sweep_inverter,
                              usable_bias_limit)
from repro.tech.technology import (DEFAULT_TECHNOLOGY, BodyBiasRules,
                                   Technology)

__all__ = [
    "BiasMeasurement",
    "BodyBiasRules",
    "CellCharacterization",
    "CellLibrary",
    "CharacterizedLibrary",
    "DEFAULT_TECHNOLOGY",
    "InverterBench",
    "Mosfet",
    "StandardCell",
    "Technology",
    "characterize_library",
    "delay_scale",
    "read_liberty",
    "reduced_library",
    "required_vbs",
    "speedup",
    "subthreshold_leakage_scale",
    "sweep_inverter",
    "usable_bias_limit",
    "write_liberty",
]
