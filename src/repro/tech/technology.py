"""Technology node description for the 45 nm-like reproduction process.

The paper implements its flow on an STMicroelectronics 45 nm CMOS library
with a triple-well process (required so NMOS and PMOS bodies can be biased
independently, Sec. 3.2).  :class:`Technology` gathers every node-level
parameter the rest of the stack needs:

* the supply voltage and body-bias conventions (``vbs`` denotes
  ``vbsn = vbs`` on NMOS and ``vbsp = Vdd - vbs`` on PMOS),
* the body-bias generator grid — the paper assumes a 50 mV resolution and
  clamps usable forward bias to 0..0.5 V, giving ``P = 11`` voltages,
* standard-cell row geometry (site width, row height),
* the physical body-bias implementation rules of Sec. 3.3: contact cells
  every ~50 um, at most two distributed vbs rails, well-separation spacing
  between adjacent rows in different bias clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TechnologyError


@dataclass(frozen=True)
class BodyBiasRules:
    """Physical rules for the row-level FBB implementation (Sec. 3.3)."""

    contact_pitch_um: float = 50.0
    """Body-bias contact cells must appear at least every this many um."""

    contact_cell_width_um: float = 0.40
    """Width of one body-bias contact (well-tap) cell: 2 sites.

    Well taps are among the smallest cells in a 45 nm library; two of
    them per 50 um station keeps the per-row utilization increase within
    the paper's ~6 % bound even on the narrow rows of small blocks.
    """

    contacts_per_station: int = 2
    """Contact cells placed at each pitch station (one NMOS + one PMOS tap)."""

    max_bias_rails: int = 2
    """At most this many distinct non-zero vbs values may be distributed."""

    well_separation_um: float = 0.15
    """Extra spacing between adjacent rows in different bias clusters.

    Adjacent wells here differ by at most vbs_max (0.5 V), so the
    required spacing is a fraction of a full isolation break; the value
    keeps the worst-case interleaved assignment near the paper's <5 %
    area bound and typical assignments well inside it.
    """

    rail_layer: str = "metal7"
    """Top metal layer carrying the vertical body-bias rails."""

    rail_width_um: float = 0.40
    rail_pitch_um: float = 0.80

    def max_clusters(self) -> int:
        """Maximum cluster count: the no-bias cluster plus the bias rails."""
        return self.max_bias_rails + 1


@dataclass(frozen=True)
class Technology:
    """A 45 nm-like CMOS node with forward-body-bias support.

    All defaults are calibrated so that the device model in
    :mod:`repro.tech.mosfet` reproduces the paper's Figure 1 anchors
    (about 21 % inverter speed-up and 12.74x leakage at vbs = 0.95 V).
    """

    name: str = "repro45"
    vdd: float = 1.0
    """Supply voltage, volts."""

    vth0_n: float = 0.45
    """Nominal NMOS threshold voltage at zero body bias, volts."""

    vth0_p: float = 0.45
    """Nominal PMOS threshold magnitude at zero body bias, volts."""

    body_effect_gamma: float = 0.0998
    """Linearised body-effect coefficient dVth/dvbs (V/V) for forward bias."""

    subthreshold_swing_n: float = 1.5
    """Subthreshold slope ideality factor n (S = n * vT * ln 10)."""

    alpha_power: float = 1.4814
    """Velocity-saturation exponent of the alpha-power-law delay model."""

    junction_saturation_na_per_um: float = 2.18e-9
    """Body-source junction diode saturation current, nA per um of width.

    This is what makes FBB beyond ~0.5 V useless: the forward-biased
    source-body junction starts conducting and off-state current explodes
    (the paper's stated reason for clamping vbs to 0.5 V).
    """

    junction_ideality: float = 2.0

    vbs_max: float = 0.5
    """Maximum usable forward body bias, volts (paper Sec. 3.2)."""

    vbs_resolution: float = 0.05
    """Body-bias generator resolution, volts (paper assumes 50 mV)."""

    site_width_um: float = 0.20
    row_height_um: float = 2.40
    """Standard-cell placement site geometry (12-track 45 nm row).

    The tall-cell variant is chosen so that placed row counts land at the
    scale of the paper's Table 1 (rows grow with the square root of the
    gate count in both).
    """

    temperature_k: float = 300.0

    bias_rules: BodyBiasRules = field(default_factory=BodyBiasRules)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise TechnologyError(f"vdd must be positive, got {self.vdd}")
        if not 0 < self.vth0_n < self.vdd:
            raise TechnologyError(
                f"vth0_n must lie in (0, vdd), got {self.vth0_n}")
        if self.vbs_resolution <= 0:
            raise TechnologyError("vbs_resolution must be positive")
        if self.vbs_max < 0 or self.vbs_max > self.vdd:
            raise TechnologyError(
                f"vbs_max must lie in [0, vdd], got {self.vbs_max}")
        steps = self.vbs_max / self.vbs_resolution
        if abs(steps - round(steps)) > 1e-9:
            raise TechnologyError(
                "vbs_max must be an integer multiple of vbs_resolution")

    # -- body-bias voltage grid -------------------------------------------

    @property
    def num_bias_levels(self) -> int:
        """Number of generator voltages P (paper: 11 for 0..0.5 V @ 50 mV)."""
        return int(round(self.vbs_max / self.vbs_resolution)) + 1

    def bias_levels(self) -> tuple[float, ...]:
        """The P available vbs values in increasing order, starting at 0."""
        step = self.vbs_resolution
        return tuple(round(i * step, 9) for i in range(self.num_bias_levels))

    def quantize_vbs(self, vbs: float) -> float:
        """Snap an arbitrary vbs request onto the generator grid.

        Values are rounded *up* to the next grid step (a tuning controller
        must guarantee at least the requested speed-up) and clamped to
        ``[0, vbs_max]``.
        """
        if vbs <= 0:
            return 0.0
        steps = vbs / self.vbs_resolution
        snapped = round(steps)
        if snapped < steps - 1e-9:
            snapped += 1
        elif abs(snapped - steps) > 1e-9 and snapped < steps:
            snapped += 1
        value = min(snapped * self.vbs_resolution, self.vbs_max)
        return round(value, 9)

    def pmos_body_voltage(self, vbs: float) -> float:
        """Absolute PMOS body voltage for a given forward bias ``vbs``.

        The paper's convention (Sec. 3.2): ``vbsp = Vdd - vbs`` so a single
        scalar describes the bias applied to both devices.
        """
        self._check_vbs(vbs)
        return self.vdd - vbs

    def nmos_body_voltage(self, vbs: float) -> float:
        """Absolute NMOS body voltage (equals ``vbs`` by convention)."""
        self._check_vbs(vbs)
        return vbs

    def _check_vbs(self, vbs: float) -> None:
        if vbs < -1e-12 or vbs > self.vdd + 1e-12:
            raise TechnologyError(
                f"vbs {vbs} outside physical range [0, {self.vdd}]")


DEFAULT_TECHNOLOGY = Technology()
"""Module-level default 45 nm-like node used throughout the examples."""
