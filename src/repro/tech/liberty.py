"""Liberty-subset reader/writer for characterized libraries (the
paper's Sec. 5 per-cell delay/leakage tables).

Commercial flows exchange cell timing/power data in Synopsys Liberty
(.lib) files.  We support a small, self-consistent subset sufficient to
persist a :class:`repro.tech.characterize.CharacterizedLibrary`:

```
library (repro45) {
  voltage: 1.0;
  vbs_levels: 0.0 0.05 ... 0.5;
  delay_scales: 1.0 0.986 ...;
  cell (INV_X1) {
    function: INV;  drive: 1;  inputs: 1;  width_sites: 3;
    input_cap_ff: 0.9;
    intrinsic_delay_ps: 8.0;  load_slope_ps_per_ff: 10.0;
    device_width_um: 1.0;  sequential: 0;  setup_ps: 0.0;
    leakage_nw: 0.171 0.19 ...;
  }
}
```

Round-tripping is exact up to float formatting (9 significant digits) and
covered by property tests.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ParseError, TechnologyError
from repro.tech.cells import CellLibrary, StandardCell
from repro.tech.characterize import (CellCharacterization,
                                     CharacterizedLibrary)
from repro.tech.technology import Technology


def _fmt_floats(values) -> str:
    return " ".join(f"{value:.9g}" for value in values)


def write_liberty(clib: CharacterizedLibrary, path: str | Path) -> None:
    """Serialise a characterized library to a Liberty-subset file."""
    lines = [f"library ({clib.tech.name}) {{"]
    lines.append(f"  voltage: {clib.tech.vdd:.9g};")
    lines.append(f"  vbs_levels: {_fmt_floats(clib.vbs_levels)};")
    lines.append(f"  delay_scales: {_fmt_floats(clib.delay_scales)};")
    for name in clib.library.cell_names:
        cell = clib.cell(name)
        char = clib.characterization(name)
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    function: {cell.function};")
        lines.append(f"    drive: {cell.drive};")
        lines.append(f"    inputs: {cell.num_inputs};")
        lines.append(f"    width_sites: {cell.width_sites};")
        lines.append(f"    input_cap_ff: {cell.input_cap_ff:.9g};")
        lines.append(f"    intrinsic_delay_ps: {cell.intrinsic_delay_ps:.9g};")
        lines.append(
            f"    load_slope_ps_per_ff: {cell.load_slope_ps_per_ff:.9g};")
        lines.append(f"    device_width_um: {cell.device_width_um:.9g};")
        lines.append(f"    sequential: {1 if cell.is_sequential else 0};")
        lines.append(f"    setup_ps: {cell.setup_ps:.9g};")
        lines.append(f"    leakage_nw: {_fmt_floats(char.leakage_nw)};")
        lines.append("  }")
    lines.append("}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


_KEY_VALUE_RE = re.compile(r"^\s*([A-Za-z_]+)\s*:\s*(.+?)\s*;\s*$")
_CELL_RE = re.compile(r"^\s*cell\s*\(([^)]+)\)\s*\{\s*$")
_LIBRARY_RE = re.compile(r"^\s*library\s*\(([^)]+)\)\s*\{\s*$")


def read_liberty(path: str | Path,
                 tech: Technology | None = None) -> CharacterizedLibrary:
    """Parse a Liberty-subset file written by :func:`write_liberty`.

    ``tech`` supplies the technology object (geometry, device constants);
    the file's voltage and vbs grid are validated against it.
    """
    filename = str(path)
    text = Path(path).read_text(encoding="ascii")
    lines = text.splitlines()

    library_name = None
    header: dict[str, str] = {}
    cells_raw: list[tuple[str, dict[str, str], int]] = []
    current_cell: tuple[str, dict[str, str], int] | None = None

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        match = _LIBRARY_RE.match(line)
        if match:
            library_name = match.group(1).strip()
            continue
        match = _CELL_RE.match(line)
        if match:
            if current_cell is not None:
                raise ParseError("nested cell block", filename, lineno)
            current_cell = (match.group(1).strip(), {}, lineno)
            continue
        if stripped == "}":
            if current_cell is not None:
                cells_raw.append(current_cell)
                current_cell = None
            continue
        match = _KEY_VALUE_RE.match(line)
        if match:
            key, value = match.group(1), match.group(2)
            if current_cell is not None:
                current_cell[1][key] = value
            else:
                header[key] = value
            continue
        raise ParseError(f"unrecognised line: {stripped!r}", filename, lineno)

    if library_name is None:
        raise ParseError("missing 'library (...) {' header", filename)
    if current_cell is not None:
        raise ParseError("unterminated cell block", filename, current_cell[2])
    for key in ("voltage", "vbs_levels", "delay_scales"):
        if key not in header:
            raise ParseError(f"missing header attribute {key!r}", filename)

    if tech is None:
        tech = Technology()
    if abs(float(header["voltage"]) - tech.vdd) > 1e-9:
        raise ParseError(
            f"library voltage {header['voltage']} does not match "
            f"technology vdd {tech.vdd}", filename)

    vbs_levels = tuple(float(v) for v in header["vbs_levels"].split())
    delay_scales = tuple(float(v) for v in header["delay_scales"].split())
    if len(vbs_levels) != len(delay_scales):
        raise ParseError("vbs_levels and delay_scales length mismatch",
                         filename)

    cells: list[StandardCell] = []
    characterizations: dict[str, CellCharacterization] = {}
    for name, attrs, lineno in cells_raw:
        try:
            cell = StandardCell(
                name=name,
                function=attrs["function"],
                drive=int(attrs["drive"]),
                num_inputs=int(attrs["inputs"]),
                width_sites=int(attrs["width_sites"]),
                input_cap_ff=float(attrs["input_cap_ff"]),
                intrinsic_delay_ps=float(attrs["intrinsic_delay_ps"]),
                load_slope_ps_per_ff=float(attrs["load_slope_ps_per_ff"]),
                leakage_nw=float(attrs["leakage_nw"].split()[0]),
                device_width_um=float(attrs["device_width_um"]),
                is_sequential=bool(int(attrs["sequential"])),
                setup_ps=float(attrs["setup_ps"]),
            )
            leakage = tuple(float(v) for v in attrs["leakage_nw"].split())
        except KeyError as exc:
            raise ParseError(
                f"cell {name!r} missing attribute {exc}", filename, lineno
            ) from None
        except ValueError as exc:
            raise ParseError(
                f"cell {name!r}: {exc}", filename, lineno) from None
        if len(leakage) != len(vbs_levels):
            raise ParseError(
                f"cell {name!r}: leakage vector length "
                f"{len(leakage)} != {len(vbs_levels)}", filename, lineno)
        cells.append(cell)
        characterizations[name] = CellCharacterization(
            cell_name=name,
            vbs_levels=vbs_levels,
            delay_scales=delay_scales,
            leakage_nw=leakage,
        )

    try:
        library = CellLibrary(tech, cells)
        return CharacterizedLibrary(library, characterizations)
    except TechnologyError as exc:
        raise ParseError(str(exc), filename) from exc
