"""Per-cell body-bias characterization.

The paper (Sec. 5): *"For each of the gates in the library, we
characterized its delay increase and average leakage power for different
body bias voltages."*  This module produces exactly those tables: for every
cell and every generator voltage ``vbs_j`` on the P-point grid, a delay
scale factor and an absolute leakage power.  These are the raw inputs from
which the allocation problem's ``L[i,j]`` and ``a[i,j,k]`` coefficients
are assembled (Sec. 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TechnologyError
from repro.tech import mosfet
from repro.tech.cells import CellLibrary, StandardCell
from repro.tech.technology import Technology
from repro.units import thermal_voltage


@dataclass(frozen=True)
class CellCharacterization:
    """Delay/leakage of one cell across the body-bias voltage grid."""

    cell_name: str
    vbs_levels: tuple[float, ...]
    delay_scales: tuple[float, ...]
    """Multiplier on every delay arc of the cell, one per vbs level."""
    leakage_nw: tuple[float, ...]
    """Absolute static power at each vbs level, nanowatts."""

    def __post_init__(self) -> None:
        lengths = {len(self.vbs_levels), len(self.delay_scales),
                   len(self.leakage_nw)}
        if len(lengths) != 1:
            raise TechnologyError(
                f"inconsistent characterization lengths for {self.cell_name}")

    @property
    def num_levels(self) -> int:
        return len(self.vbs_levels)


class CharacterizedLibrary:
    """A cell library plus its body-bias characterization tables.

    This is the single object the whole downstream flow consumes: timing
    (delay scale per bias level), power (leakage per cell per level) and
    geometry (via the embedded :class:`CellLibrary`).
    """

    def __init__(self, library: CellLibrary,
                 characterizations: dict[str, CellCharacterization]) -> None:
        missing = [c.name for c in library if c.name not in characterizations]
        if missing:
            raise TechnologyError(
                f"characterization missing for cells: {missing}")
        self.library = library
        self.tech = library.tech
        self._char = dict(characterizations)
        first = next(iter(self._char.values()))
        self.vbs_levels: tuple[float, ...] = first.vbs_levels
        for char in self._char.values():
            if char.vbs_levels != self.vbs_levels:
                raise TechnologyError(
                    "all cells must share one vbs grid")
        self.delay_scales: tuple[float, ...] = first.delay_scales

    @property
    def num_levels(self) -> int:
        """The paper's P: number of available body-bias voltages."""
        return len(self.vbs_levels)

    def characterization(self, cell_name: str) -> CellCharacterization:
        try:
            return self._char[cell_name]
        except KeyError:
            raise TechnologyError(
                f"no characterization for cell {cell_name!r}") from None

    def cell(self, cell_name: str) -> StandardCell:
        return self.library.cell(cell_name)

    def delay_scale(self, level: int) -> float:
        """Delay multiplier at bias level ``level`` (0 = no body bias)."""
        self._check_level(level)
        return self.delay_scales[level]

    def speedup(self, level: int) -> float:
        """Fractional delay reduction at bias level ``level``."""
        return 1.0 - self.delay_scale(level)

    def leakage_nw(self, cell_name: str, level: int) -> float:
        """Static power of ``cell_name`` at bias level ``level``, nW."""
        self._check_level(level)
        return self.characterization(cell_name).leakage_nw[level]

    def level_for_vbs(self, vbs: float) -> int:
        """Index of the grid level for a quantized vbs value."""
        for index, value in enumerate(self.vbs_levels):
            if abs(value - vbs) < 1e-9:
                return index
        raise TechnologyError(f"vbs {vbs} is not on the generator grid")

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise TechnologyError(
                f"bias level {level} outside [0, {self.num_levels})")


def _cell_leakage_nw(cell: StandardCell, tech: Technology,
                     vbs: float) -> float:
    """Cell leakage at forward bias ``vbs``: subthreshold + junction."""
    subthreshold = cell.leakage_nw * mosfet.subthreshold_leakage_scale(
        tech, vbs)
    if vbs <= 0:
        return subthreshold
    nj_vt = tech.junction_ideality * thermal_voltage(tech.temperature_k)
    junction_na = (tech.junction_saturation_na_per_um * cell.device_width_um *
                   (math.exp(vbs / nj_vt) - 1.0))
    return subthreshold + tech.vdd * junction_na


def characterize_library(library: CellLibrary | None = None,
                         tech: Technology | None = None
                         ) -> CharacterizedLibrary:
    """Characterize every cell across the generator's vbs grid.

    The grid is the technology's P levels (paper: 11 levels, 0..0.5 V in
    50 mV steps).  Delay scaling is cell-independent under the linearised
    device model, so one scale vector is shared; leakage is per-cell.
    """
    if tech is None:
        tech = library.tech if library is not None else Technology()
    if library is None:
        from repro.tech.cells import reduced_library
        library = reduced_library(tech)

    levels = library.tech.bias_levels()
    delay_scales = tuple(mosfet.delay_scale(tech, vbs) for vbs in levels)

    characterizations = {}
    for cell in library:
        leakage = tuple(round(_cell_leakage_nw(cell, tech, vbs), 9)
                        for vbs in levels)
        characterizations[cell.name] = CellCharacterization(
            cell_name=cell.name,
            vbs_levels=levels,
            delay_scales=delay_scales,
            leakage_nw=leakage,
        )
    return CharacterizedLibrary(library, characterizations)
