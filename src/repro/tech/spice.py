"""DC-measurement facade over the analytical device model.

The paper's Figure 1 was produced by SPICE simulation of an inverter
across forward body bias voltages (0..0.95 V in 50 mV steps), measuring
delay change and off-state current at the source terminal.  This module
provides the equivalent "measurement bench" on top of
:mod:`repro.tech.mosfet`, so the benchmark `bench_fig1_inverter.py`
regenerates the same two curves: linear speed-up, exponential leakage,
and the junction-current blow-up past ~0.5 V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.mosfet import Mosfet
from repro.tech.technology import Technology

#: Default inverter device sizing, micrometres (45 nm-like X1 drive).
INVERTER_NMOS_WIDTH_UM = 0.4
INVERTER_PMOS_WIDTH_UM = 0.6

#: Fanout-of-one load used for the Fig. 1 delay measurement, femtofarads.
FO1_LOAD_FF = 1.8


@dataclass(frozen=True)
class BiasMeasurement:
    """One row of the Fig. 1 sweep: the inverter at a single vbs point."""

    vbs: float
    delay_ps: float
    leakage_nw: float
    speedup_fraction: float
    """Delay reduction relative to no body bias (0.21 means 21 % faster)."""
    leakage_ratio: float
    """Leakage power relative to no body bias (12.74 means 12.74x)."""
    junction_fraction: float
    """Share of total leakage contributed by the forward junction diode."""


@dataclass(frozen=True)
class InverterBench:
    """A measurable CMOS inverter: one NMOS, one PMOS, an output load."""

    tech: Technology = Technology()
    nmos_width_um: float = INVERTER_NMOS_WIDTH_UM
    pmos_width_um: float = INVERTER_PMOS_WIDTH_UM
    load_ff: float = FO1_LOAD_FF

    @property
    def nmos(self) -> Mosfet:
        return Mosfet("nmos", self.nmos_width_um, tech=self.tech)

    @property
    def pmos(self) -> Mosfet:
        return Mosfet("pmos", self.pmos_width_um, tech=self.tech)

    def propagation_delay_ps(self, vbs: float = 0.0) -> float:
        """Average of rise and fall propagation delays, picoseconds.

        Uses the C*dV/I estimate with dV = Vdd/2, the standard first-order
        delay metric for a saturated-drive CMOS stage.
        """
        half_swing = self.tech.vdd / 2.0
        fall_ps = 1e3 * self.load_ff * half_swing / self.nmos.on_current_ua(vbs)
        rise_ps = 1e3 * self.load_ff * half_swing / self.pmos.on_current_ua(vbs)
        return 0.5 * (fall_ps + rise_ps)

    def leakage_power_nw(self, vbs: float = 0.0) -> float:
        """State-averaged static power, nanowatts.

        With the input low the NMOS leaks subthreshold current; with the
        input high the PMOS does.  Both body-source junctions conduct
        whenever forward bias is applied, independent of input state.
        """
        subthreshold_na = 0.5 * (self.nmos.subthreshold_current_na(vbs) +
                                 self.pmos.subthreshold_current_na(vbs))
        junction_na = (self.nmos.junction_current_na(vbs) +
                       self.pmos.junction_current_na(vbs))
        return self.tech.vdd * (subthreshold_na + junction_na)

    def junction_power_nw(self, vbs: float = 0.0) -> float:
        """Static power from the forward junction diodes alone, nanowatts."""
        junction_na = (self.nmos.junction_current_na(vbs) +
                       self.pmos.junction_current_na(vbs))
        return self.tech.vdd * junction_na


def sweep_inverter(tech: Technology | None = None,
                   vbs_stop: float = 0.95,
                   vbs_step: float = 0.05) -> list[BiasMeasurement]:
    """Reproduce the Fig. 1 sweep: inverter delay & leakage vs vbs.

    Returns one :class:`BiasMeasurement` per grid point from 0 to
    ``vbs_stop`` inclusive.  The paper sweeps to 0.95 V (= Vdd - 50 mV) to
    show why the usable range is then clamped to 0..0.5 V.
    """
    if tech is None:
        tech = Technology()
    bench = InverterBench(tech=tech)
    reference_delay = bench.propagation_delay_ps(0.0)
    reference_leakage = bench.leakage_power_nw(0.0)

    measurements = []
    steps = int(math.floor(vbs_stop / vbs_step + 1e-9)) + 1
    for index in range(steps):
        vbs = round(index * vbs_step, 9)
        delay = bench.propagation_delay_ps(vbs)
        leakage = bench.leakage_power_nw(vbs)
        junction = bench.junction_power_nw(vbs)
        measurements.append(BiasMeasurement(
            vbs=vbs,
            delay_ps=delay,
            leakage_nw=leakage,
            speedup_fraction=1.0 - delay / reference_delay,
            leakage_ratio=leakage / reference_leakage,
            junction_fraction=junction / leakage if leakage > 0 else 0.0,
        ))
    return measurements


def usable_bias_limit(tech: Technology | None = None,
                      junction_share_limit: float = 1e-4) -> float:
    """Largest grid vbs whose junction current stays below the given share.

    This reproduces the paper's empirical observation that forward
    source-body junction current limits useful FBB to about 0.5 V.  The
    default threshold marks the measurable onset of junction conduction
    (0.01 % of total off-state power), which under the calibrated model
    puts the knee exactly at the paper's 0.5 V clamp.
    """
    if tech is None:
        tech = Technology()
    bench = InverterBench(tech=tech)
    limit = 0.0
    vbs = 0.0
    while vbs <= tech.vdd - tech.vbs_resolution + 1e-9:
        total = bench.leakage_power_nw(vbs)
        junction = bench.junction_power_nw(vbs)
        if total > 0 and junction / total > junction_share_limit:
            break
        limit = vbs
        vbs = round(vbs + tech.vbs_resolution, 9)
    return limit
