"""Reduced standard-cell library in the style of the paper's 45 nm kit.

Sec. 5 of the paper: *"Each design was synthesized and placed using a
reduced library of gates consisting of inverters, and, or, nor, nand and
D-flip-flops of different drive strength"*.  This module builds exactly
that library on top of the analytical device model:

* geometry on the placement site grid (0.19 um sites, 1.26 um rows),
* a linear delay model ``delay = intrinsic + slope * C_load`` whose bias
  dependence is a single multiplicative :func:`repro.tech.mosfet.delay_scale`,
* zero-bias leakage derived from the inverter's device-level leakage and a
  per-topology weight (transistor stacks leak less per um than single
  devices; buffered two-stage cells leak more in total).

The library intentionally has **no XOR cell** — like the paper's reduced
kit, XOR/XNOR netlist primitives are decomposed into NAND trees by
:mod:`repro.synth.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TechnologyError
from repro.tech.spice import InverterBench
from repro.tech.technology import Technology

#: function name -> (inputs, base sites, input cap fF, intrinsic ps,
#:                    load slope ps/fF, leakage weight, device width um)
_BASE_PARAMETERS: dict[str, tuple[int, int, float, float, float, float, float]] = {
    "INV":   (1, 3, 0.90,  8.0, 10.0, 1.00, 1.0),
    "NAND2": (2, 4, 1.00, 12.0, 11.0, 1.35, 1.6),
    "NAND3": (3, 5, 1.10, 16.0, 12.5, 1.60, 2.2),
    "NAND4": (4, 6, 1.20, 20.0, 14.0, 1.80, 2.8),
    "NOR2":  (2, 4, 1.05, 14.0, 12.0, 1.35, 1.8),
    "NOR3":  (3, 5, 1.15, 20.0, 14.0, 1.60, 2.5),
    "AND2":  (2, 5, 0.95, 18.0, 10.0, 1.80, 2.4),
    "AND3":  (3, 6, 1.00, 22.0, 10.5, 2.05, 3.0),
    "AND4":  (4, 7, 1.05, 26.0, 11.0, 2.30, 3.6),
    "OR2":   (2, 5, 1.00, 20.0, 10.0, 1.80, 2.6),
    "OR3":   (3, 6, 1.05, 24.0, 10.5, 2.05, 3.2),
    "OR4":   (4, 7, 1.10, 28.0, 11.0, 2.30, 3.8),
    "DFF":   (1, 18, 1.10, 45.0, 9.0, 3.20, 5.0),
}

#: single-stage cells whose input capacitance grows with drive strength
_SINGLE_STAGE = {"INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3"}

#: drive strengths offered per function
_DRIVES: dict[str, tuple[int, ...]] = {
    "INV": (1, 2, 4),
    "NAND2": (1, 2), "NAND3": (1,), "NAND4": (1,),
    "NOR2": (1, 2), "NOR3": (1,),
    "AND2": (1, 2), "AND3": (1,), "AND4": (1,),
    "OR2": (1, 2), "OR3": (1,), "OR4": (1,),
    "DFF": (1, 2),
}

#: setup time for the flip-flop's D input, picoseconds
DFF_SETUP_PS = 30.0


@dataclass(frozen=True)
class StandardCell:
    """One library cell: logic function at a specific drive strength."""

    name: str
    function: str
    drive: int
    num_inputs: int
    width_sites: int
    input_cap_ff: float
    intrinsic_delay_ps: float
    load_slope_ps_per_ff: float
    leakage_nw: float
    """Static power at zero body bias, nanowatts."""
    device_width_um: float
    """Total body-junction width, used for forward-junction current."""
    is_sequential: bool = False
    setup_ps: float = 0.0

    def width_um(self, tech: Technology) -> float:
        """Physical cell width on the row, micrometres."""
        return self.width_sites * tech.site_width_um

    def area_um2(self, tech: Technology) -> float:
        """Footprint area, square micrometres."""
        return self.width_um(tech) * tech.row_height_um

    def delay_ps(self, load_ff: float, delay_scale: float = 1.0) -> float:
        """Pin-to-pin delay driving ``load_ff``, under a bias scale factor."""
        if load_ff < 0:
            raise TechnologyError(f"negative load {load_ff} fF")
        nominal = self.intrinsic_delay_ps + self.load_slope_ps_per_ff * load_ff
        return nominal * delay_scale


class CellLibrary:
    """An immutable collection of :class:`StandardCell` objects."""

    def __init__(self, tech: Technology, cells: list[StandardCell]) -> None:
        if not cells:
            raise TechnologyError("a cell library cannot be empty")
        names = [cell.name for cell in cells]
        if len(set(names)) != len(names):
            raise TechnologyError("duplicate cell names in library")
        self.tech = tech
        self._cells = {cell.name: cell for cell in cells}

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> StandardCell:
        """Look up a cell by name, raising a clear error if absent."""
        try:
            return self._cells[name]
        except KeyError:
            raise TechnologyError(f"no cell named {name!r} in library") from None

    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._cells))

    def functions(self) -> tuple[str, ...]:
        """All logic functions present, sorted."""
        return tuple(sorted({cell.function for cell in self}))

    def drives_for(self, function: str) -> list[StandardCell]:
        """Cells implementing ``function``, sorted by increasing drive."""
        matches = [cell for cell in self if cell.function == function]
        if not matches:
            raise TechnologyError(f"library has no cell for {function!r}")
        return sorted(matches, key=lambda cell: cell.drive)

    def smallest(self, function: str) -> StandardCell:
        """The lowest-drive cell implementing ``function``."""
        return self.drives_for(function)[0]


def _drive_variant(base: StandardCell, drive: int) -> StandardCell:
    """Derive an X2/X4 variant from an X1 cell."""
    if drive == 1:
        return base
    single_stage = base.function in _SINGLE_STAGE
    sites = base.width_sites + (1 if drive == 2 else 3)
    input_cap = base.input_cap_ff * (drive if single_stage else 1.0)
    leak_factor = drive if single_stage else 1.0 + 0.6 * (drive - 1)
    return replace(
        base,
        name=f"{base.function}_X{drive}",
        drive=drive,
        width_sites=sites,
        input_cap_ff=round(input_cap, 4),
        load_slope_ps_per_ff=round(base.load_slope_ps_per_ff / drive, 4),
        leakage_nw=round(base.leakage_nw * leak_factor, 6),
        device_width_um=round(base.device_width_um * leak_factor, 4),
    )


def reduced_library(tech: Technology | None = None) -> CellLibrary:
    """Build the paper's reduced 45 nm-like library.

    Zero-bias leakage is anchored to the device model: the unit weight is
    the inverter bench's state-averaged subthreshold power, so the library
    and the Fig. 1 sweep are mutually consistent.
    """
    if tech is None:
        tech = Technology()
    unit_leakage_nw = InverterBench(tech=tech).leakage_power_nw(0.0)

    cells: list[StandardCell] = []
    for function, drives in _DRIVES.items():
        (num_inputs, sites, cap, intrinsic,
         slope, leak_weight, device_width) = _BASE_PARAMETERS[function]
        base = StandardCell(
            name=f"{function}_X1",
            function=function,
            drive=1,
            num_inputs=num_inputs,
            width_sites=sites,
            input_cap_ff=cap,
            intrinsic_delay_ps=intrinsic,
            load_slope_ps_per_ff=slope,
            leakage_nw=round(leak_weight * unit_leakage_nw, 6),
            device_width_um=device_width,
            is_sequential=(function == "DFF"),
            setup_ps=DFF_SETUP_PS if function == "DFF" else 0.0,
        )
        for drive in drives:
            cells.append(_drive_variant(base, drive))
    return CellLibrary(tech, cells)
