"""Checker registry: every lint rule behind one dispatch table.

Mirrors the solver registry of :mod:`repro.core.registry` (the paper's
three method families behind one ``solve()``): each static-analysis
rule registers under a stable name (``determinism``, ``hash-stability``,
...), registration enforces a docstring so the registry doubles as
user-facing documentation of the rule space, and the engine, the CLI
and the test suite all resolve rules through this one table.  New
contracts — e.g. for the serving layer the ROADMAP points at — plug in
as new checker modules without touching the engine.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import LintError

if TYPE_CHECKING:  # engine imports this module; no runtime cycle
    from repro.lint.engine import Finding, SourceFile

CheckerFunc = Callable[["SourceFile"], "list[Finding]"]


@dataclass(frozen=True)
class CheckerEntry:
    """One registered lint rule."""

    rule: str
    func: CheckerFunc
    summary: str
    """First docstring line, shown in CLI/API listings."""


class CheckerRegistry:
    """Rule name -> checker dispatch table.

    Entries are callables ``func(source) -> list[Finding]`` over one
    parsed :class:`~repro.lint.engine.SourceFile`.  Registration
    enforces a non-empty docstring — the same build-breaking policy the
    solver and grouping registries carry, here applied to the linter
    itself.
    """

    def __init__(self) -> None:
        self._entries: dict[str, CheckerEntry] = {}

    def register(self, rule: str,
                 func: CheckerFunc | None = None) -> CheckerFunc:
        """Register a checker under ``rule`` (usable as a decorator)."""
        if func is None:
            return lambda f: self.register(rule, f)
        if rule in self._entries:
            raise LintError(f"checker {rule!r} is already registered")
        doc = (func.__doc__ or "").strip()
        if not doc:
            raise LintError(
                f"checker {rule!r} has no docstring; every registry "
                "entry must document its rule")
        summary = doc.splitlines()[0].strip()
        self._entries[rule] = CheckerEntry(rule=rule, func=func,
                                           summary=summary)
        return func

    def get(self, rule: str) -> CheckerEntry:
        """Resolve a rule name to its entry."""
        try:
            return self._entries[rule]
        except KeyError:
            raise LintError(
                f"unknown lint rule {rule!r}; registered rules: "
                f"{', '.join(self.names())}") from None

    def names(self) -> tuple[str, ...]:
        """Registered rule names, sorted."""
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[CheckerEntry, ...]:
        """All registered entries, sorted by rule name."""
        return tuple(self._entries[rule] for rule in sorted(self._entries))


checker_registry = CheckerRegistry()
"""The process-wide default registry; :func:`load_builtin_checkers`
fills it with the project rules."""


def load_builtin_checkers() -> CheckerRegistry:
    """Import the built-in checker modules (idempotent) and return the
    populated default registry.

    Registration happens at import time (decorator side effects, like
    the solver registry), so entry points call this once before
    dispatching rules.
    """
    importlib.import_module("repro.lint.checkers")
    return checker_registry
