"""repro.lint — static contract checkers for the reproduction's
invariants.

Every headline claim this reproduction makes about the paper's numbers
— batched STA bit-identical to the scalar engine, ``workers=N``
bit-identical to serial, batched calibration equal to the per-die loop —
rests on invariants that ordinary tests exercise but nothing enforces
*statically*: Monte Carlo sampling must flow through seeded
``np.random.Generator`` objects only, ``RunSpec.cache_material()`` must
stay in sync with the spec's dataclass fields, and public quantities
must carry the :mod:`repro.units` base-unit suffixes the paper's tables
are written in (ps / nW / V).  This package is an AST-level lint pass
that turns each of those contracts into a named, testable rule:

* ``determinism`` — no hidden-global or wall-clock entropy sources;
* ``hash-stability`` — every RunSpec field has a declared hash fate;
* ``units-suffix`` — public quantities use the units.py suffixes;
* ``registry-docstring`` — registry entries carry docstrings;
* ``paper-anchor`` — every module docstring names its paper anchor;
* ``async-blocking`` — no blocking sleeps/I-O inside ``async def``
  bodies in library code (the serving layer's event-loop contract).

Checkers live in a :class:`~repro.lint.registry.CheckerRegistry`
mirroring the solver registry, run via ``python -m repro.lint`` or
``repro-fbb lint``, and honour inline
``# repro-lint: ignore[rule] -- reason`` suppressions.  See DESIGN.md,
"Static contract checking".
"""

from repro.lint.engine import (Finding, SourceFile, collect_paths,
                               lint_paths, lint_sources)
from repro.lint.registry import (CheckerEntry, CheckerRegistry,
                                 checker_registry, load_builtin_checkers)

__all__ = [
    "CheckerEntry",
    "CheckerRegistry",
    "Finding",
    "SourceFile",
    "checker_registry",
    "collect_paths",
    "lint_paths",
    "lint_sources",
    "load_builtin_checkers",
]
