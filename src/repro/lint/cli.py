"""Command-line front end: ``python -m repro.lint`` / ``repro-fbb lint``.

One invocation lints a set of files/directories against the registered
contract checkers (the invariants behind the paper reproduction's
bit-identity claims) and exits nonzero on any finding, so ``make lint``
and CI gate on it:

    python -m repro.lint src tests benchmarks examples
    repro-fbb lint --format json src
    python -m repro.lint --rule determinism --rule units-suffix src

``--format human`` (default) prints one ``path:line: [rule] message``
per finding plus a summary; ``--format json`` emits a machine-readable
object with the findings, the rule catalogue and the file count.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import LintError
from repro.lint.engine import SourceFile, collect_paths, lint_sources
from repro.lint.registry import checker_registry, load_builtin_checkers

#: what ``make lint`` and CI scan when no paths are given
DEFAULT_TARGETS = ("src", "tests", "benchmarks", "examples")


def run_lint_command(paths: list[str], output_format: str = "human",
                     rules: list[str] | None = None) -> int:
    """Shared implementation for both CLI entry points; returns the
    exit status (0 clean, 1 findings, 2 usage error)."""
    load_builtin_checkers()
    targets = paths or [target for target in DEFAULT_TARGETS
                        if Path(target).is_dir()]
    try:
        files = collect_paths(targets)
        sources = [SourceFile.from_path(path) for path in files]
        findings = lint_sources(sources, rules=rules)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if output_format == "json":
        print(json.dumps({
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
            "files_scanned": len(files),
            "rules": list(rules or checker_registry.names()),
        }, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        scanned = f"{len(files)} file(s) scanned"
        if findings:
            print(f"{len(findings)} finding(s), {scanned}",
                  file=sys.stderr)
        else:
            print(f"clean: {scanned}", file=sys.stderr)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    load_builtin_checkers()
    rule_lines = "\n".join(f"  {entry.rule}: {entry.summary}"
                           for entry in checker_registry.entries())
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description="Static contract checkers for the DATE 2009 "
                    "reproduction.\n\nrules:\n" + rule_lines)
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the standard "
             f"tree: {', '.join(DEFAULT_TARGETS)})")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        choices=checker_registry.names(),
        help="run only this rule (repeatable; default: all rules)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint_command(args.paths, output_format=args.format,
                            rules=args.rule)
