"""Lint engine: source collection, suppressions and rule dispatch.

The engine is deliberately simple — the reproduction's contracts (the
determinism and hash-stability guarantees behind the paper's Table 1
and Monte Carlo numbers) live in the checkers; this module only parses
files once into :class:`SourceFile` records, fans each one through the
registered rules and filters findings through inline suppressions:

    x = some_call()  # repro-lint: ignore[units-suffix] -- reason here

A suppression comment silences the named rule(s) for findings **on its
own line** (``ignore[*]`` silences every rule there); the free-form
text after the bracket is the required human reason.  Files that do not
parse produce a single ``syntax`` finding instead of crashing the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.registry import checker_registry, load_builtin_checkers

#: inline suppression: ``# repro-lint: ignore[rule1, rule2] -- reason``
SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_*,\- ]+)\]")

#: directory names that decide how strict the contract set is for a file
_ROLE_DIRECTORIES = ("src", "tests", "benchmarks", "examples")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner (``path:line: [rule] message``)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-native record for ``--format json`` output."""
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


@dataclass
class SourceFile:
    """One parsed lint target.

    ``role`` scopes the contract set: ``"library"`` files (under
    ``src/``) get the full set — wall-clock entropy, RNG typing, units
    suffixes, registry docstrings, paper anchors — while test, bench
    and example code is only held to the tree-wide sampling rules.
    """

    path: str
    text: str
    role: str = "other"
    tree: ast.Module | None = field(default=None, repr=False)
    parse_error: str | None = None
    suppressions: dict[int, set[str]] = field(default_factory=dict,
                                              repr=False)

    def __post_init__(self) -> None:
        if self.tree is None and self.parse_error is None:
            try:
                self.tree = ast.parse(self.text)
            except SyntaxError as exc:
                self.parse_error = f"{exc.msg} (line {exc.lineno})"
        for number, line in enumerate(self.text.splitlines(), 1):
            match = SUPPRESSION.search(line)
            if match:
                rules = {token.strip()
                         for token in match.group(1).split(",")
                         if token.strip()}
                self.suppressions[number] = rules

    @classmethod
    def from_path(cls, path: Path, root: Path | None = None,
                  display: str | None = None) -> "SourceFile":
        """Load one file; ``root`` anchors the display path and the
        role inference."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read lint target {path}: {exc}")
        relative = path
        if root is not None:
            try:
                relative = path.resolve().relative_to(root.resolve())
            except ValueError:
                relative = path
        return cls(path=display or str(relative), text=text,
                   role=_role_of(relative))

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences this finding's rule on
        this finding's line."""
        rules = self.suppressions.get(finding.line)
        return bool(rules) and (finding.rule in rules or "*" in rules)


def _role_of(path: Path) -> str:
    for part in path.parts:
        if part == "src":
            return "library"
        if part in _ROLE_DIRECTORIES:
            return part
    return "other"


def collect_paths(targets: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated list of
    ``.py`` files."""
    seen: dict[Path, None] = {}
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise LintError(f"lint target does not exist: {target}")
    return sorted(seen)


def lint_sources(sources: list[SourceFile],
                 rules: list[str] | None = None) -> list[Finding]:
    """Run the (selected) registered checkers over parsed sources.

    Findings come back sorted by location; suppressed findings are
    dropped.  Unparseable sources yield one ``syntax`` finding each.
    """
    load_builtin_checkers()
    selected = (checker_registry.entries() if rules is None
                else tuple(checker_registry.get(rule) for rule in rules))
    findings: list[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            findings.append(Finding(path=source.path, line=1,
                                    rule="syntax",
                                    message=source.parse_error))
            continue
        for entry in selected:
            findings.extend(f for f in entry.func(source)
                            if not source.is_suppressed(f))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def lint_paths(targets: list[str | Path],
               rules: list[str] | None = None,
               root: Path | None = None) -> list[Finding]:
    """Collect ``.py`` files under ``targets`` and lint them."""
    sources = [SourceFile.from_path(path, root=root)
               for path in collect_paths(targets)]
    return lint_sources(sources, rules=rules)
