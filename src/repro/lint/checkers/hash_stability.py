"""Hash-stability checker: every RunSpec field has a declared hash fate.

``RunSpec.spec_hash()`` is the content address of every cached artifact
(the key that makes re-running a paper sweep free), so adding a field
to the spec silently changes — or silently fails to change — every
existing hash unless someone decides the field's fate: is it an
experiment input that belongs in the address, or an execution knob
(like ``workers``) that must be excluded because results are
bit-identical for any value?  PRs 3, 5 and 6 each made that call by
hand; this rule makes forgetting it a lint error.

For any dataclass that defines a ``cache_material()`` method, every
field must appear in exactly one of:

* the module-level ``HASHED_FIELDS`` tuple — experiment inputs,
  part of the content address;
* the module-level ``EXECUTION_KNOBS`` tuple — execution-only knobs,
  excluded from ``cache_material()``;
* the source of ``cache_material()`` itself, as a string literal —
  fields with bespoke handling (e.g. ``grouping``'s identity-default
  elision, which keeps pre-grouping spec hashes stable).

The rule also rejects tuple entries that name no real field, fields
listed in both tuples, and a ``cache_material()`` that never consults
``EXECUTION_KNOBS``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "hash-stability"

EXCLUSION_TUPLE = "EXECUTION_KNOBS"
INCLUSION_TUPLE = "HASHED_FIELDS"


def _string_tuple(module: ast.Module, name: str) -> dict[str, int] | None:
    """Module-level ``NAME = ("a", "b", ...)`` as a dict name->lineno
    (None when the tuple is not declared)."""
    for node in module.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Tuple)):
            return {element.value: node.lineno
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)}
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def _spec_fields(node: ast.ClassDef) -> dict[str, int]:
    """Class-level annotated fields (name -> line), ClassVars excluded."""
    fields: dict[str, int] = {}
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        if "ClassVar" in ast.unparse(statement.annotation):
            continue
        fields[statement.target.id] = statement.lineno
    return fields


@checker_registry.register(RULE)
def check_hash_stability(source: SourceFile) -> list[Finding]:
    """Spec dataclass fields vs ``cache_material()``: every field's
    hash fate must be declared (the content-address contract)."""
    assert source.tree is not None
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(path=source.path, line=line, rule=RULE,
                                message=message))

    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        material = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef)
             and item.name == "cache_material"), None)
        if material is None:
            continue
        fields = _spec_fields(node)
        excluded = _string_tuple(source.tree, EXCLUSION_TUPLE)
        hashed = _string_tuple(source.tree, INCLUSION_TUPLE)
        if excluded is None:
            flag(node.lineno,
                 f"{node.name} defines cache_material() but the module "
                 f"declares no {EXCLUSION_TUPLE} tuple naming the "
                 "execution-only fields excluded from the content "
                 "address")
            excluded = {}
        if hashed is None:
            hashed = {}
        material_literals = {
            constant.value
            for constant in ast.walk(material)
            if isinstance(constant, ast.Constant)
            and isinstance(constant.value, str)}
        material_names = {
            name.id for name in ast.walk(material)
            if isinstance(name, ast.Name)}

        for field_name, line in fields.items():
            in_excluded = field_name in excluded
            in_hashed = field_name in hashed
            if in_excluded and in_hashed:
                flag(line, f"{node.name}.{field_name} is listed in both "
                           f"{INCLUSION_TUPLE} and {EXCLUSION_TUPLE}; "
                           "a field has exactly one hash fate")
            elif not (in_excluded or in_hashed
                      or field_name in material_literals):
                flag(line, f"{node.name}.{field_name} has no declared "
                           "hash fate: add it to "
                           f"{INCLUSION_TUPLE} (content-addressed) or "
                           f"{EXCLUSION_TUPLE} (execution-only, "
                           "excluded from cache_material())")
        for tuple_name, entries in ((EXCLUSION_TUPLE, excluded),
                                    (INCLUSION_TUPLE, hashed)):
            for entry, line in entries.items():
                if entry not in fields:
                    flag(line, f"{tuple_name} names {entry!r}, which is "
                               f"not a {node.name} field")
        if excluded and EXCLUSION_TUPLE not in material_names:
            flag(material.lineno,
                 f"{node.name}.cache_material() never consults "
                 f"{EXCLUSION_TUPLE}; the declared exclusions would "
                 "not be applied")
    return findings
