"""Registry-docstring checker: every registered entry documents itself.

The solver registry (paper Sec. 4's three method families), the
grouping-strategy registry and the lint checker registry all enforce a
docstring at registration time — the registry doubles as the
user-facing catalogue of the method space.  That runtime guard only
fires when the module is imported, though; this rule moves the policy
to lint time, where CI fails before anything runs.  It resolves the
static registration idioms the codebase uses:

* ``@registry.register("name")`` decorators — the decorated function
  must carry a docstring;
* ``registry.register("name", func)`` calls — the referenced
  module-level function must carry a docstring;
* ``registry.register("name", make_entry(...))`` factory calls — the
  factory must either assign ``entry.__doc__`` or return an inner
  function that has its own docstring.

A receiver counts as a registry when its name is ``registry`` or ends
in ``registry`` (``grouping_registry``, ``checker_registry``);
``self.register`` plumbing inside registry classes is ignored, as are
call forms the checker cannot resolve statically (the import-time guard
still covers those).  Applies to library code under ``src/`` only.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "registry-docstring"


def _is_registry_receiver(func: ast.expr) -> bool:
    return (isinstance(func, ast.Attribute)
            and func.attr == "register"
            and isinstance(func.value, ast.Name)
            and (func.value.id == "registry"
                 or func.value.id.endswith("registry")))


def _factory_documents_entry(factory: ast.FunctionDef) -> bool:
    """True when a factory assigns ``__doc__`` or returns an inner
    function that carries a docstring."""
    for node in ast.walk(factory):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "__doc__"):
                    return True
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not factory and ast.get_docstring(node)):
            return True
    return False


@checker_registry.register(RULE)
def check_registry_docstring(source: SourceFile) -> list[Finding]:
    """Statically enforce the docstring-at-registration policy of the
    solver/grouping/checker registries (paper Sec. 4 method catalogue)."""
    assert source.tree is not None
    if source.role != "library":
        return []
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(path=source.path, line=line, rule=RULE,
                                message=message))

    module_functions = {
        node.name: node for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}

    # decorator form: @registry.register("name")
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            registered = any(
                isinstance(decorator, ast.Call)
                and _is_registry_receiver(decorator.func)
                for decorator in node.decorator_list)
            if registered and not ast.get_docstring(node):
                flag(node.lineno,
                     f"registered entry {node.name!r} has no docstring; "
                     "every registry entry documents its method")
        if not (isinstance(node, ast.Call)
                and _is_registry_receiver(node.func)
                and len(node.args) >= 2):
            continue
        entry_name = ast.unparse(node.args[0])
        candidate = node.args[1]
        if isinstance(candidate, ast.Lambda):
            flag(node.lineno,
                 f"registry entry {entry_name} is a lambda, which "
                 "cannot carry the required docstring")
        elif isinstance(candidate, ast.Name):
            target = module_functions.get(candidate.id)
            if target is not None and not ast.get_docstring(target):
                flag(node.lineno,
                     f"registry entry {entry_name} registers "
                     f"{candidate.id!r}, which has no docstring")
        elif (isinstance(candidate, ast.Call)
              and isinstance(candidate.func, ast.Name)):
            factory = module_functions.get(candidate.func.id)
            if factory is not None and \
                    not _factory_documents_entry(factory):
                flag(node.lineno,
                     f"registry entry {entry_name} comes from factory "
                     f"{candidate.func.id!r}, which neither assigns "
                     "__doc__ nor returns a documented function")
    return findings
