"""Paper-anchor checker: every library module names what it reproduces.

The codebase is a reproduction: each module either implements a
concrete piece of the DATE 2009 paper (a section, figure, table or
equation) or substitutes for a part of its flow the paper assumed
(a commercial placer, an industrial netlist).  Either way the module
docstring must say so — ``Sec. 4.2``, ``Fig. 5``, ``Table 1`` or an
explicit mention of the paper — so a reader can always navigate from
code to claim.  This rule migrates the policy from its ad-hoc home in
``tests/test_docs.py`` into the lint framework; the test suite is now a
thin wrapper over this checker.

Applies to public modules under ``src/`` (``_``-prefixed module names
are internal and exempt; ``__init__.py`` is not).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "paper-anchor"

#: what counts as "naming the paper anchor" in a module docstring
PAPER_ANCHOR = re.compile(
    r"Sec\.|Fig\.|Table\s?\d|Eq\.|paper|Paper|DATE 2009")


@checker_registry.register(RULE)
def check_paper_anchor(source: SourceFile) -> list[Finding]:
    """Every public library module carries a docstring naming its
    paper anchor (Sec./Fig./Table/Eq. or an explicit paper mention)."""
    assert source.tree is not None
    if source.role != "library":
        return []
    name = PurePath(source.path).name
    if name.startswith("_") and name != "__init__.py":
        return []
    docstring = ast.get_docstring(source.tree)
    if not docstring or not docstring.strip():
        message = "missing module docstring (must name its paper anchor)"
    elif not PAPER_ANCHOR.search(docstring):
        message = ("module docstring names no paper anchor "
                   "(Sec./Fig./Table/Eq. or 'paper')")
    else:
        return []
    return [Finding(path=source.path, line=1, rule=RULE,
                    message=message)]
