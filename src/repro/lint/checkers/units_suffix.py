"""Units-suffix checker: public quantities use the units.py base units.

The library stores every physical quantity in the base units of
:mod:`repro.units` — picoseconds, nanowatts (microwatts in the paper's
Table 1 totals), volts/millivolts, micrometres/nanometres — and encodes
the unit in the name (``delay_ps``, ``leakage_nw``, ``vbs_mv``), so a
reader can check dimensional sanity at every call site without running
anything.  Two sub-rules keep public signatures honest:

* a public function, parameter or dataclass field whose name ends in a
  *display*-unit suffix (``_ns``, ``_mw``, ``_mm``, ``_pf``, ...) is
  quoting the wrong convention — store base units, convert at the
  display edge (that is what the ``units.py`` helpers are for);
* a name that *is* a bare quantity word (``delay``, ``leakage``,
  ``slack``, ``arrival``, ``runtime``) carries a physical quantity with
  no unit at all — add the suffix.

``repro/units.py`` itself and ``x_to_y`` conversion helpers are exempt
(they are the sanctioned display edge).  Applies to library code under
``src/`` only; private (``_``-prefixed) definitions are left alone.
"""

from __future__ import annotations

import ast
import re

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "units-suffix"

#: base-unit (and sanctioned reporting) suffixes from units.py
SANCTIONED_SUFFIXES = frozenset({
    "ps",            # time: picoseconds
    "nw", "uw",      # leakage: nanowatts, microwatts in Table 1 totals
    "um", "nm",      # distance: micrometres, nanometres
    "v", "mv",       # voltage
    "ff",            # capacitance: femtofarads
    "k",             # temperature: kelvin
    "s",             # wall-clock runtime reporting (runtime_s)
})

#: display-unit suffix -> the base-unit suffix to use instead
FORBIDDEN_SUFFIXES = {
    "ns": "ps", "fs": "ps", "us": "ps", "ms": "s",
    "mw": "uw", "pw": "nw", "kw": "uw",
    "mm": "um", "cm": "um",
    "uv": "mv", "nv": "mv",
    "pf": "ff", "nf": "ff", "uf": "ff",
}

#: names that are bare physical-quantity words (no unit at all)
BARE_QUANTITY_WORDS = frozenset({
    "delay", "leakage", "slack", "arrival", "runtime",
})

#: sanctioned conversion-helper names (nw_to_uw, ps_to_ns, ...)
_CONVERSION_NAME = re.compile(r"^[a-z]+_to_[a-z]+$")


def _check_name(name: str) -> str | None:
    """Return a violation message for ``name`` (None when clean)."""
    if name.startswith("_") or _CONVERSION_NAME.match(name):
        return None
    if name in BARE_QUANTITY_WORDS:
        return (f"{name!r} carries a physical quantity with no unit; "
                "use a units.py base-unit suffix "
                "(e.g. ps, nw, uw, mv, nm)")
    _, _, suffix = name.rpartition("_")
    replacement = FORBIDDEN_SUFFIXES.get(suffix)
    if replacement is not None:
        return (f"{name!r} uses display unit '_{suffix}'; store the "
                f"units.py base unit instead ('_{replacement}') and "
                "convert at the display edge")
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


@checker_registry.register(RULE)
def check_units_suffix(source: SourceFile) -> list[Finding]:
    """Public functions, parameters and dataclass fields carrying
    physical quantities must use the units.py base-unit suffixes."""
    assert source.tree is not None
    if source.role != "library" or source.path.endswith("units.py"):
        return []
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(path=source.path, line=line, rule=RULE,
                                message=message))

    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                continue
            message = _check_name(node.name)
            if message:
                flag(node.lineno, f"function {message}")
            arguments = node.args
            for arg in (arguments.posonlyargs + arguments.args
                        + arguments.kwonlyargs):
                if arg.arg in ("self", "cls"):
                    continue
                message = _check_name(arg.arg)
                if message:
                    flag(arg.lineno, f"parameter {message}")
        elif isinstance(node, ast.ClassDef) and _is_dataclass(node):
            for statement in node.body:
                if (isinstance(statement, ast.AnnAssign)
                        and isinstance(statement.target, ast.Name)):
                    message = _check_name(statement.target.id)
                    if message:
                        flag(statement.lineno, f"field {message}")
    return findings
