"""Built-in checkers: the project contracts behind the paper's claims.

Importing this package registers every first-party rule with the
default :data:`~repro.lint.registry.checker_registry`:

* :mod:`~repro.lint.checkers.determinism` — seeded-RNG-only sampling,
  no wall-clock entropy (the Monte Carlo reproducibility contract);
* :mod:`~repro.lint.checkers.hash_stability` — RunSpec fields vs
  ``cache_material()`` (the content-address stability contract);
* :mod:`~repro.lint.checkers.units_suffix` — the ps/nW/V base-unit
  naming discipline of the paper's tables (:mod:`repro.units`);
* :mod:`~repro.lint.checkers.registry_docstring` — documented registry
  entries (solver, grouping and checker registries alike);
* :mod:`~repro.lint.checkers.paper_anchor` — every module names the
  paper section/figure/table it reproduces;
* :mod:`~repro.lint.checkers.async_blocking` — no blocking sleeps or
  I/O inside ``async def`` bodies in library code (the serving
  layer's event-loop liveness contract).
"""

from repro.lint.checkers import (async_blocking, determinism,
                                 hash_stability, paper_anchor,
                                 registry_docstring, units_suffix)

__all__ = ["async_blocking", "determinism", "hash_stability",
           "paper_anchor", "registry_docstring", "units_suffix"]
