"""Determinism checker: seeded-RNG-only sampling, no wall-clock entropy.

The reproduction's Monte Carlo results (the paper's die-population
yield studies and the spatial compensation experiments) are defined to be
pure functions of a seed: identical seeds reproduce identical
populations, batched == scalar and ``workers=N`` == serial bit for bit.
Four sub-rules protect that contract:

* legacy ``np.random.*`` module functions (``rand``, ``seed``,
  ``shuffle``, ...) draw from hidden global state — sampling must flow
  through an explicit seeded ``np.random.default_rng(seed)`` Generator;
* bare ``random.*`` module functions are the stdlib flavour of the same
  problem — build a ``random.Random(seed)`` instance instead (the
  industrial netlist generators do exactly this);
* ``time.time()`` / ``datetime.now()`` / ``os.urandom()`` inject
  wall-clock or OS entropy into library code; the only sanctioned clock
  is ``time.perf_counter()`` for the ``runtime_s`` reporting fields,
  which are explicitly outside the bit-identity contract;
* RNG parameters (``rng``) in library signatures must be typed
  ``np.random.Generator`` (or ``random.Random``), so a caller can never
  silently hand in an unseeded source.

The sampling rules apply tree-wide; the wall-clock and typing rules
only to library code under ``src/``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "determinism"

#: legacy numpy.random module-level samplers (global-state API)
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "lognormal", "binomial", "poisson",
    "beta", "gamma", "exponential", "get_state", "set_state",
    "RandomState",
})

#: stdlib random module-level samplers (global-state API)
BARE_RANDOM = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "getrandbits",
    "randbytes", "vonmisesvariate",
})

#: (module, attribute) wall-clock / OS entropy sources banned in library
#: code; time.perf_counter is the sanctioned runtime_s clock
ENTROPY_SOURCES = {
    ("time", "time"): "time.time() is wall-clock entropy; only "
                      "time.perf_counter() is sanctioned, for the "
                      "runtime_s reporting fields",
    ("datetime", "now"): "datetime.now() is wall-clock entropy; runs "
                         "must be pure functions of their spec",
    ("datetime", "utcnow"): "datetime.utcnow() is wall-clock entropy; "
                            "runs must be pure functions of their spec",
    ("datetime", "today"): "datetime.today() is wall-clock entropy; "
                           "runs must be pure functions of their spec",
    ("os", "urandom"): "os.urandom() is OS entropy; sample through a "
                       "seeded np.random.Generator",
}

#: annotations accepted for an ``rng`` parameter
_RNG_ANNOTATIONS = ("np.random.Generator", "numpy.random.Generator",
                    "random.Random")


class _Aliases(ast.NodeVisitor):
    """Map local names to the canonical modules/classes they bind."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.modules[local] = alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"


def _dotted(node: ast.expr) -> str | None:
    """Unparse a Name/Attribute chain to ``a.b.c`` (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@checker_registry.register(RULE)
def check_determinism(source: SourceFile) -> list[Finding]:
    """Seeded-RNG-only sampling and no wall-clock entropy in library
    code (the Monte Carlo reproducibility contract)."""
    assert source.tree is not None
    aliases = _Aliases()
    aliases.visit(source.tree)
    findings: list[Finding] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(path=source.path, line=node.lineno,
                                rule=RULE, message=message))

    library = source.role == "library"
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            head, _, attribute = dotted.rpartition(".")
            # legacy np.random.* (tree-wide)
            head_root, _, head_attr = head.partition(".")
            if (head_attr == "random"
                    and aliases.modules.get(head_root) == "numpy"
                    and attribute in LEGACY_NP_RANDOM):
                flag(node, f"legacy np.random.{attribute} draws from "
                           "hidden global state; sample through a "
                           "seeded np.random.default_rng(seed) "
                           "Generator")
            # bare random.* (tree-wide)
            elif (not head_attr
                    and aliases.modules.get(head_root) == "random"
                    and attribute in BARE_RANDOM):
                flag(node, f"module-level random.{attribute} draws from "
                           "hidden global state; build a seeded "
                           "random.Random(seed) instance")
            elif library:
                if head_attr:
                    resolved = aliases.modules.get(head_root)
                    canonical = (f"{resolved}.{head_attr}" if resolved
                                 else head)
                else:
                    canonical = (aliases.modules.get(head_root)
                                 or aliases.names.get(head_root, head))
                if canonical.startswith("datetime."):
                    canonical = "datetime"
                message = ENTROPY_SOURCES.get((canonical, attribute))
                if message is not None:
                    flag(node, message)
        elif (library and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)):
            # from-imported entropy sources called by bare name
            origin = aliases.names.get(node.func.id)
            if origin in ("time.time", "os.urandom"):
                flag(node, ENTROPY_SOURCES[tuple(origin.split("."))])
        elif (library and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef))):
            arguments = node.args
            for arg in (arguments.posonlyargs + arguments.args
                        + arguments.kwonlyargs):
                if arg.arg != "rng":
                    continue
                annotation = ("" if arg.annotation is None
                              else ast.unparse(arg.annotation))
                if not any(accepted in annotation
                           for accepted in _RNG_ANNOTATIONS):
                    flag(arg, "RNG parameter 'rng' must be typed "
                              "np.random.Generator (or random.Random) "
                              "so unseeded sources cannot slip in; "
                              f"got {annotation or 'no annotation'!r}")
    return findings
