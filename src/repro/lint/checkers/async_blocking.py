"""Async-blocking checker: no synchronous I/O or sleeps on the loop.

The serving layer (``src/repro/serve/``, the always-on deployment of
the paper's clustered-FBB allocator) multiplexes every client over a
single asyncio event loop; one blocking call inside a coroutine stalls
every in-flight request — the software equivalent of wedging the
on-chip bias regulator mid-decision.  This rule flags the common
blocking primitives when they appear directly inside ``async def``
bodies in library code:

* ``time.sleep`` — await ``asyncio.sleep`` instead;
* bare ``open()`` and ``pickle.load``/``pickle.dump`` — file I/O
  belongs on a thread (``loop.run_in_executor``), the bridge the
  execution engine already provides;
* blocking socket/urllib constructors and calls (``socket.socket``,
  ``socket.create_connection``, ``socket.getaddrinfo``,
  ``urllib.request.urlopen``) — use asyncio streams.

Nested synchronous ``def``/``lambda`` bodies are exempt (defining a
helper inside a coroutine and shipping it to an executor is exactly
the sanctioned pattern), as is anything outside ``async def``.
Intentional exceptions — e.g. a one-shot startup write before the
server accepts work — carry a
``# repro-lint: ignore[async-blocking] -- reason`` suppression.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Finding, SourceFile
from repro.lint.registry import checker_registry

RULE = "async-blocking"

#: canonical dotted call -> message
BLOCKING_CALLS = {
    "time.sleep": "time.sleep() stalls the event loop; await "
                  "asyncio.sleep() instead",
    "pickle.load": "pickle.load() does file I/O on the event loop; "
                   "bridge it through loop.run_in_executor",
    "pickle.loads": "pickle.loads() can deserialize large artifacts on "
                    "the event loop; bridge it through "
                    "loop.run_in_executor",
    "pickle.dump": "pickle.dump() does file I/O on the event loop; "
                   "bridge it through loop.run_in_executor",
    "pickle.dumps": "pickle.dumps() can serialize large artifacts on "
                    "the event loop; bridge it through "
                    "loop.run_in_executor",
    "socket.socket": "blocking socket API inside a coroutine; use "
                     "asyncio streams (asyncio.open_connection / "
                     "start_server)",
    "socket.create_connection": "socket.create_connection() blocks the "
                                "event loop; use "
                                "asyncio.open_connection",
    "socket.getaddrinfo": "socket.getaddrinfo() blocks the event loop; "
                          "use loop.getaddrinfo",
    "urllib.request.urlopen": "urlopen() blocks the event loop; bridge "
                              "it through loop.run_in_executor",
}

#: blocking builtins called by bare name
BLOCKING_BUILTINS = {
    "open": "open() does file I/O on the event loop; bridge it through "
            "loop.run_in_executor",
}


def _async_body_nodes(tree: ast.AST):
    """Yield every node lexically inside an ``async def`` body,
    excluding nested (sync or async) function/lambda scopes — their
    bodies execute elsewhere (threads, executors, later calls)."""

    def walk_scope(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            yield child
            yield from walk_scope(child)

    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            for statement in node.body:
                if isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    continue
                yield statement
                yield from walk_scope(statement)


def _dotted(node: ast.expr) -> str | None:
    """Unparse a Name/Attribute chain to ``a.b.c`` (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Aliases(ast.NodeVisitor):
    """Map local names to the canonical modules/functions they bind."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.modules[local] = alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"


@checker_registry.register(RULE)
def check_async_blocking(source: SourceFile) -> list[Finding]:
    """No blocking sleeps, file I/O or socket calls directly inside
    ``async def`` bodies in library code (the serving layer's
    event-loop liveness contract)."""
    assert source.tree is not None
    if source.role != "library":
        return []
    aliases = _Aliases()
    aliases.visit(source.tree)
    findings: list[Finding] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(Finding(path=source.path, line=node.lineno,
                                rule=RULE, message=message))

    for node in _async_body_nodes(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            # from-imported blocking calls and blocking builtins
            canonical = aliases.names.get(func.id)
            message = (BLOCKING_CALLS.get(canonical)
                       if canonical is not None
                       else BLOCKING_BUILTINS.get(func.id))
            if message is not None:
                flag(node, message)
            continue
        dotted = _dotted(func)
        if dotted is None:
            continue
        root, _, rest = dotted.partition(".")
        resolved = aliases.modules.get(root)
        if resolved is None:
            continue
        canonical = f"{resolved}.{rest}" if rest else resolved
        message = BLOCKING_CALLS.get(canonical)
        if message is not None:
            flag(node, message)
    return findings
