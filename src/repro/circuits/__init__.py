"""Benchmark circuit generators: the paper's nine Table 1 evaluation
designs, plus the block-local ``soc_quad`` module the spatial
compensation study runs on."""

from repro.circuits.catalog import (ALL_BENCHMARK_NAMES, BENCHMARK_NAMES,
                                    EXTRA_BENCHMARK_NAMES,
                                    PAPER_GATE_COUNTS, PAPER_ROW_COUNTS,
                                    build_benchmark, small_benchmarks)
from repro.circuits.datapath import adder_128bits
from repro.circuits.industrial import (control_cloud, industrial_module,
                                       multiblock_soc)
from repro.circuits.iscas import (c1355_like, c3540_like, c5315_like,
                                  c6288_like, c7552_like)
from repro.circuits.primitives import CircuitKit

__all__ = [
    "ALL_BENCHMARK_NAMES",
    "BENCHMARK_NAMES",
    "CircuitKit",
    "EXTRA_BENCHMARK_NAMES",
    "PAPER_GATE_COUNTS",
    "PAPER_ROW_COUNTS",
    "adder_128bits",
    "build_benchmark",
    "c1355_like",
    "c3540_like",
    "c5315_like",
    "c6288_like",
    "c7552_like",
    "control_cloud",
    "industrial_module",
    "multiblock_soc",
    "small_benchmarks",
]
