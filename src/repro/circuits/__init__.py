"""Benchmark circuit generators (the paper's nine evaluation designs)."""

from repro.circuits.catalog import (BENCHMARK_NAMES, PAPER_GATE_COUNTS,
                                    PAPER_ROW_COUNTS, build_benchmark,
                                    small_benchmarks)
from repro.circuits.datapath import adder_128bits
from repro.circuits.industrial import control_cloud, industrial_module
from repro.circuits.iscas import (c1355_like, c3540_like, c5315_like,
                                  c6288_like, c7552_like)
from repro.circuits.primitives import CircuitKit

__all__ = [
    "BENCHMARK_NAMES",
    "CircuitKit",
    "PAPER_GATE_COUNTS",
    "PAPER_ROW_COUNTS",
    "adder_128bits",
    "build_benchmark",
    "c1355_like",
    "c3540_like",
    "c5315_like",
    "c6288_like",
    "c7552_like",
    "control_cloud",
    "industrial_module",
    "small_benchmarks",
]
