"""The nine Table 1 benchmark designs (plus extras), by name.

The paper's evaluation (Table 1) runs nine designs: five ISCAS-85
circuits, a 128-bit adder, and three industrial SoC modules.  This module
is the single lookup point the experiment harness uses.  Beyond the
paper's nine, :data:`EXTRA_BENCHMARK_NAMES` lists workloads added for
experiments the paper motivates but does not run — currently
``soc_quad``, the block-local multi-core module the spatial-compensation
study is defined on.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.circuits.datapath import adder_128bits
from repro.circuits.industrial import industrial_module, multiblock_soc
from repro.circuits.iscas import (c1355_like, c3540_like, c5315_like,
                                  c6288_like, c7552_like)
from repro.errors import NetlistError
from repro.netlist.core import Netlist

#: paper's reported mapped gate counts, for reference in reports
PAPER_GATE_COUNTS = {
    "c1355": 439, "c3540": 842, "c5315": 1308, "c7552": 1666,
    "adder_128bits": 2026, "c6288": 2740,
    "industrial1": 4219, "industrial2": 10464, "industrial3": 23898,
}

#: paper's reported row counts
PAPER_ROW_COUNTS = {
    "c1355": 13, "c3540": 15, "c5315": 23, "c7552": 26,
    "adder_128bits": 28, "c6288": 33,
    "industrial1": 41, "industrial2": 63, "industrial3": 94,
}

_GENERATORS: dict[str, Callable[[], Netlist]] = {
    "c1355": c1355_like,
    "c3540": c3540_like,
    "c5315": c5315_like,
    "c7552": c7552_like,
    "c6288": c6288_like,
    "adder_128bits": adder_128bits,
    "industrial1": lambda: industrial_module("industrial1", 4219, seed=11),
    "industrial2": lambda: industrial_module("industrial2", 10464, seed=22),
    "industrial3": lambda: industrial_module("industrial3", 23898, seed=33),
    "soc_quad": lambda: multiblock_soc("soc_quad", num_blocks=4,
                                       block_gates=260, seed=7),
}

#: Table 1 ordering
BENCHMARK_NAMES = ("c1355", "c3540", "c5315", "c7552", "adder_128bits",
                   "c6288", "industrial1", "industrial2", "industrial3")

#: workloads beyond the paper's nine (not Table 1 rows): the
#: block-local SoC module the spatial-compensation study runs on
EXTRA_BENCHMARK_NAMES = ("soc_quad",)

#: every buildable design name
ALL_BENCHMARK_NAMES = BENCHMARK_NAMES + EXTRA_BENCHMARK_NAMES


def build_benchmark(name: str) -> Netlist:
    """Generate one of the Table 1 designs (or extras) by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise NetlistError(
            f"unknown benchmark {name!r}; choose from {ALL_BENCHMARK_NAMES}"
        ) from None
    return generator()


def small_benchmarks() -> tuple[str, ...]:
    """The designs the paper could solve exactly with the ILP."""
    return BENCHMARK_NAMES[:7]
