"""Reusable structural building blocks for the paper's Table 1
benchmark generators.

:class:`CircuitKit` wraps a :class:`repro.netlist.core.Netlist` and adds
named gates with auto-generated instance/net names, returning output net
names so blocks compose functionally::

    kit = CircuitKit(netlist, prefix="alu")
    total, carry = kit.ripple_adder(a_bits, b_bits)

All blocks emit *generic* functions (including XOR2) — technology mapping
decomposes whatever the reduced library lacks.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.core import Netlist


class CircuitKit:
    """Structural netlist builder with a naming prefix."""

    def __init__(self, netlist: Netlist, prefix: str = "u") -> None:
        self.netlist = netlist
        self.prefix = prefix
        self._counter = 0

    def _name(self, kind: str) -> str:
        self._counter += 1
        return f"{self.prefix}_{kind}{self._counter}"

    def gate(self, function: str, *inputs: str, output: str | None = None) -> str:
        """Add one gate; returns its output net name."""
        out = output or self.netlist.fresh_net(f"{self.prefix}_w")
        self.netlist.add_gate(self._name(function.lower()), function,
                              list(inputs), out)
        return out

    # -- one-liners ------------------------------------------------------------

    def inv(self, a: str, output: str | None = None) -> str:
        return self.gate("INV", a, output=output)

    def buf(self, a: str, output: str | None = None) -> str:
        return self.gate("BUF", a, output=output)

    def and2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("AND2", a, b, output=output)

    def or2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("OR2", a, b, output=output)

    def nand2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("NAND2", a, b, output=output)

    def nor2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("NOR2", a, b, output=output)

    def xor2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("XOR2", a, b, output=output)

    def xnor2(self, a: str, b: str, output: str | None = None) -> str:
        return self.gate("XNOR2", a, b, output=output)

    def dff(self, d: str, output: str | None = None) -> str:
        return self.gate("DFF", d, output=output)

    # -- trees ------------------------------------------------------------------

    def tree(self, function2: str, nets: list[str],
             output: str | None = None) -> str:
        """Balanced binary tree of a 2-input function over ``nets``."""
        if not nets:
            raise NetlistError("tree needs at least one input net")
        layer = list(nets)
        while len(layer) > 1:
            next_layer = []
            for index in range(0, len(layer) - 1, 2):
                is_last_pair = len(layer) == 2
                next_layer.append(self.gate(
                    function2, layer[index], layer[index + 1],
                    output=output if is_last_pair else None))
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        if len(nets) == 1 and output is not None:
            return self.buf(layer[0], output=output)
        return layer[0]

    def and_tree(self, nets: list[str], output: str | None = None) -> str:
        return self.tree("AND2", nets, output)

    def or_tree(self, nets: list[str], output: str | None = None) -> str:
        return self.tree("OR2", nets, output)

    def parity_tree(self, nets: list[str], output: str | None = None) -> str:
        """XOR reduction — the workhorse of the ECC benchmark."""
        return self.tree("XOR2", nets, output)

    # -- arithmetic ---------------------------------------------------------------

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Returns (sum, carry)."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry-out); classic 2-XOR + majority structure."""
        partial = self.xor2(a, b)
        total = self.xor2(partial, cin)
        carry = self.or2(self.and2(a, b), self.and2(partial, cin))
        return total, carry

    def ripple_adder(self, a_bits: list[str], b_bits: list[str],
                     cin: str | None = None) -> tuple[list[str], str]:
        """LSB-first ripple-carry adder; returns (sum bits, carry-out)."""
        if len(a_bits) != len(b_bits):
            raise NetlistError("adder operand widths differ")
        if not a_bits:
            raise NetlistError("adder needs at least one bit")
        sums: list[str] = []
        carry = cin
        for a, b in zip(a_bits, b_bits):
            if carry is None:
                total, carry = self.half_adder(a, b)
            else:
                total, carry = self.full_adder(a, b, carry)
            sums.append(total)
        return sums, carry

    def carry_select_adder(self, a_bits: list[str], b_bits: list[str],
                           block: int = 4) -> tuple[list[str], str]:
        """Carry-select adder: faster and larger than ripple (more gates)."""
        if len(a_bits) != len(b_bits):
            raise NetlistError("adder operand widths differ")
        sums: list[str] = []
        carry: str | None = None
        for start in range(0, len(a_bits), block):
            a_blk = a_bits[start:start + block]
            b_blk = b_bits[start:start + block]
            if carry is None:
                blk_sums, carry = self.ripple_adder(a_blk, b_blk)
                sums.extend(blk_sums)
                continue
            zero_sums, zero_carry = self.ripple_adder(a_blk, b_blk)
            one = self.or2(a_blk[0], self.inv(a_blk[0]))  # constant 1
            one_sums, one_carry = self.ripple_adder(a_blk, b_blk, cin=one)
            for zero_s, one_s in zip(zero_sums, one_sums):
                sums.append(self.mux2(zero_s, one_s, carry))
            carry = self.mux2(zero_carry, one_carry, carry)
        assert carry is not None
        return sums, carry

    # -- selection / comparison -----------------------------------------------------

    def mux2(self, a: str, b: str, select: str,
             output: str | None = None) -> str:
        """2:1 mux: out = select ? b : a (NAND-style, 4 gates)."""
        select_n = self.inv(select)
        low = self.nand2(a, select_n)
        high = self.nand2(b, select)
        return self.nand2(low, high, output=output)

    def mux4(self, inputs: list[str], selects: list[str],
             output: str | None = None) -> str:
        """4:1 mux from three 2:1 muxes; selects = [s0, s1]."""
        if len(inputs) != 4 or len(selects) != 2:
            raise NetlistError("mux4 needs 4 inputs and 2 selects")
        low = self.mux2(inputs[0], inputs[1], selects[0])
        high = self.mux2(inputs[2], inputs[3], selects[0])
        return self.mux2(low, high, selects[1], output=output)

    def equality(self, a_bits: list[str], b_bits: list[str],
                 output: str | None = None) -> str:
        """1 iff the two buses are bit-wise equal."""
        bits = [self.xnor2(a, b) for a, b in zip(a_bits, b_bits)]
        return self.and_tree(bits, output)

    def magnitude(self, a_bits: list[str], b_bits: list[str],
                  output: str | None = None) -> str:
        """1 iff bus a > bus b (unsigned, LSB-first buses)."""
        greater: str | None = None
        equal_so_far: str | None = None
        for a, b in zip(reversed(a_bits), reversed(b_bits)):  # MSB first
            b_n = self.inv(b)
            a_gt_b = self.and2(a, b_n)
            a_eq_b = self.xnor2(a, b)
            if greater is None:
                greater = a_gt_b
                equal_so_far = a_eq_b
            else:
                assert equal_so_far is not None
                greater = self.or2(greater, self.and2(equal_so_far, a_gt_b))
                equal_so_far = self.and2(equal_so_far, a_eq_b)
        assert greater is not None
        if output is not None:
            return self.buf(greater, output=output)
        return greater

    # -- registers -----------------------------------------------------------------

    def register(self, data_bits: list[str],
                 outputs: list[str] | None = None) -> list[str]:
        """A bank of DFFs, one per data bit."""
        if outputs is not None and len(outputs) != len(data_bits):
            raise NetlistError("register output width mismatch")
        result = []
        for index, bit in enumerate(data_bits):
            out = outputs[index] if outputs is not None else None
            result.append(self.dff(bit, output=out))
        return result
