"""Synthetic "industrial SoC module" generators.

The paper's last three benchmarks are circuit modules of an industrial
SoC (4219 / 10464 / 23898 gates) that cannot be redistributed.  We
substitute structured synthetic modules: a mix of registered datapath
slices (adders, muxes, comparators) and random control-logic clouds,
deterministically seeded.  The mix keeps the gate-function histogram,
logic depth and fanout distribution in the range typical of control-heavy
SoC blocks, which is what drives the shape of the FBB clustering problem.
"""

from __future__ import annotations

import random

from repro.circuits.primitives import CircuitKit
from repro.errors import NetlistError
from repro.netlist.core import Netlist

_CLOUD_FUNCTIONS = ("NAND2", "NOR2", "AND2", "OR2", "NAND3", "NOR3",
                    "AND3", "INV")


def control_cloud(kit: CircuitKit, inputs: list[str], num_gates: int,
                  rng: random.Random) -> list[str]:
    """Random layered control-logic cloud; returns its dangling outputs.

    Gates pick their fanins from recent nets (locality) with occasional
    long-range taps, emulating the reconvergent shape of synthesized
    control logic.
    """
    if not inputs:
        raise NetlistError("control cloud needs seed inputs")
    nets = list(inputs)
    consumed: set[str] = set()
    for _ in range(num_gates):
        function = rng.choice(_CLOUD_FUNCTIONS)
        arity = int(function[-1]) if function[-1].isdigit() else 1
        window = nets[-24:] if rng.random() < 0.85 else nets
        fanins = [rng.choice(window) for _ in range(arity)]
        out = kit.gate(function, *fanins)
        consumed.update(fanins)
        nets.append(out)
    return [net for net in nets if net not in consumed
            and net not in inputs]


def industrial_module(name: str, target_gates: int,
                      seed: int = 1) -> Netlist:
    """Build a synthetic SoC module of roughly ``target_gates`` mapped gates.

    Composition: ~55 % random control clouds, ~30 % registered datapath
    (adders + muxes), ~15 % registers — a typical control-dominated SoC
    block profile.  ``target_gates`` counts *mapped* gates; the generator
    accounts for XOR decomposition (4 NAND2 per XOR) when budgeting.
    """
    if target_gates < 200:
        raise NetlistError("industrial modules start at 200 gates")
    rng = random.Random(seed)
    netlist = Netlist(name)
    kit = CircuitKit(netlist, "ind")

    num_inputs = max(16, int(target_gates ** 0.5) // 2 * 2)
    inputs = [netlist.add_input(f"in{i}") for i in range(num_inputs)]

    # Budget in mapped-gate units.
    datapath_budget = int(target_gates * 0.30)
    register_budget = int(target_gates * 0.15)
    cloud_budget = target_gates - datapath_budget - register_budget

    loose_ends: list[str] = []

    # Datapath slices: 16-bit adder+mux slices, ~11 mapped gates per FA
    # (2 XOR -> 8 NAND2, plus 2 AND + 1 OR) and 4 per mux2.
    slice_width = 16
    mapped_per_slice = slice_width * 11 + slice_width * 4
    num_slices = max(1, datapath_budget // mapped_per_slice)
    registered_nets: list[str] = []
    for index in range(num_slices):
        a_bits = [rng.choice(inputs) for _ in range(slice_width)]
        b_bits = [rng.choice(inputs) for _ in range(slice_width)]
        sums, carry = kit.ripple_adder(a_bits, b_bits)
        select = rng.choice(inputs)
        muxed = [kit.mux2(s, rng.choice(inputs), select) for s in sums]
        loose_ends.append(carry)
        registered_nets.extend(muxed)

    # Registers: flop a slice of datapath outputs (1 mapped gate each).
    num_flops = min(register_budget, len(registered_nets))
    flop_outs = kit.register(registered_nets[:num_flops])
    loose_ends.extend(registered_nets[num_flops:])

    # Control clouds seeded by flop outputs + primary inputs.
    seeds = flop_outs + inputs
    remaining = cloud_budget
    cloud_index = 0
    while remaining > 0:
        size = min(remaining, 400 + rng.randrange(200))
        start = rng.randrange(max(1, len(seeds) - 32))
        outs = control_cloud(kit, seeds[start:start + 32] or seeds,
                             size, rng)
        loose_ends.extend(outs)
        remaining -= size
        cloud_index += 1

    # Tie every loose end to a primary output (no dangling logic).
    for index, net in enumerate(loose_ends):
        out = netlist.add_output(f"out{index}")
        kit.buf(net, output=out)
    netlist.validate()
    return netlist


def multiblock_soc(name: str = "soc_quad", num_blocks: int = 4,
                   block_gates: int = 260, seed: int = 7) -> Netlist:
    """SoC module of ``num_blocks`` *independent* circuit blocks.

    The paper's physical-clustering argument assumes block locality:
    an SoC module is a set of cores/blocks whose critical paths live
    inside the block, so a spatially coherent Vth shift hits whole
    blocks and per-cluster body biasing can compensate each block
    separately.  This generator makes that structure explicit: each
    block is a self-contained adder+control-cloud island with its own
    inputs, registers and outputs, sharing *no* nets with its
    neighbours.  The placer keeps disconnected components contiguous,
    so block ``k`` occupies its own band of rows — the workload the
    spatial-compensation experiments (``repro-fbb spatial``,
    ``benchmarks/bench_spatial.py``) are defined on.
    """
    if num_blocks < 1:
        raise NetlistError("need at least one block")
    if block_gates < 120:
        raise NetlistError("SoC blocks start at 120 gates")
    rng = random.Random(seed)
    netlist = Netlist(name)

    for block in range(num_blocks):
        kit = CircuitKit(netlist, f"b{block}")
        num_inputs = 12
        inputs = [netlist.add_input(f"b{block}_in{i}")
                  for i in range(num_inputs)]

        # A registered 8-bit adder slice anchors the block's datapath
        # (~8 * 11 mapped gates), the rest is a control cloud.
        a_bits = [rng.choice(inputs) for _ in range(8)]
        b_bits = [rng.choice(inputs) for _ in range(8)]
        sums, carry = kit.ripple_adder(a_bits, b_bits)
        flop_outs = kit.register(sums)

        cloud_budget = max(block_gates - 8 * 11 - len(sums), 24)
        outs = control_cloud(kit, flop_outs + inputs, cloud_budget, rng)
        loose = outs + [carry]
        for index, net in enumerate(loose):
            out = netlist.add_output(f"b{block}_out{index}")
            kit.buf(net, output=out)
    netlist.validate()
    return netlist
