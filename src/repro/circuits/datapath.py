"""Registered datapath benchmark generators (the paper's ``adder 128bits``)."""

from __future__ import annotations

from repro.circuits.primitives import CircuitKit
from repro.netlist.core import Netlist


def adder_128bits(width: int = 128, registered: bool = True) -> Netlist:
    """128-bit adder with registered operands and result.

    The paper's sixth benchmark.  Registering the I/O creates classic
    flop-to-flop timing paths (launch clk->Q, ripple carry chain, setup),
    which exercises the sequential-path support of the STA engine, while
    the c-series benchmarks cover the pure-combinational case.
    """
    netlist = Netlist("adder_128bits")
    kit = CircuitKit(netlist, "add")
    a_in = [netlist.add_input(f"a{i}") for i in range(width)]
    b_in = [netlist.add_input(f"b{i}") for i in range(width)]
    netlist.add_input("cin")
    outputs = [netlist.add_output(f"sum{i}") for i in range(width)]
    netlist.add_output("cout")

    if registered:
        a_bits = kit.register(a_in)
        b_bits = kit.register(b_in)
        carry_in = kit.dff("cin")
    else:
        a_bits, b_bits, carry_in = a_in, b_in, "cin"

    sums, carry = kit.ripple_adder(a_bits, b_bits, cin=carry_in)

    if registered:
        for net, out in zip(sums, outputs):
            kit.dff(net, output=out)
        kit.dff(carry, output="cout")
    else:
        for net, out in zip(sums, outputs):
            kit.buf(net, output=out)
        kit.buf(carry, output="cout")
    netlist.validate()
    return netlist
