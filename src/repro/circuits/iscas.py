"""ISCAS-85-like benchmark generators.

The paper evaluates on five ISCAS-85 circuits.  The original netlists are
not bundled here; instead each generator builds a circuit of the same
*function class* and comparable post-mapping size, which preserves what
matters for the FBB clustering problem — the gate count scale, logic
depth, and the shape of the path-delay distribution.  In particular the
16x16 array multiplier (c6288's function) has a huge population of
near-critical paths, which is exactly why c6288 is the constraint-count
outlier of the paper's Table 1.

All circuits here are pure combinational, like the c-series originals.
DESIGN.md documents this substitution ("Paper-to-code substitutions").
"""

from __future__ import annotations

from repro.circuits.primitives import CircuitKit
from repro.netlist.core import Netlist


def _bus(netlist: Netlist, name: str, width: int, as_input: bool) -> list[str]:
    nets = [f"{name}{i}" for i in range(width)]
    for net in nets:
        if as_input:
            netlist.add_input(net)
        else:
            netlist.add_output(net)
    return nets


def c1355_like(data_width: int = 22, check_bits: int = 6) -> Netlist:
    """Single-error-correction network (c499/c1355 function class).

    Syndrome XOR trees over overlapping data subsets, a per-bit syndrome
    decoder, and a correcting XOR per data bit — all-XOR-heavy, shallow,
    like the original 32-channel SEC translator.  Default widths are
    calibrated so the *mapped* size lands at the paper's Table 1 scale
    (439 gates) under our mapper/library rather than Synopsys'.
    """
    netlist = Netlist("c1355")
    kit = CircuitKit(netlist, "sec")
    data = _bus(netlist, "d", data_width, as_input=True)
    checks = _bus(netlist, "c", check_bits, as_input=True)
    corrected = _bus(netlist, "z", data_width, as_input=False)

    # Hamming-style overlapping parity groups.
    syndrome: list[str] = []
    for bit in range(check_bits):
        group = [data[i] for i in range(data_width)
                 if (i + 1) & (1 << (bit % 6)) or i % check_bits == bit]
        tree = kit.parity_tree(group)
        syndrome.append(kit.xor2(tree, checks[bit]))

    inverted = [kit.inv(s) for s in syndrome]
    for index in range(data_width):
        pattern = index + 1
        terms = []
        for bit in range(check_bits):
            terms.append(syndrome[bit] if pattern & (1 << (bit % 6))
                         else inverted[bit])
        match = kit.and_tree(terms)
        kit.xor2(data[index], match, output=corrected[index])
    netlist.validate()
    return netlist


def c3540_like(width: int = 19) -> Netlist:
    """ALU with boolean unit, adder, and function select (c3540 class).

    The original is an 8-bit ALU with BCD/shift features; our slice is
    wider but functionally simpler, with the default width calibrated to
    the paper's mapped size (842 gates).
    """
    netlist = Netlist("c3540")
    kit = CircuitKit(netlist, "alu8")
    a = _bus(netlist, "a", width, as_input=True)
    b = _bus(netlist, "b", width, as_input=True)
    sel = _bus(netlist, "s", 3, as_input=True)
    result = _bus(netlist, "f", width, as_input=False)
    netlist.add_output("cout")
    netlist.add_output("zero")
    netlist.add_output("parity")

    b_inverted = [kit.inv(bit) for bit in b]
    b_effective = [kit.mux2(bit, inv_bit, sel[2])
                   for bit, inv_bit in zip(b, b_inverted)]
    add_sums, carry = kit.ripple_adder(a, b_effective, cin=sel[2])
    kit.buf(carry, output="cout")

    and_bits = [kit.and2(x, y) for x, y in zip(a, b)]
    or_bits = [kit.or2(x, y) for x, y in zip(a, b)]
    xor_bits = [kit.xor2(x, y) for x, y in zip(a, b)]

    selected = []
    for i in range(width):
        selected.append(kit.mux4(
            [add_sums[i], and_bits[i], or_bits[i], xor_bits[i]],
            [sel[0], sel[1]]))
    # shifted variant adds a second selection layer (like c3540's shifter)
    for i in range(width):
        neighbour = selected[(i + 1) % width]
        kit.mux2(selected[i], neighbour, sel[2], output=result[i])

    inverted = [kit.inv(s) for s in selected]
    kit.and_tree(inverted, output="zero")
    kit.parity_tree(selected, output="parity")
    netlist.validate()
    return netlist


def c5315_like(width: int = 18) -> Netlist:
    """ALU with dual adders, comparator and selectors (c5315 class).

    The original is a 9-bit ALU; the default width here is calibrated to
    reach the paper's mapped size (1308 gates) under our mapper/library.
    """
    netlist = Netlist("c5315")
    kit = CircuitKit(netlist, "alu9")
    a = _bus(netlist, "a", width, as_input=True)
    b = _bus(netlist, "b", width, as_input=True)
    c = _bus(netlist, "c", width, as_input=True)
    d = _bus(netlist, "d", width, as_input=True)
    sel = _bus(netlist, "s", 4, as_input=True)
    out1 = _bus(netlist, "p", width, as_input=False)
    out2 = _bus(netlist, "q", width, as_input=False)
    netlist.add_output("gt")
    netlist.add_output("eq")
    netlist.add_output("ovf")

    sum_ab, carry_ab = kit.ripple_adder(a, b)
    sum_cd, carry_cd = kit.ripple_adder(c, d)

    for i in range(width):
        and_bit = kit.and2(a[i], c[i])
        or_bit = kit.or2(b[i], d[i])
        kit.mux4([sum_ab[i], sum_cd[i], and_bit, or_bit],
                 [sel[0], sel[1]], output=out1[i])
    cross_sums, cross_carry = kit.ripple_adder(sum_ab, sum_cd)
    for i in range(width):
        kit.mux2(cross_sums[i], kit.xor2(a[i], d[i]), sel[2], output=out2[i])

    kit.magnitude(a, b, output="gt")
    kit.equality(c, d, output="eq")
    kit.or2(kit.and2(carry_ab, carry_cd), kit.and2(cross_carry, sel[3]),
            output="ovf")
    netlist.validate()
    return netlist


def c7552_like(width: int = 32) -> Netlist:
    """32-bit adder/comparator with parity checks (c7552 class)."""
    netlist = Netlist("c7552")
    kit = CircuitKit(netlist, "addcmp")
    a = _bus(netlist, "a", width, as_input=True)
    b = _bus(netlist, "b", width, as_input=True)
    m = _bus(netlist, "m", width, as_input=True)
    sel = _bus(netlist, "s", 2, as_input=True)
    total = _bus(netlist, "y", width, as_input=False)
    netlist.add_output("cout")
    netlist.add_output("agtb")
    netlist.add_output("aeqb")
    netlist.add_output("par_a")
    netlist.add_output("par_y")

    masked_b = [kit.mux2(bit, kit.and2(bit, mask), sel[0])
                for bit, mask in zip(b, m)]
    sums, carry = kit.carry_select_adder(a, masked_b, block=4)
    for i in range(width):
        kit.mux2(sums[i], kit.xor2(sums[i], m[i]), sel[1], output=total[i])
    kit.buf(carry, output="cout")
    kit.magnitude(a, masked_b, output="agtb")
    kit.equality(a, masked_b, output="aeqb")
    kit.parity_tree(a, output="par_a")
    kit.parity_tree(sums, output="par_y")
    netlist.validate()
    return netlist


def c6288_like(width: int = 16) -> Netlist:
    """Array multiplier (c6288's function — the constraint-count outlier).

    Classic carry-save array: ``width**2`` partial-product AND gates,
    a (width-1)-row adder array, and a final ripple stage.  The array's
    reconvergent structure produces thousands of nearly-equal-length
    paths, reproducing c6288's outsized timing-constraint population.
    """
    netlist = Netlist("c6288")
    kit = CircuitKit(netlist, "mult")
    a = _bus(netlist, "a", width, as_input=True)
    b = _bus(netlist, "b", width, as_input=True)
    product = _bus(netlist, "p", 2 * width, as_input=False)

    partial = [[kit.and2(a[i], b[j]) for i in range(width)]
               for j in range(width)]

    # Row 0 feeds straight in; each later row adds with carry-save.
    sums = list(partial[0])
    carries: list[str] = []
    kit.buf(sums[0], output=product[0])
    for row in range(1, width):
        new_sums: list[str] = []
        new_carries: list[str] = []
        for col in range(width):
            addend = partial[row][col]
            above = sums[col + 1] if col + 1 < width else None
            carry_in = carries[col] if col < len(carries) else None
            if above is None and carry_in is None:
                new_sums.append(addend)
            elif carry_in is None:
                s, c = kit.half_adder(addend, above)
                new_sums.append(s)
                new_carries.append(c)
            elif above is None:
                s, c = kit.half_adder(addend, carry_in)
                new_sums.append(s)
                new_carries.append(c)
            else:
                s, c = kit.full_adder(addend, above, carry_in)
                new_sums.append(s)
                new_carries.append(c)
        sums = new_sums
        carries = new_carries
        kit.buf(sums[0], output=product[row])

    # Final carry-propagate stage over the remaining sum/carry vectors.
    rest_a = sums[1:]
    rest_b = carries[:len(rest_a)]
    while len(rest_b) < len(rest_a):
        rest_b.append(kit.and2(rest_a[0], kit.inv(rest_a[0])))  # constant 0
    final_sums, final_carry = kit.ripple_adder(rest_a, rest_b)
    for offset, net in enumerate(final_sums):
        kit.buf(net, output=product[width + offset])
    kit.buf(final_carry, output=product[2 * width - 1])
    netlist.validate()
    return netlist
