"""Unit conventions and conversion helpers (ps/nW/V conventions the
paper's tables use throughout).

The library stores quantities in the following base units, chosen so that
typical 45 nm standard-cell numbers are O(1..1000) and comfortably exact in
double precision:

================  ==========  =========================================
Quantity          Base unit   Typical magnitude
================  ==========  =========================================
Time / delay      picosecond  gate delay ~10..80 ps, clock ~1000 ps
Power (leakage)   nanowatt    cell leakage ~0.05..2 nW
Distance          micrometre  site width 0.19 um, row height 1.26 um
Voltage           volt        Vdd ~1.0..1.1 V, vbs 0..0.5 V
Capacitance       femtofarad  input cap ~0.5..5 fF
Energy            femtojoule
Temperature       kelvin
================  ==========  =========================================

Functions here only convert to/from display units; all internal math uses
the base units directly.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------
PS = 1.0
NS = 1e3 * PS
FS = 1e-3 * PS

# -- power -----------------------------------------------------------------
NW = 1.0
UW = 1e3 * NW
MW = 1e6 * NW
PW = 1e-3 * NW

# -- distance --------------------------------------------------------------
UM = 1.0
NM = 1e-3 * UM
MM = 1e3 * UM

# -- voltage ---------------------------------------------------------------
V = 1.0
MV = 1e-3 * V

# -- capacitance -----------------------------------------------------------
FF = 1.0
PF = 1e3 * FF

# -- physical constants ----------------------------------------------------
BOLTZMANN_EV = 8.617333262e-5
"""Boltzmann constant in eV/K."""

ROOM_TEMPERATURE_K = 300.0
"""Default junction temperature for characterization, kelvin."""


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return kT/q in volts at the given temperature."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN_EV * temperature_k


def ps_to_ns(value_ps: float) -> float:
    """Convert picoseconds to nanoseconds."""
    return value_ps / NS


def nw_to_uw(value_nw: float) -> float:
    """Convert nanowatts to microwatts."""
    return value_nw / UW


def uw_to_nw(value_uw: float) -> float:
    """Convert microwatts to nanowatts."""
    return value_uw * UW


def mv_to_v(value_mv: float) -> float:
    """Convert millivolts to volts."""
    return value_mv * MV


def v_to_mv(value_v: float) -> float:
    """Convert volts to millivolts."""
    return value_v / MV


def percent(fraction: float) -> float:
    """Express a fraction as a percentage (0.05 -> 5.0)."""
    return 100.0 * fraction


def fraction(percent_value: float) -> float:
    """Express a percentage as a fraction (5.0 -> 0.05)."""
    return percent_value / 100.0
