"""PassOne / block-level single-voltage FBB (the paper's baseline).

The paper compares against "Single BB": the whole block receives one
body-bias voltage, chosen as the smallest grid voltage that recovers all
violating paths.  That is exactly PassOne of the two-pass heuristic
(Fig. 5), and Table 1's ``Single BB`` column is its leakage.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import FBBProblem
from repro.core.solution import BiasSolution
from repro.errors import InfeasibleError


def pass_one(problem: FBBProblem) -> int:
    """Smallest uniform bias level meeting timing (Fig. 5, PassOne).

    Raises :class:`InfeasibleError` when even the maximum forward bias
    cannot recover the slowdown — the die cannot be compensated by FBB
    alone.
    """
    for level in range(problem.num_levels):
        levels = np.full(problem.num_rows, level)
        if problem.check_timing(levels):
            return level
    raise InfeasibleError(
        f"{problem.design_name}: no uniform bias level up to "
        f"{problem.vbs_levels[-1]:.2f} V recovers beta="
        f"{problem.beta:.0%} slowdown")


def solve_single_bb(problem: FBBProblem) -> BiasSolution:
    """Block-level FBB baseline: one voltage for the whole design."""
    start = time.perf_counter()
    level = pass_one(problem)
    return BiasSolution(
        problem=problem,
        levels=tuple([level] * problem.num_rows),
        method="single-bb",
        runtime_s=time.perf_counter() - start,
        optimal=False,
        extras={"jopt": level},
    )
