"""BiasSolution: a per-row voltage assignment plus its bookkeeping
(leakage, cluster count and timing status of one paper Sec. 4 run)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import FBBProblem
from repro.errors import AllocationError


@dataclass(frozen=True)
class BiasSolution:
    """The result of an allocation run.

    ``levels[i]`` is the bias-grid index assigned to row ``i`` (0 means
    no body bias).  The solution knows its leakage, cluster structure
    and how it was produced.
    """

    problem: FBBProblem
    levels: tuple[int, ...]
    method: str
    runtime_s: float = 0.0
    optimal: bool = False
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.levels) != self.problem.num_rows:
            raise AllocationError(
                f"solution covers {len(self.levels)} rows, problem has "
                f"{self.problem.num_rows}")

    # -- derived quantities ---------------------------------------------------

    @property
    def levels_array(self) -> np.ndarray:
        return np.asarray(self.levels, dtype=int)

    @property
    def leakage_nw(self) -> float:
        return self.problem.total_leakage_nw(self.levels_array)

    @property
    def leakage_uw(self) -> float:
        return self.leakage_nw / 1e3

    @property
    def num_clusters(self) -> int:
        return self.problem.num_clusters(self.levels_array)

    @property
    def is_timing_feasible(self) -> bool:
        return self.problem.check_timing(self.levels_array)

    def vbs_of_row(self, row: int) -> float:
        """Body-bias voltage assigned to a row, volts."""
        return self.problem.vbs_levels[self.levels[row]]

    def clusters(self) -> dict[float, list[int]]:
        """Voltage -> rows mapping, voltages ascending (NBB first)."""
        grouping: dict[float, list[int]] = {}
        for row, level in enumerate(self.levels):
            grouping.setdefault(self.problem.vbs_levels[level], []).append(row)
        return dict(sorted(grouping.items()))

    def savings_vs(self, baseline_leakage_nw: float) -> float:
        """Leakage savings in percent against a baseline (Table 1)."""
        if baseline_leakage_nw <= 0:
            raise AllocationError("baseline leakage must be positive")
        return 100.0 * (1.0 - self.leakage_nw / baseline_leakage_nw)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        cluster_text = ", ".join(
            f"{vbs * 1000:.0f}mV x{len(rows)}"
            for vbs, rows in self.clusters().items())
        return (f"{self.problem.design_name} [{self.method}] "
                f"beta={self.problem.beta:.0%}: leakage "
                f"{self.leakage_uw:.3f} uW, {self.num_clusters} clusters "
                f"({cluster_text}), timing "
                f"{'OK' if self.is_timing_feasible else 'VIOLATED'}")


def uniform_solution(problem: FBBProblem, level: int,
                     method: str = "uniform") -> BiasSolution:
    """All rows at one bias level (block-level FBB)."""
    if not 0 <= level < problem.num_levels:
        raise AllocationError(f"level {level} outside grid")
    return BiasSolution(problem=problem,
                        levels=tuple([level] * problem.num_rows),
                        method=method)
