"""BiasSolution: a per-row voltage assignment plus its bookkeeping
(leakage, cluster count and timing status of one paper Sec. 4 run)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import FBBProblem
from repro.errors import AllocationError

if TYPE_CHECKING:  # the grouping layer sits above core: no runtime import
    from repro.grouping.domains import RowGrouping


@dataclass(frozen=True)
class BiasSolution:
    """The result of an allocation run.

    ``levels[i]`` is the bias-grid index assigned to row ``i`` (0 means
    no body bias).  The solution knows its leakage, cluster structure
    and how it was produced.
    """

    problem: FBBProblem
    levels: tuple[int, ...]
    method: str
    runtime_s: float = 0.0
    optimal: bool = False
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.levels) != self.problem.num_rows:
            raise AllocationError(
                f"solution covers {len(self.levels)} rows, problem has "
                f"{self.problem.num_rows}")

    # -- derived quantities ---------------------------------------------------

    @property
    def levels_array(self) -> np.ndarray:
        return np.asarray(self.levels, dtype=int)

    @property
    def leakage_nw(self) -> float:
        return self.problem.total_leakage_nw(self.levels_array)

    @property
    def leakage_uw(self) -> float:
        return self.leakage_nw / 1e3

    @property
    def num_clusters(self) -> int:
        return self.problem.num_clusters(self.levels_array)

    @property
    def num_domains(self) -> int:
        """Physical bias domains (contiguous same-voltage row runs) —
        the well count, distinct from the voltage-cluster count."""
        return self.problem.num_domains(self.levels_array)

    @property
    def num_groups(self) -> int:
        """Decision granularity the solver ran at: the grouping's
        domain count for a solution produced via
        :func:`repro.grouping.solve_grouped`, otherwise the row count
        (per-row allocation)."""
        return int(self.extras.get("num_groups", self.problem.num_rows))

    @property
    def grouping_name(self) -> str:
        """Grouping spec the solution was solved under ("identity" for
        plain per-row solves)."""
        return str(self.extras.get("grouping", "identity"))

    @property
    def is_timing_feasible(self) -> bool:
        return self.problem.check_timing(self.levels_array)

    def vbs_of_row(self, row: int) -> float:
        """Body-bias voltage assigned to a row, volts."""
        return self.problem.vbs_levels[self.levels[row]]

    def clusters(self) -> dict[float, list[int]]:
        """Voltage -> rows mapping, voltages ascending (NBB first)."""
        grouping: dict[float, list[int]] = {}
        for row, level in enumerate(self.levels):
            grouping.setdefault(self.problem.vbs_levels[level], []).append(row)
        return dict(sorted(grouping.items()))

    def expand_to(self, problem: FBBProblem,
                  grouping: RowGrouping) -> BiasSolution:
        """Group -> row expansion: lift a bias-domain solution onto the
        full per-row problem.

        ``self`` must have been solved on the reduced problem of
        ``grouping`` (one level per domain); the result assigns every
        member row its domain's level against ``problem``, so layout,
        wells, leakage and reports keep consuming ordinary per-row
        level vectors.  The domain-level assignment is preserved in
        ``extras`` (``grouping``/``num_groups``/``group_levels``).
        """
        if len(self.levels) != grouping.num_groups:
            raise AllocationError(
                f"solution has {len(self.levels)} domain levels, "
                f"grouping {grouping.name!r} has {grouping.num_groups} "
                "domains")
        if grouping.num_rows != problem.num_rows:
            raise AllocationError(
                f"grouping {grouping.name!r} covers {grouping.num_rows} "
                f"rows, problem has {problem.num_rows}")
        row_levels = grouping.expand(self.levels_array)
        extras = dict(self.extras)
        extras.update({
            "grouping": grouping.name,
            "num_groups": grouping.num_groups,
            "group_levels": [int(level) for level in self.levels],
        })
        return BiasSolution(
            problem=problem,
            levels=tuple(int(level) for level in row_levels),
            method=self.method,
            runtime_s=self.runtime_s,
            optimal=self.optimal,
            extras=extras,
        )

    def savings_vs(self, baseline_leakage_nw: float) -> float:
        """Leakage savings in percent against a baseline (Table 1)."""
        if baseline_leakage_nw <= 0:
            raise AllocationError("baseline leakage must be positive")
        return 100.0 * (1.0 - self.leakage_nw / baseline_leakage_nw)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        cluster_text = ", ".join(
            f"{vbs * 1000:.0f}mV x{len(rows)}"
            for vbs, rows in self.clusters().items())
        return (f"{self.problem.design_name} [{self.method}] "
                f"beta={self.problem.beta:.0%}: leakage "
                f"{self.leakage_uw:.3f} uW, {self.num_clusters} clusters "
                f"({cluster_text}), timing "
                f"{'OK' if self.is_timing_feasible else 'VIOLATED'}")


def uniform_solution(problem: FBBProblem, level: int,
                     method: str = "uniform") -> BiasSolution:
    """All rows at one bias level (block-level FBB)."""
    if not 0 <= level < problem.num_levels:
        raise AllocationError(f"level {level} outside grid")
    return BiasSolution(problem=problem,
                        levels=tuple([level] * problem.num_rows),
                        method=method)
