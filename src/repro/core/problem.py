"""The row-clustered FBB allocation problem (paper Sec. 4.1 pre-processing).

Given a placed design, a characterized library and a slowdown
coefficient ``beta``, this module assembles everything both allocation
algorithms consume:

* ``L[i, j]`` — leakage of row ``i`` at bias level ``j`` (objective data);
* the pruned critical-path set ``Pi`` (longest path through each cell,
  filtered to the paths whose degraded delay violates ``Dcrit``);
* ``D[k, i]`` — the degraded delay that path ``k``'s gates contribute on
  row ``i``.  The paper's coefficient ``a[i,j,k]`` (delay reduction of
  path ``k`` when row ``i`` gets voltage ``j``) factors as
  ``a[i,j,k] = D[k,i] * speedup_j`` because body bias scales every gate
  delay by one technology-level factor;
* ``req[k]`` — the required recovery of path ``k``:
  ``pd_k * (1 + beta) - Dcrit``.

Sign convention: the paper's Eq. (2) writes the timing constraint with
mixed signs (a "reduction" bounded above by a negative number); we use
the equivalent physically-readable form **recovery >= requirement**:
``sum_i D[k,i] * speedup(level_i) >= req[k]``.

``check_timing`` is the vectorised CheckTiming of Fig. 4: one sparse
mat-vec per call, which is what makes the two-pass heuristic's inner
loop linear-time in practice.

**Spatial (per-row) slowdowns.**  The paper senses one beta per die; the
spatial compensation engine (DESIGN.md, "Spatial compensation") senses
the *correlated intra-die field* per region and hands ``build_problem``
a whole slowdown vector — ``beta`` may be a scalar or a length-``N``
per-row array ``beta_i``.  The pre-processing generalizes naturally:
row ``i``'s contribution to path ``k`` degrades by its own factor,
``D[k, i] = d[k, i] * (1 + beta_i)``, the endpoint setup derates by the
path's delay-weighted mean slowdown, and ``req[k]`` is the degraded
path delay minus ``Dcrit``.  A constant vector reproduces the scalar
problem; heterogeneous vectors are what let the allocators bias only
the rows that are actually slow.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import AllocationError
from repro.placement.placed_design import PlacedDesign
from repro.power.leakage import leakage_matrix
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import TimingPath, extract_paths, violating_paths
from repro.tech.characterize import CharacterizedLibrary

if TYPE_CHECKING:  # the grouping layer sits above core: import lazily
    from repro.grouping.domains import RowGrouping

#: numerical slack tolerance for timing feasibility, picoseconds
TIMING_TOL_PS = 1e-6


@dataclass(frozen=True)
class FBBProblem:
    """Immutable problem instance for the allocation algorithms."""

    design_name: str
    beta: float
    dcrit_ps: float
    num_rows: int
    vbs_levels: tuple[float, ...]
    speedups: np.ndarray
    """speedup[j]: fractional delay reduction at bias level j."""
    leakage_nw: np.ndarray
    """L[i, j]: leakage of row i at level j, nanowatts. Shape (N, P)."""
    recovery: csr_matrix
    """D[k, i]: degraded gate delay of path k on row i, ps. Shape (M, N)."""
    gate_counts: csr_matrix
    """Q[k, i]: number of path-k cells on row i. Shape (M, N)."""
    required_ps: np.ndarray
    """req[k]: recovery needed by path k, picoseconds. Shape (M,)."""
    paths: tuple[TimingPath, ...]
    """The pruned violating-path set Pi, aligned with matrix rows."""
    row_betas: np.ndarray | None = None
    """Per-row slowdowns beta_i, shape (N,).  Uniform problems carry
    ``full(N, beta)``; spatial problems carry the sensed field.
    ``None`` is accepted at construction only: ``__post_init__``
    normalizes it to the uniform vector, so readers always see an
    array."""

    def __post_init__(self) -> None:
        betas = (np.full(self.num_rows, self.beta)
                 if self.row_betas is None
                 else np.asarray(self.row_betas, dtype=float))
        if betas.shape != (self.num_rows,):
            raise AllocationError(
                f"row_betas needs shape ({self.num_rows},), got "
                f"{betas.shape}")
        object.__setattr__(self, "row_betas", betas)

    @property
    def num_levels(self) -> int:
        """The paper's P (11 for the default 0..0.5 V / 50 mV grid)."""
        return len(self.vbs_levels)

    @property
    def is_spatial(self) -> bool:
        """True when rows carry heterogeneous slowdowns (sensed field)."""
        return bool(self.num_rows > 0
                    and np.any(self.row_betas != self.row_betas[0]))

    @property
    def num_constraints(self) -> int:
        """The paper's M (Table 1's 'No.Constr' column)."""
        return len(self.required_ps)

    # -- feasibility and cost ---------------------------------------------------

    def _check_levels(self, levels: np.ndarray) -> np.ndarray:
        levels = np.asarray(levels)
        if levels.shape != (self.num_rows,):
            raise AllocationError(
                f"assignment needs {self.num_rows} levels, got "
                f"{levels.shape}")
        if levels.min(initial=0) < 0 or \
                levels.max(initial=0) >= self.num_levels:
            raise AllocationError("bias level outside grid")
        return levels.astype(int)

    def path_slacks_ps(self, levels: np.ndarray) -> np.ndarray:
        """Per-path slack: achieved recovery minus requirement."""
        levels = self._check_levels(levels)
        if self.num_constraints == 0:
            return np.zeros(0)
        speedup_per_row = self.speedups[levels]
        return self.recovery @ speedup_per_row - self.required_ps

    def check_timing(self, levels: np.ndarray) -> bool:
        """The paper's CheckTiming (Fig. 4): all paths recovered?"""
        if self.num_constraints == 0:
            return True
        return bool(self.path_slacks_ps(levels).min() >= -TIMING_TOL_PS)

    def total_leakage_nw(self, levels: np.ndarray) -> float:
        """Design leakage of an assignment (the ILP objective, Eq. 1)."""
        levels = self._check_levels(levels)
        return float(
            self.leakage_nw[np.arange(self.num_rows), levels].sum())

    def num_clusters(self, levels: np.ndarray) -> int:
        """Distinct voltages used, counting no-bias as a cluster."""
        levels = self._check_levels(levels)
        return len(np.unique(levels))

    def num_domains(self, levels: np.ndarray) -> int:
        """Physical bias domains: contiguous row runs sharing one level.

        This is the well count of the assignment — exactly one more
        than the Sec. 3.3 well-separation boundaries — and it is *not*
        the same thing as :meth:`num_clusters`: three voltages
        interleaved over many rows use 3 clusters but many domains,
        while a banded grouping caps the domain count regardless of how
        many voltages repeat.
        """
        levels = self._check_levels(levels)
        if self.num_rows == 0:
            return 0
        return int(1 + np.count_nonzero(levels[1:] != levels[:-1]))

    def row_criticality(self, levels: np.ndarray,
                        ranking: str = "inverse-slack") -> np.ndarray:
        """The heuristic's row-ranking metric.

        ``"inverse-slack"`` is the paper's ct_i = sum_k Q[k,i]/slack_k,
        with slacks evaluated at the given assignment (PassOne's uniform
        solution) and floored at a small epsilon so just-passing paths
        dominate.  ``"gate-count"`` is the ablation variant that ignores
        slack and counts critical-path cells per row.
        """
        if self.num_constraints == 0:
            return np.zeros(self.num_rows)
        if ranking == "gate-count":
            return np.asarray(
                self.gate_counts.T @ np.ones(self.num_constraints)).ravel()
        if ranking != "inverse-slack":
            raise AllocationError(f"unknown ranking metric {ranking!r}")
        slacks = self.path_slacks_ps(levels)
        epsilon = max(1e-3, float(self.required_ps.max()) * 1e-6)
        weights = 1.0 / np.maximum(slacks, epsilon)
        return np.asarray(self.gate_counts.T @ weights).ravel()


def _normalize_row_betas(beta: float | Sequence[float] | np.ndarray,
                         num_rows: int) -> tuple[float | None, np.ndarray]:
    """Split ``beta`` into (scalar-or-None, per-row vector).

    Scalars keep the original uniform-derate code path bit-identical;
    vectors take the heterogeneous pre-processing below.
    """
    if np.isscalar(beta):
        value = float(beta)  # type: ignore[arg-type]
        if value < 0:
            raise AllocationError(
                f"beta must be non-negative, got {value}")
        return value, np.full(num_rows, value)
    vector = np.asarray(beta, dtype=float)
    if vector.shape != (num_rows,):
        raise AllocationError(
            f"row beta vector needs shape ({num_rows},), got "
            f"{vector.shape}")
    if vector.size and vector.min() < 0:
        raise AllocationError(
            f"beta must be non-negative, got {vector.min()}")
    return None, vector


def _degraded_path_delay_ps(path: TimingPath, row_betas: np.ndarray,
                            row_of: dict[str, int]) -> float:
    """Path delay under per-row degradation (setup derated by the
    path's delay-weighted mean slowdown, so a constant vector reduces
    exactly to ``pd * (1 + beta)``)."""
    total = 0.0
    weighted_beta = 0.0
    gate_total = 0.0
    for gate_name, delay in zip(path.gates, path.gate_delays_ps):
        beta_row = row_betas[row_of[gate_name]]
        total += delay * (1.0 + beta_row)
        weighted_beta += delay * beta_row
        gate_total += delay
    mean_beta = weighted_beta / gate_total if gate_total > 0 else 0.0
    return total + path.setup_ps * (1.0 + mean_beta)


def build_problem(placed: PlacedDesign, clib: CharacterizedLibrary,
                  beta: float | Sequence[float] | np.ndarray,
                  analyzer: TimingAnalyzer | None = None,
                  paths: list[TimingPath] | None = None,
                  dcrit_ps: float | None = None,
                  grouping: "str | RowGrouping | None" = None
                  ) -> FBBProblem:
    """Run the Sec. 4.1 pre-processing on a placed design.

    ``beta`` is the sensed slowdown: a scalar applies the paper's
    uniform die-wide derate; a length-``num_rows`` vector applies
    heterogeneous per-row degradation (the spatial compensation
    engine's sensed field — see DESIGN.md, "Spatial compensation").
    ``analyzer``/``paths``/``dcrit_ps`` can be supplied to reuse STA
    results across multiple betas (the experiment harness does).

    ``grouping`` sets the allocation granularity (DESIGN.md,
    "Bias-domain grouping"): a strategy spec (``"bands:8"``) or a
    prebuilt :class:`~repro.grouping.RowGrouping` aggregates ``L``,
    ``D``, ``Q`` and ``row_betas`` over bias domains and returns the
    reduced ``G``-row problem; ``None`` or ``"identity"`` returns the
    per-row problem bit-identical to the pre-grouping behaviour.  Use
    :func:`repro.grouping.solve_grouped` when the per-row expansion of
    the solution is needed afterwards.
    """
    scalar_beta, row_betas = _normalize_row_betas(beta, placed.num_rows)
    if placed.num_rows == 0:
        raise AllocationError("placed design has no rows")

    if analyzer is None:
        analyzer = TimingAnalyzer.for_placed(placed)
    if paths is None:
        paths = extract_paths(analyzer)
    if dcrit_ps is None:
        dcrit_ps = max(path.delay_ps for path in paths)

    row_of = {name: placed.row_of(name) for name in placed.netlist.gates}
    if scalar_beta is not None:
        constraint_paths = violating_paths(paths, dcrit_ps, scalar_beta)
        required = np.array([path.delay_ps * (1.0 + scalar_beta) - dcrit_ps
                             for path in constraint_paths])
    else:
        constraint_paths = []
        requirements = []
        for path in paths:
            delay = _degraded_path_delay_ps(path, row_betas, row_of)
            if delay > dcrit_ps + 1e-9:
                constraint_paths.append(path)
                requirements.append(delay - dcrit_ps)
        required = np.array(requirements)

    data: list[float] = []
    counts: list[float] = []
    rows_idx: list[int] = []
    cols_idx: list[int] = []
    for k, path in enumerate(constraint_paths):
        per_row_delay: dict[int, float] = {}
        per_row_count: dict[int, int] = {}
        for gate_name, delay in zip(path.gates, path.gate_delays_ps):
            row = row_of[gate_name]
            derate = 1.0 + (scalar_beta if scalar_beta is not None
                            else row_betas[row])
            per_row_delay[row] = per_row_delay.get(row, 0.0) + delay * derate
            per_row_count[row] = per_row_count.get(row, 0) + 1
        for row, delay in per_row_delay.items():
            rows_idx.append(k)
            cols_idx.append(row)
            data.append(delay)
            counts.append(per_row_count[row])

    shape = (len(constraint_paths), placed.num_rows)
    recovery = csr_matrix((data, (rows_idx, cols_idx)), shape=shape)
    gate_counts = csr_matrix((counts, (rows_idx, cols_idx)), shape=shape)

    speedups = np.array([1.0 - scale for scale in clib.delay_scales])
    problem = FBBProblem(
        design_name=placed.netlist.name,
        beta=(scalar_beta if scalar_beta is not None
              else float(row_betas.max(initial=0.0))),
        dcrit_ps=dcrit_ps,
        num_rows=placed.num_rows,
        vbs_levels=clib.vbs_levels,
        speedups=speedups,
        leakage_nw=leakage_matrix(placed, clib),
        recovery=recovery,
        gate_counts=gate_counts,
        required_ps=required,
        paths=tuple(constraint_paths),
        row_betas=row_betas,
    )
    if grouping is not None:
        # Imported here, not at module level: grouping sits above core
        # in the package graph and itself imports this module.
        from repro.grouping.reduce import reduce_problem, resolve_grouping
        resolved = resolve_grouping(grouping, problem, placed=placed)
        if resolved is not None and not resolved.is_identity:
            return reduce_problem(problem, resolved)
    return problem
