"""The two-pass linear-time clustering heuristic (paper Sec. 4.3, Fig. 5).

PassOne finds the smallest uniform voltage ``jopt`` that meets timing —
a feasible but leakage-expensive solution.  PassTwo recovers leakage by
moving the least timing-critical rows (ranked by
``ct_i = sum_k Q[i,k] / slack_k``) to lower voltages while CheckTiming
holds and at most ``C`` distinct voltages are in use.

The paper's Fig. 5 pseudocode is ambiguous about how far a row may
descend before the cluster lock, so both defensible readings are
implemented and compared by the ablation benchmark:

* ``"row-descent"`` (default) — rows are processed in ascending
  criticality; each row drops to the *lowest feasible* voltage,
  preferring voltages already in use and opening a new cluster only
  while the budget allows.  Every row probes at most P levels, keeping
  the paper's O(P * N) CheckTiming bound.
* ``"level-sweep"`` — the literal reading: all unlocked rows descend one
  grid step per round; the first row that breaks timing locks itself
  and every more-critical row into a cluster at the current voltage
  (Fig. 5 lines 9-14); once the cluster budget is exhausted the
  remaining group keeps descending as one unit.

Row-descent dominates level-sweep on every benchmark (it is the variant
whose savings land near the ILP, as the paper reports for its
heuristic); level-sweep is retained for the ablation study.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import FBBProblem
from repro.core.single_bb import pass_one
from repro.core.solution import BiasSolution
from repro.errors import AllocationError

STRATEGIES = ("row-descent", "level-sweep")


def _ranked_rows(problem: FBBProblem, levels: np.ndarray,
                 ranking: str = "inverse-slack") -> list[int]:
    """Rows in ascending timing criticality (least critical first).

    np.argsort is stable, so ties resolve by row index — deterministic.
    """
    criticality = problem.row_criticality(levels, ranking)
    return [int(row) for row in np.argsort(criticality, kind="stable")]


def _pass_two_row_descent(problem: FBBProblem, jopt: int,
                          max_clusters: int,
                          ranking: str = "inverse-slack"
                          ) -> tuple[np.ndarray, int]:
    """Greedy per-row descent with voltage reuse under the C budget."""
    num_rows = problem.num_rows
    levels = np.full(num_rows, jopt, dtype=int)
    order = _ranked_rows(problem, levels, ranking)
    used: set[int] = {jopt}
    checks = 0

    for row in order:
        if len(used) < max_clusters:
            candidates = sorted(set(range(jopt)) | used)
        else:
            candidates = sorted(used)
        for target in candidates:
            if target >= jopt:
                break  # already at jopt; nothing lower worked
            levels[row] = target
            checks += 1
            if problem.check_timing(levels):
                used.add(target)
                break
            levels[row] = jopt  # revert and try the next level up
    return levels, checks


def _pass_two_level_sweep(problem: FBBProblem, jopt: int,
                          max_clusters: int,
                          ranking: str = "inverse-slack"
                          ) -> tuple[np.ndarray, int]:
    """Literal Fig. 5 reading: synchronized one-step rounds with locking."""
    num_rows = problem.num_rows
    levels = np.full(num_rows, jopt, dtype=int)
    order = _ranked_rows(problem, levels, ranking)
    locked = np.zeros(num_rows, dtype=bool)
    clusters_locked = 0
    checks = 0

    level = jopt
    while level > 0 and not locked.all():
        if clusters_locked >= max_clusters - 1:
            # Budget exhausted: the remaining group may still descend,
            # but only as one unit (splitting would add a voltage).
            movers = [row for row in order if not locked[row]]
            for row in movers:
                levels[row] = level - 1
            checks += 1
            if not problem.check_timing(levels):
                for row in movers:
                    levels[row] = level
                break
            level -= 1
            continue

        blocked_at: int | None = None
        moved_any = False
        for position, row in enumerate(order):
            if locked[row]:
                continue
            levels[row] = level - 1
            checks += 1
            if problem.check_timing(levels):
                moved_any = True
                continue
            levels[row] = level  # revert (Fig. 5 lines 11-13)
            blocked_at = position
            break
        if blocked_at is not None:
            # The blocked row and everything more critical lock at the
            # current voltage, forming one cluster (Fig. 5 line 14).
            for row in order[blocked_at:]:
                if not locked[row]:
                    locked[row] = True
            clusters_locked += 1
        elif not moved_any:
            break
        level -= 1
    return levels, checks


def pass_two(problem: FBBProblem, jopt: int, max_clusters: int,
             strategy: str = "row-descent",
             ranking: str = "inverse-slack") -> tuple[np.ndarray, int]:
    """Run PassTwo from the uniform ``jopt`` solution.

    Returns (levels, number of CheckTiming calls).
    """
    if strategy not in STRATEGIES:
        raise AllocationError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    if jopt == 0 or max_clusters <= 1 or problem.num_rows == 0:
        return np.full(problem.num_rows, jopt, dtype=int), 0
    if strategy == "row-descent":
        return _pass_two_row_descent(problem, jopt, max_clusters, ranking)
    return _pass_two_level_sweep(problem, jopt, max_clusters, ranking)


def solve_heuristic(problem: FBBProblem, max_clusters: int = 3,
                    strategy: str = "row-descent",
                    ranking: str = "inverse-slack") -> BiasSolution:
    """Full two-pass heuristic returning a feasible clustered solution.

    ``max_clusters`` is the paper's C; the no-bias cluster counts toward
    it (Sec. 3.3 limits C to 3: NBB plus two distributed rails).
    """
    if max_clusters < 1:
        raise AllocationError(
            f"max_clusters must be >= 1, got {max_clusters}")
    start = time.perf_counter()
    jopt = pass_one(problem)
    # A budget of C admits every (C-1)-cluster solution, so sweep the
    # smaller budgets too and keep the best — this keeps savings
    # monotone in C, as they must be.
    levels = np.full(problem.num_rows, jopt, dtype=int)
    checks = 0
    best_leakage = problem.total_leakage_nw(levels)
    for budget in range(2, max_clusters + 1):
        candidate, budget_checks = pass_two(problem, jopt, budget,
                                            strategy, ranking)
        checks += budget_checks
        leakage = problem.total_leakage_nw(candidate)
        if leakage < best_leakage - 1e-12:
            best_leakage = leakage
            levels = candidate

    solution = BiasSolution(
        problem=problem,
        levels=tuple(int(level) for level in levels),
        method=f"heuristic[{strategy},{ranking}]",
        runtime_s=time.perf_counter() - start,
        optimal=False,
        extras={"jopt": jopt, "check_timing_calls": checks},
    )
    if not solution.is_timing_feasible:
        raise AllocationError(
            f"{problem.design_name}: heuristic produced an infeasible "
            "solution — this is a bug")
    if solution.num_clusters > max_clusters:
        raise AllocationError(
            f"{problem.design_name}: heuristic used "
            f"{solution.num_clusters} clusters (budget {max_clusters})")
    return solution
