"""Solver registry: every allocation method behind one ``solve()`` call.

The paper compares three method families — the Single-BB baseline, the
exact ILP (Sec. 4.2) and the two-pass heuristic (Sec. 4.3) — and the
code grew one ad-hoc entry point per family (``solve_single_bb``,
``solve_ilp``, ``solve_heuristic``).  This module puts them behind a
single dispatch table so the flow layer, the tuning controller and the
``repro.api`` facade name methods declaratively (``"ilp:highs"``,
``"heuristic:row-descent"``) and new allocation strategies plug in
without touching any caller:

    from repro.core.registry import solve
    solution = solve(problem, "heuristic:level-sweep", clusters=3)

Registered entries (aliases in parentheses):

* ``single_bb`` — block-level uniform FBB, the Table 1 baseline;
* ``ilp:highs`` (``ilp``) — exact ILP via scipy's HiGHS MILP;
* ``ilp:branch_bound`` (``ilp:bnb``) — from-scratch branch & bound over
  scipy LP relaxations;
* ``ilp:simplex`` — branch & bound over the from-scratch tableau
  simplex (fully dependency-free);
* ``heuristic:row-descent`` (``heuristic``) — greedy per-row descent;
* ``heuristic:level-sweep`` — the literal Fig. 5 reading.

Every entry must carry a docstring — registration fails without one,
and ``make lint`` / CI enforce it via ``tests/core/test_registry.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.heuristic import STRATEGIES, solve_heuristic
from repro.core.ilp_alloc import solve_ilp
from repro.core.problem import FBBProblem
from repro.core.single_bb import solve_single_bb
from repro.core.solution import BiasSolution
from repro.errors import RegistryError

SolverFunc = Callable[..., BiasSolution]


@dataclass(frozen=True)
class SolverEntry:
    """One registered allocation method."""

    name: str
    func: SolverFunc
    summary: str
    """First docstring line, shown in CLI/API listings."""


class SolverRegistry:
    """Name -> solver dispatch table with alias support.

    Entries are callables ``func(problem, clusters, **opts) ->
    BiasSolution``.  Registration enforces a non-empty docstring so the
    registry doubles as user-facing documentation of the method space.
    """

    def __init__(self) -> None:
        self._entries: dict[str, SolverEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(self, name: str,
                 func: SolverFunc | None = None) -> SolverFunc:
        """Register a solver (usable as a decorator)."""
        if func is None:
            return lambda f: self.register(name, f)
        if name in self._entries or name in self._aliases:
            raise RegistryError(f"solver {name!r} is already registered")
        doc = (func.__doc__ or "").strip()
        if not doc:
            raise RegistryError(
                f"solver {name!r} has no docstring; every registry entry "
                "must document its method")
        summary = doc.splitlines()[0].strip()
        self._entries[name] = SolverEntry(name=name, func=func,
                                          summary=summary)
        return func

    def alias(self, alias: str, target: str) -> None:
        """Register ``alias`` as another name for entry ``target``."""
        if alias in self._entries or alias in self._aliases:
            raise RegistryError(f"solver {alias!r} is already registered")
        if target not in self._entries:
            raise RegistryError(
                f"alias target {target!r} is not a registered solver")
        self._aliases[alias] = target

    def get(self, method: str) -> SolverEntry:
        """Resolve a method name (or alias) to its entry."""
        name = self._aliases.get(method, method)
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown solver {method!r}; registered methods: "
                f"{', '.join(self.names())}") from None

    def names(self, include_aliases: bool = False) -> tuple[str, ...]:
        """Registered method names, sorted."""
        names = set(self._entries)
        if include_aliases:
            names |= set(self._aliases)
        return tuple(sorted(names))

    def entries(self) -> tuple[SolverEntry, ...]:
        """All registered entries, sorted by name."""
        return tuple(self._entries[name] for name in sorted(self._entries))

    def solve(self, problem: FBBProblem, method: str = "heuristic",
              clusters: int = 3, **opts) -> BiasSolution:
        """Dispatch one allocation run to the named method."""
        return self.get(method).func(problem, clusters, **opts)


registry = SolverRegistry()
"""The process-wide default registry, pre-loaded with the paper's
methods below."""


def solve(problem: FBBProblem, method: str = "heuristic",
          clusters: int = 3, **opts) -> BiasSolution:
    """Solve an allocation problem via the default registry."""
    return registry.solve(problem, method, clusters, **opts)


@registry.register("single_bb")
def _solve_single_bb(problem: FBBProblem, clusters: int = 1,
                     **_opts) -> BiasSolution:
    """Block-level uniform FBB (PassOne): the paper's Single BB baseline.

    The cluster budget is ignored — the whole block is one cluster by
    definition.
    """
    return solve_single_bb(problem)


def _make_ilp_entry(backend: str) -> SolverFunc:
    def entry(problem: FBBProblem, clusters: int = 3,
              time_limit_s: float | None = 120.0) -> BiasSolution:
        return solve_ilp(problem, clusters, backend=backend,
                         time_limit_s=time_limit_s)
    entry.__name__ = f"solve_ilp_{backend}"
    entry.__doc__ = (
        f"Exact Sec. 4.2 ILP via the {backend!r} MILP backend.\n\n"
        "Accepts ``time_limit_s`` (None disables the limit); raises\n"
        "TimeoutError_ when the budget is exhausted, mirroring the\n"
        "paper's non-convergence on the largest designs.")
    return entry


def _make_heuristic_entry(strategy: str) -> SolverFunc:
    def entry(problem: FBBProblem, clusters: int = 3,
              ranking: str = "inverse-slack") -> BiasSolution:
        return solve_heuristic(problem, clusters, strategy=strategy,
                               ranking=ranking)
    entry.__name__ = f"solve_heuristic_{strategy.replace('-', '_')}"
    entry.__doc__ = (
        f"Two-pass Fig. 5 heuristic, {strategy!r} PassTwo variant.\n\n"
        "Accepts ``ranking`` ('inverse-slack' — the paper's ct_i — or\n"
        "'gate-count' for the ablation variant).")
    return entry


for _backend in ("highs", "branch_bound", "simplex"):
    registry.register(f"ilp:{_backend}", _make_ilp_entry(_backend))
for _strategy in STRATEGIES:
    registry.register(f"heuristic:{_strategy}",
                      _make_heuristic_entry(_strategy))

registry.alias("ilp", "ilp:highs")
registry.alias("ilp:bnb", "ilp:branch_bound")
registry.alias("heuristic", "heuristic:row-descent")
