"""Exact ILP formulation of FBB allocation (paper Sec. 4.2).

Binary variables ``x[i,j]`` (row ``i`` gets voltage ``j``) and auxiliary
``y[j]`` (voltage ``j`` is used anywhere):

* objective (Eq. 1):  minimise ``sum_ij L[i,j] x[i,j]``;
* timing (Eq. 2):     per path ``k``:
  ``sum_ij a[i,j,k] x[i,j] >= req[k]`` with
  ``a[i,j,k] = D[k,i] * speedup_j`` (recovery form; the paper's
  inequality direction contains a sign typo, see problem.py);
* assignment (Eq. 3): ``sum_j x[i,j] == 1`` per row;
* clusters (Eq. 4):   ``sum_i x[i,j] <= F y[j]`` with ``F = N``, and
  ``sum_j y[j] <= C``;
* bounds (Eq. 5):     all variables binary.

Backends: scipy HiGHS (fast, default) or the from-scratch pure-Python
branch & bound (the lp_solve stand-in; use on small designs).  A time
limit reproduces the paper's non-convergence on Industrial2/3.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import FBBProblem
from repro.core.solution import BiasSolution
from repro.errors import AllocationError, InfeasibleError, TimeoutError_
from repro.ilp.branch_bound import solve_branch_bound
from repro.ilp.highs import solve_highs
from repro.ilp.model import MilpModel, Sense, Status


def build_ilp(problem: FBBProblem, max_clusters: int) -> MilpModel:
    """Assemble the Sec. 4.2 MILP for a problem instance."""
    if max_clusters < 1:
        raise AllocationError(
            f"max_clusters must be >= 1, got {max_clusters}")
    num_rows = problem.num_rows
    num_levels = problem.num_levels
    model = MilpModel(f"fbb_{problem.design_name}_c{max_clusters}")

    x = [[model.add_binary(f"x_{i}_{j}") for j in range(num_levels)]
         for i in range(num_rows)]
    y = [model.add_binary(f"y_{j}") for j in range(num_levels)]

    # Eq. 1: minimise total leakage.
    model.set_objective({
        x[i][j]: float(problem.leakage_nw[i, j])
        for i in range(num_rows) for j in range(num_levels)})

    # Eq. 2: per-path recovery constraints.
    recovery = problem.recovery.tocsr()
    for k in range(problem.num_constraints):
        start, stop = recovery.indptr[k], recovery.indptr[k + 1]
        coeffs: dict[int, float] = {}
        for col, delay in zip(recovery.indices[start:stop],
                              recovery.data[start:stop]):
            for j in range(1, num_levels):  # speedup at j=0 is zero
                coeffs[x[col][j]] = float(delay * problem.speedups[j])
        if not coeffs:
            raise InfeasibleError(
                f"path {k} has no biasable gates but needs recovery")
        model.add_constraint(coeffs, Sense.GE,
                             float(problem.required_ps[k]), f"path_{k}")

    # Eq. 3: every row picks exactly one voltage.
    for i in range(num_rows):
        model.add_constraint({x[i][j]: 1.0 for j in range(num_levels)},
                             Sense.EQ, 1.0, f"assign_{i}")

    # Eq. 4: cluster budget via indicator variables (F = N).
    big_f = float(num_rows)
    for j in range(num_levels):
        coeffs = {x[i][j]: 1.0 for i in range(num_rows)}
        coeffs[y[j]] = -big_f
        model.add_constraint(coeffs, Sense.LE, 0.0, f"use_{j}")
    model.add_constraint({y[j]: 1.0 for j in range(num_levels)},
                         Sense.LE, float(max_clusters), "budget")
    return model


def decode_solution(problem: FBBProblem, values: np.ndarray) -> list[int]:
    """Recover per-row levels from the flat x/y variable vector."""
    num_levels = problem.num_levels
    levels = []
    for i in range(problem.num_rows):
        block = values[i * num_levels:(i + 1) * num_levels]
        levels.append(int(np.argmax(block)))
    return levels


def solve_ilp(problem: FBBProblem, max_clusters: int = 3,
              backend: str = "highs",
              time_limit_s: float | None = 120.0) -> BiasSolution:
    """Solve the exact ILP; raises on infeasibility or timeout.

    ``backend`` is ``"highs"`` (production), ``"bnb"``/``"branch_bound"``
    (the from-scratch branch & bound over scipy LP relaxations) or
    ``"simplex"`` (branch & bound over the from-scratch tableau simplex
    — the fully dependency-free path, for small designs).
    :class:`TimeoutError_` mirrors the paper's "ILP did not converge in
    the specified amount of time" for the largest designs.
    """
    start = time.perf_counter()
    model = build_ilp(problem, max_clusters)
    if backend == "highs":
        result = solve_highs(model, time_limit_s=time_limit_s)
    elif backend in ("bnb", "branch_bound"):
        result = solve_branch_bound(model, time_limit_s=time_limit_s)
    elif backend == "simplex":
        result = solve_branch_bound(model, time_limit_s=time_limit_s,
                                    use_scipy_lp=False)
    else:
        raise AllocationError(f"unknown ILP backend {backend!r}")

    if result.status is Status.INFEASIBLE:
        raise InfeasibleError(
            f"{problem.design_name}: ILP infeasible for beta="
            f"{problem.beta:.0%}, C={max_clusters}")
    if result.status is Status.TIMEOUT:
        raise TimeoutError_(
            f"{problem.design_name}: ILP did not converge within "
            f"{time_limit_s} s (paper reports the same for its largest "
            "benchmarks)")
    if result.values is None:
        raise AllocationError("solver returned no solution vector")

    levels = decode_solution(problem, result.values)
    solution = BiasSolution(
        problem=problem,
        levels=tuple(levels),
        method=f"ilp-{backend}",
        runtime_s=time.perf_counter() - start,
        optimal=result.status is Status.OPTIMAL,
        extras={"objective_nw": result.objective,
                "nodes": result.nodes_explored},
    )
    if not solution.is_timing_feasible:
        raise AllocationError(
            f"{problem.design_name}: ILP solution fails CheckTiming — "
            "formulation bug")
    if solution.num_clusters > max_clusters:
        raise AllocationError(
            f"{problem.design_name}: ILP used {solution.num_clusters} "
            f"clusters (budget {max_clusters})")
    return solution
