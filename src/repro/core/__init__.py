"""The paper's contribution: row-clustered FBB allocation."""

from repro.core.heuristic import pass_two, solve_heuristic
from repro.core.ilp_alloc import build_ilp, decode_solution, solve_ilp
from repro.core.problem import TIMING_TOL_PS, FBBProblem, build_problem
from repro.core.registry import (SolverEntry, SolverRegistry, registry,
                                 solve)
from repro.core.single_bb import pass_one, solve_single_bb
from repro.core.solution import BiasSolution, uniform_solution

__all__ = [
    "BiasSolution",
    "FBBProblem",
    "SolverEntry",
    "SolverRegistry",
    "TIMING_TOL_PS",
    "build_ilp",
    "build_problem",
    "decode_solution",
    "pass_one",
    "pass_two",
    "registry",
    "solve",
    "solve_heuristic",
    "solve_ilp",
    "solve_single_bb",
    "uniform_solution",
]
