"""Technology mapping: generic gates onto the reduced cell library.

The paper synthesizes with Synopsys Physical Compiler onto a reduced
library (inverters, and, or, nor, nand, D-flip-flops).  Our mapper covers
the part of that job the reproduction needs:

* direct binding of functions the library implements (NAND2 -> NAND2_X1);
* decomposition of functions it lacks:
  - ``XOR2`` -> the classic 4-NAND2 network,
  - ``XNOR2`` -> 4-NAND2 XOR plus an inverter,
  - ``BUF`` -> two inverters (the reduced library has no buffer cell).

Mapping preserves all primary I/O and externally visible net names; only
internal decomposition nets are added.  Every mapped gate carries a
``cell_name`` binding, initially at drive X1 — drive selection is a
separate pass (:mod:`repro.synth.sizing`).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.core import Netlist
from repro.tech.cells import CellLibrary

#: functions the reduced library implements directly
_DIRECT = {"INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3",
           "AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "DFF"}


def _bind(library: CellLibrary, function: str) -> str:
    """Cell name for the X1 drive of a function."""
    return library.smallest(function).name


def _emit_xor(mapped: Netlist, library: CellLibrary, name: str,
              a: str, b: str, output: str, invert: bool) -> None:
    """Emit the 4-NAND2 XOR (plus INV for XNOR) network."""
    nand = _bind(library, "NAND2")
    shared = mapped.fresh_net(f"{name}_x")
    left = mapped.fresh_net(f"{name}_x")
    right = mapped.fresh_net(f"{name}_x")
    mapped.add_gate(f"{name}_m1", "NAND2", (a, b), shared, nand)
    mapped.add_gate(f"{name}_m2", "NAND2", (a, shared), left, nand)
    mapped.add_gate(f"{name}_m3", "NAND2", (b, shared), right, nand)
    if invert:
        xor_net = mapped.fresh_net(f"{name}_x")
        mapped.add_gate(f"{name}_m4", "NAND2", (left, right), xor_net, nand)
        mapped.add_gate(f"{name}_m5", "INV", (xor_net,), output,
                        _bind(library, "INV"))
    else:
        mapped.add_gate(f"{name}_m4", "NAND2", (left, right), output, nand)


def map_netlist(netlist: Netlist, library: CellLibrary) -> Netlist:
    """Return a new netlist with every gate bound to a library cell.

    Raises :class:`NetlistError` if a generic function can neither be
    bound directly nor decomposed.
    """
    mapped = Netlist(netlist.name)
    for net in netlist.primary_inputs:
        mapped.add_input(net)
    for net in netlist.primary_outputs:
        mapped.add_output(net)

    for gate in netlist.topological_order():
        function = gate.function
        if function in _DIRECT:
            if function not in {c.function for c in library}:
                raise NetlistError(
                    f"library lacks function {function!r} for gate "
                    f"{gate.name!r}")
            mapped.add_gate(gate.name, function, gate.inputs, gate.output,
                            _bind(library, function))
        elif function == "XOR2":
            _emit_xor(mapped, library, gate.name, gate.inputs[0],
                      gate.inputs[1], gate.output, invert=False)
        elif function == "XNOR2":
            _emit_xor(mapped, library, gate.name, gate.inputs[0],
                      gate.inputs[1], gate.output, invert=True)
        elif function == "BUF":
            middle = mapped.fresh_net(f"{gate.name}_b")
            inv = _bind(library, "INV")
            mapped.add_gate(f"{gate.name}_m1", "INV", gate.inputs, middle, inv)
            mapped.add_gate(f"{gate.name}_m2", "INV", (middle,), gate.output,
                            inv)
        else:
            raise NetlistError(
                f"gate {gate.name!r}: cannot map function {function!r}")
    mapped.validate()
    return mapped


def is_fully_mapped(netlist: Netlist) -> bool:
    """True iff every gate carries a cell binding."""
    return all(gate.cell_name is not None for gate in netlist.gates.values())
