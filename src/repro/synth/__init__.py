"""Synthesis: technology mapping and drive sizing (the paper's
Physical Compiler stand-in, Sec. 5)."""

from repro.synth.mapping import is_fully_mapped, map_netlist
from repro.synth.sizing import (LOAD_DELAY_BUDGET_PS, WIRE_CAP_PER_FANOUT_FF,
                                drive_histogram, net_load_ff, size_for_load)

__all__ = [
    "LOAD_DELAY_BUDGET_PS",
    "WIRE_CAP_PER_FANOUT_FF",
    "drive_histogram",
    "is_fully_mapped",
    "map_netlist",
    "net_load_ff",
    "size_for_load",
]
