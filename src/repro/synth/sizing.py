"""Fanout-driven drive-strength selection ("repowering") — part of the
paper's Sec. 5 synthesis stand-in.

After mapping, every gate sits at drive X1.  This pass estimates each
net's capacitive load (sink input pins plus a per-fanout wire estimate)
and bumps drivers to the smallest drive strength that keeps the
load-dependent delay component within a budget.  It iterates to a fixed
point because upsizing a gate raises its own input capacitance for
single-stage cells, increasing the load on its predecessors.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.core import Netlist
from repro.tech.cells import CellLibrary

#: estimated wire capacitance added per fanout connection, femtofarads
WIRE_CAP_PER_FANOUT_FF = 0.25

#: load-dependent delay budget per stage, picoseconds
LOAD_DELAY_BUDGET_PS = 45.0


def net_load_ff(netlist: Netlist, library: CellLibrary, net_name: str) -> float:
    """Capacitive load on a net: sink pin caps + wire estimate, fF."""
    net = netlist.net(net_name)
    load = WIRE_CAP_PER_FANOUT_FF * max(len(net.sinks), 1)
    for gate_name, _pin in net.sinks:
        gate = netlist.gates[gate_name]
        if gate.cell_name is None:
            raise NetlistError(
                f"gate {gate_name!r} is unmapped; size after mapping")
        load += library.cell(gate.cell_name).input_cap_ff
    return load


def size_for_load(netlist: Netlist, library: CellLibrary,
                  budget_ps: float = LOAD_DELAY_BUDGET_PS,
                  max_passes: int = 4) -> int:
    """Upsize drivers until every stage meets the load-delay budget.

    Mutates ``cell_name`` bindings in place.  Returns the number of gates
    whose drive changed.  Never downsizes, so the pass is monotone and
    the fixed-point iteration terminates.
    """
    if budget_ps <= 0:
        raise NetlistError("sizing budget must be positive")
    changed_total = 0
    for _ in range(max_passes):
        changed = 0
        for gate in netlist.gates.values():
            if gate.cell_name is None:
                raise NetlistError(
                    f"gate {gate.name!r} is unmapped; size after mapping")
            current = library.cell(gate.cell_name)
            load = net_load_ff(netlist, library, gate.output)
            if current.load_slope_ps_per_ff * load <= budget_ps:
                continue
            for candidate in library.drives_for(current.function):
                if candidate.drive <= current.drive:
                    continue
                gate.cell_name = candidate.name
                changed += 1
                if candidate.load_slope_ps_per_ff * load <= budget_ps:
                    break
        changed_total += changed
        if changed == 0:
            break
    return changed_total


def drive_histogram(netlist: Netlist, library: CellLibrary) -> dict[int, int]:
    """How many gates sit at each drive strength (for reports)."""
    histogram: dict[int, int] = {}
    for gate in netlist.gates.values():
        if gate.cell_name is None:
            continue
        drive = library.cell(gate.cell_name).drive
        histogram[drive] = histogram.get(drive, 0) + 1
    return dict(sorted(histogram.items()))
