"""Structural Verilog subset writer and reader (interchange for the
paper's mapped Table 1 netlists).

Two dialects are supported, mirroring what a commercial flow exchanges:

* **generic** netlists use Verilog gate primitives
  (``nand g1 (y, a, b);`` — output first), with XOR/XNOR as ``xor``/
  ``xnor`` and flip-flops as ``DFF`` module instances;
* **mapped** netlists instantiate library cells with named port
  connections (``NAND2_X1 g1 (.A1(a), .A2(b), .ZN(y));``).

The reader accepts both forms (they can even be mixed) and rebuilds a
:class:`repro.netlist.core.Netlist`.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import NetlistError, ParseError
from repro.netlist.core import FUNCTION_ARITY, Netlist

_PRIMITIVE_OF = {
    "INV": "not", "BUF": "buf",
    "AND2": "and", "AND3": "and", "AND4": "and",
    "OR2": "or", "OR3": "or", "OR4": "or",
    "NAND2": "nand", "NAND3": "nand", "NAND4": "nand",
    "NOR2": "nor", "NOR3": "nor",
    "XOR2": "xor", "XNOR2": "xnor",
}

_FAMILY_OF_PRIMITIVE = {
    "not": "INV", "buf": "BUF", "and": "AND", "or": "OR",
    "nand": "NAND", "nor": "NOR", "xor": "XOR", "xnor": "XNOR",
}


def input_pin_names(function: str) -> tuple[str, ...]:
    """Library pin names for a cell function (A1..An, or D for flops)."""
    if function == "DFF":
        return ("D",)
    arity = FUNCTION_ARITY[function]
    if arity == 1:
        return ("A",)
    return tuple(f"A{i}" for i in range(1, arity + 1))


def output_pin_name(function: str) -> str:
    """Library output pin name (Q for flops, ZN otherwise)."""
    return "Q" if function == "DFF" else "ZN"


def write_verilog(netlist: Netlist, path: str | Path) -> None:
    """Serialise a netlist; mapped gates become cell instances."""
    lines = [f"// {netlist.name} - written by repro.netlist.verilog"]
    ports = ", ".join(netlist.primary_inputs + netlist.primary_outputs)
    lines.append(f"module {netlist.name} ({ports});")
    for net in netlist.primary_inputs:
        lines.append(f"  input {net};")
    for net in netlist.primary_outputs:
        lines.append(f"  output {net};")
    io_nets = set(netlist.primary_inputs) | set(netlist.primary_outputs)
    wires = sorted(name for name in netlist.nets if name not in io_nets)
    for wire in wires:
        lines.append(f"  wire {wire};")
    for gate in netlist.topological_order():
        if gate.cell_name is not None or gate.function == "DFF":
            cell = gate.cell_name or "DFF"
            pins = [f".{pin}({net})" for pin, net in
                    zip(input_pin_names(gate.function), gate.inputs)]
            pins.append(f".{output_pin_name(gate.function)}({gate.output})")
            lines.append(f"  {cell} {gate.name} ({', '.join(pins)});")
        else:
            primitive = _PRIMITIVE_OF.get(gate.function)
            if primitive is None:
                raise NetlistError(
                    f"gate {gate.name!r}: no Verilog primitive for "
                    f"{gate.function!r}")
            args = ", ".join((gate.output,) + gate.inputs)
            lines.append(f"  {primitive} {gate.name} ({args});")
    lines.append("endmodule")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


_MODULE_RE = re.compile(r"^\s*module\s+(\w+)\s*\(([^)]*)\)\s*;\s*$")
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+(.+?)\s*;\s*$")
_NAMED_INST_RE = re.compile(r"^\s*(\w+)\s+(\w+)\s*\((\s*\..+)\)\s*;\s*$")
_PRIM_INST_RE = re.compile(r"^\s*([a-z]+)\s+(\w+)\s*\(([^.)][^)]*)\)\s*;\s*$")
_PIN_RE = re.compile(r"\.(\w+)\s*\(\s*([^)]+?)\s*\)")


def _function_from_cell(cell_name: str, num_inputs: int) -> str:
    """Infer the generic function from a library cell name like NAND2_X1."""
    family = cell_name.split("_")[0]
    if family == "DFF":
        return "DFF"
    if family in FUNCTION_ARITY:
        return family
    raise NetlistError(f"cannot infer function from cell {cell_name!r} "
                       f"({num_inputs} inputs)")


def read_verilog(path: str | Path) -> Netlist:
    """Parse the structural subset back into a :class:`Netlist`."""
    filename = str(path)
    text = Path(path).read_text(encoding="ascii")
    # Strip comments, join continued statements on ';'
    stripped_lines = []
    for raw in text.splitlines():
        line = raw.split("//", 1)[0]
        stripped_lines.append(line)
    statements: list[tuple[int, str]] = []
    buffer = ""
    buffer_line = 1
    for lineno, line in enumerate(stripped_lines, start=1):
        if not buffer:
            buffer_line = lineno
        buffer += " " + line
        while ";" in buffer:
            statement, buffer = buffer.split(";", 1)
            statement = statement.strip()
            if statement:
                statements.append((buffer_line, statement + ";"))
            buffer_line = lineno
    tail = buffer.strip()
    if tail and tail not in ("endmodule",):
        raise ParseError(f"trailing junk: {tail!r}", filename)

    netlist: Netlist | None = None
    outputs: list[str] = []
    for lineno, statement in statements:
        if statement.startswith("endmodule"):
            continue
        match = _MODULE_RE.match(statement)
        if match:
            if netlist is not None:
                raise ParseError("multiple modules not supported",
                                 filename, lineno)
            netlist = Netlist(match.group(1))
            continue
        if netlist is None:
            raise ParseError("statement before module header",
                             filename, lineno)
        match = _DECL_RE.match(statement)
        if match:
            kind, names = match.groups()
            for name in (n.strip() for n in names.split(",")):
                if not name:
                    continue
                if kind == "input":
                    netlist.add_input(name)
                elif kind == "output":
                    netlist.add_output(name)
                # wires are implicit in our net model
            continue
        match = _NAMED_INST_RE.match(statement)
        if match:
            cell_name, inst_name, pin_blob = match.groups()
            pins = dict(_PIN_RE.findall(pin_blob))
            if not pins:
                raise ParseError(f"no pins on instance {inst_name!r}",
                                 filename, lineno)
            out_pin = "Q" if "Q" in pins else "ZN"
            if out_pin not in pins:
                raise ParseError(
                    f"instance {inst_name!r} lacks output pin", filename,
                    lineno)
            output = pins.pop(out_pin)
            ordered = [pins[key] for key in sorted(pins)]
            function = _function_from_cell(cell_name, len(ordered))
            try:
                netlist.add_gate(inst_name, function, ordered, output,
                                 cell_name=None if cell_name == "DFF"
                                 else cell_name)
            except NetlistError as exc:
                raise ParseError(str(exc), filename, lineno) from exc
            continue
        match = _PRIM_INST_RE.match(statement)
        if match:
            primitive, inst_name, args = match.groups()
            family = _FAMILY_OF_PRIMITIVE.get(primitive)
            if family is None:
                raise ParseError(f"unknown primitive {primitive!r}",
                                 filename, lineno)
            nets = [token.strip() for token in args.split(",")]
            if len(nets) < 2:
                raise ParseError(
                    f"primitive {inst_name!r} needs output + inputs",
                    filename, lineno)
            output, inputs = nets[0], nets[1:]
            if family in ("INV", "BUF"):
                function = family
            else:
                function = f"{family}{len(inputs)}"
            if function not in FUNCTION_ARITY:
                raise ParseError(
                    f"unsupported arity {len(inputs)} for {primitive}",
                    filename, lineno)
            try:
                netlist.add_gate(inst_name, function, inputs, output)
            except NetlistError as exc:
                raise ParseError(str(exc), filename, lineno) from exc
            continue
        raise ParseError(f"unparseable statement: {statement!r}",
                         filename, lineno)

    if netlist is None:
        raise ParseError("no module found", filename)
    del outputs
    try:
        netlist.validate()
    except NetlistError as exc:
        raise ParseError(str(exc), filename) from exc
    return netlist
