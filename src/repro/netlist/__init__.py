"""Gate-level netlist data structures and interchange formats (the
structural substrate of the paper's Table 1 designs)."""

from repro.netlist.bench import read_bench, write_bench
from repro.netlist.core import (FUNCTION_ARITY, SEQUENTIAL_FUNCTIONS, Gate,
                                Net, Netlist)
from repro.netlist.stats import (NetlistStats, PlacementStats,
                                 netlist_stats, placement_stats)
from repro.netlist.verilog import (input_pin_names, output_pin_name,
                                   read_verilog, write_verilog)

__all__ = [
    "FUNCTION_ARITY",
    "Gate",
    "Net",
    "Netlist",
    "NetlistStats",
    "PlacementStats",
    "SEQUENTIAL_FUNCTIONS",
    "input_pin_names",
    "netlist_stats",
    "placement_stats",
    "output_pin_name",
    "read_bench",
    "read_verilog",
    "write_bench",
    "write_verilog",
]
