"""Gate-level netlist data structures.

A :class:`Netlist` is the structural view every other subsystem consumes:
the synthesizer maps its generic gates onto library cells, the placer
assigns its instances to rows, the STA engine walks its combinational
DAG, and the FBB allocator reasons about the rows that hold its gates.

Modelling choices (matching the paper's standard-cell setting):

* every gate has exactly **one output net**;
* flip-flops (``DFF``) have a single data input and an implicit clock —
  clock-tree modelling is out of scope for the paper and for us;
* nets are identified by name; each is driven by exactly one gate output
  or one primary input;
* generic functions (pre-mapping) include XOR/XNOR, which the reduced
  cell library cannot implement directly — the technology mapper
  decomposes them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import NetlistError

#: generic function name -> number of inputs
FUNCTION_ARITY: dict[str, int] = {
    "INV": 1, "BUF": 1,
    "AND2": 2, "AND3": 3, "AND4": 4,
    "OR2": 2, "OR3": 3, "OR4": 4,
    "NAND2": 2, "NAND3": 3, "NAND4": 4,
    "NOR2": 2, "NOR3": 3,
    "XOR2": 2, "XNOR2": 2,
    "DFF": 1,
}

SEQUENTIAL_FUNCTIONS = frozenset({"DFF"})


@dataclass
class Gate:
    """One gate instance: a named occurrence of a function (or cell)."""

    name: str
    function: str
    inputs: tuple[str, ...]
    output: str
    cell_name: str | None = None
    """Set by technology mapping; None while the netlist is generic."""

    @property
    def is_sequential(self) -> bool:
        return self.function in SEQUENTIAL_FUNCTIONS

    def __post_init__(self) -> None:
        arity = FUNCTION_ARITY.get(self.function)
        if arity is None:
            raise NetlistError(
                f"gate {self.name!r}: unknown function {self.function!r}")
        if len(self.inputs) != arity:
            raise NetlistError(
                f"gate {self.name!r}: {self.function} expects {arity} "
                f"inputs, got {len(self.inputs)}")


@dataclass
class Net:
    """A named signal with one driver and any number of sinks."""

    name: str
    driver: str | None = None
    """Driving gate name, or None if driven by a primary input."""
    is_primary_input: bool = False
    sinks: list[tuple[str, int]] = field(default_factory=list)
    """(gate name, input pin index) pairs loading this net."""
    is_primary_output: bool = False


class Netlist:
    """A mutable gate-level netlist with validation and DAG utilities."""

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("netlist name must be non-empty")
        self.name = name
        self.gates: dict[str, Gate] = {}
        self.nets: dict[str, Net] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._fresh_counter = 0

    # -- construction --------------------------------------------------------

    def add_input(self, net_name: str) -> str:
        """Declare a primary input; creates the net."""
        net = self._net(net_name)
        if net.driver is not None or net.is_primary_input:
            raise NetlistError(f"net {net_name!r} already driven")
        net.is_primary_input = True
        self.primary_inputs.append(net_name)
        return net_name

    def add_output(self, net_name: str) -> str:
        """Declare a primary output; the net may be driven later."""
        net = self._net(net_name)
        if net.is_primary_output:
            raise NetlistError(f"net {net_name!r} already an output")
        net.is_primary_output = True
        self.primary_outputs.append(net_name)
        return net_name

    def add_gate(self, name: str, function: str,
                 inputs: tuple[str, ...] | list[str], output: str,
                 cell_name: str | None = None) -> Gate:
        """Add a gate instance, wiring its input and output nets."""
        if name in self.gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        gate = Gate(name, function, tuple(inputs), output, cell_name)
        out_net = self._net(output)
        if out_net.driver is not None or out_net.is_primary_input:
            raise NetlistError(
                f"gate {name!r}: net {output!r} already driven")
        out_net.driver = name
        for pin, net_name in enumerate(gate.inputs):
            self._net(net_name).sinks.append((name, pin))
        self.gates[name] = gate
        return gate

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a net name not yet used in this netlist."""
        while True:
            self._fresh_counter += 1
            candidate = f"{prefix}{self._fresh_counter}"
            if candidate not in self.nets:
                return candidate

    def fresh_gate_name(self, prefix: str = "g") -> str:
        """Return a gate name not yet used in this netlist."""
        while True:
            self._fresh_counter += 1
            candidate = f"{prefix}{self._fresh_counter}"
            if candidate not in self.gates:
                return candidate

    def _net(self, name: str) -> Net:
        if not name:
            raise NetlistError("net name must be non-empty")
        if name not in self.nets:
            self.nets[name] = Net(name)
        return self.nets[name]

    # -- queries --------------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def gate(self, name: str) -> Gate:
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def fanout_gates(self, net_name: str) -> list[Gate]:
        """Gates whose inputs load the given net."""
        return [self.gates[g] for g, _pin in self.net(net_name).sinks]

    def driver_gate(self, net_name: str) -> Gate | None:
        """The gate driving a net, or None for primary inputs."""
        driver = self.net(net_name).driver
        return self.gates[driver] if driver is not None else None

    def function_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for gate in self.gates.values():
            histogram[gate.function] = histogram.get(gate.function, 0) + 1
        return dict(sorted(histogram.items()))

    def sequential_gates(self) -> list[Gate]:
        return [g for g in self.gates.values() if g.is_sequential]

    def combinational_gates(self) -> list[Gate]:
        return [g for g in self.gates.values() if not g.is_sequential]

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetlistError` on problems.

        Rules: every net is driven (by a gate or a primary input); primary
        outputs exist and are driven; no combinational cycles; every
        floating (sink-less, non-output) net is reported.
        """
        for net in self.nets.values():
            if net.driver is None and not net.is_primary_input:
                raise NetlistError(
                    f"{self.name}: net {net.name!r} has no driver")
        for name in self.primary_outputs:
            net = self.nets[name]
            if net.driver is None and not net.is_primary_input:
                raise NetlistError(
                    f"{self.name}: output {name!r} undriven")
        self.topological_order()  # raises on combinational cycles

    def dangling_nets(self) -> list[str]:
        """Nets with no sinks that are not primary outputs (warning-level)."""
        return sorted(net.name for net in self.nets.values()
                      if not net.sinks and not net.is_primary_output)

    # -- DAG utilities -----------------------------------------------------------

    def topological_order(self) -> list[Gate]:
        """Gates in combinational topological order.

        DFF outputs are treated as sources and DFF inputs as sinks, so
        sequential loops are legal; a *combinational* cycle raises
        :class:`NetlistError`.  DFFs appear in the order with in-degree 0.
        """
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            count = 0
            if not gate.is_sequential:
                for net_name in gate.inputs:
                    driver = self.nets[net_name].driver
                    if driver is not None:
                        dependents[driver].append(gate.name)
                        count += 1
            indegree[gate.name] = count

        queue = deque(sorted(name for name, deg in indegree.items()
                             if deg == 0))
        order: list[Gate] = []
        while queue:
            name = queue.popleft()
            order.append(self.gates[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    queue.append(dependent)
        if len(order) != len(self.gates):
            remaining = sorted(set(self.gates) - {g.name for g in order})
            raise NetlistError(
                f"{self.name}: combinational cycle involving "
                f"{remaining[:5]}{'...' if len(remaining) > 5 else ''}")
        return order

    def logic_depth(self) -> int:
        """Maximum number of combinational gates on any path."""
        depth: dict[str, int] = {}
        for gate in self.topological_order():
            if gate.is_sequential:
                depth[gate.name] = 0
                continue
            best = 0
            for net_name in gate.inputs:
                driver = self.nets[net_name].driver
                if driver is not None:
                    best = max(best, depth[driver])
            depth[gate.name] = best + 1
        return max(depth.values(), default=0)

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep-copy the netlist (gates are re-created, nets rebuilt)."""
        duplicate = Netlist(name or self.name)
        for net_name in self.primary_inputs:
            duplicate.add_input(net_name)
        for net_name in self.primary_outputs:
            duplicate.add_output(net_name)
        for gate in self.gates.values():
            duplicate.add_gate(gate.name, gate.function, gate.inputs,
                               gate.output, gate.cell_name)
        duplicate._fresh_counter = self._fresh_counter
        return duplicate

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, gates={self.num_gates}, "
                f"inputs={len(self.primary_inputs)}, "
                f"outputs={len(self.primary_outputs)})")
