"""ISCAS ``.bench`` format reader and writer.

The ISCAS-85/89 benchmark circuits the paper evaluates (c1355, c3540,
c5315, c7552, c6288) are traditionally distributed in the ``.bench``
format::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = DFF(G10)

Variable-arity functions (``AND(a,b,c)``) are converted to the generic
fixed-arity functions of :mod:`repro.netlist.core` (``AND3``); wide gates
beyond arity 4 are decomposed into balanced trees on read.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import NetlistError, ParseError
from repro.netlist.core import FUNCTION_ARITY, Netlist

_BENCH_TO_GENERIC = {
    "NOT": "INV", "INV": "INV", "BUF": "BUF", "BUFF": "BUF",
    "AND": "AND", "OR": "OR", "NAND": "NAND", "NOR": "NOR",
    "XOR": "XOR", "XNOR": "XNOR", "DFF": "DFF",
}

_GENERIC_TO_BENCH = {
    "INV": "NOT", "BUF": "BUFF",
    "AND2": "AND", "AND3": "AND", "AND4": "AND",
    "OR2": "OR", "OR3": "OR", "OR4": "OR",
    "NAND2": "NAND", "NAND3": "NAND", "NAND4": "NAND",
    "NOR2": "NOR", "NOR3": "NOR",
    "XOR2": "XOR", "XNOR2": "XNOR", "DFF": "DFF",
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$")
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*?)\s*\)$")

#: maximum native arity before tree decomposition kicks in
_MAX_ARITY = {"AND": 4, "OR": 4, "NAND": 4, "NOR": 3, "XOR": 2, "XNOR": 2}


def _sized_function(base: str, arity: int) -> str:
    """Map a bench family + arity to a generic function name."""
    if base in ("INV", "BUF", "DFF"):
        if arity != 1:
            raise NetlistError(f"{base} expects 1 input, got {arity}")
        return base
    name = f"{base}{arity}"
    if name not in FUNCTION_ARITY:
        raise NetlistError(f"no generic function for {base} arity {arity}")
    return name


def _decompose_wide(netlist: Netlist, gate_name: str, base: str,
                    inputs: list[str], output: str) -> None:
    """Reduce a wide AND/OR/NAND/NOR/XOR into a balanced generic tree."""
    limit = _MAX_ARITY[base]
    # Inner tree nodes use the non-inverting family; only the final stage
    # applies the inversion for NAND/NOR (De Morgan-free decomposition).
    inner = {"NAND": "AND", "NOR": "OR"}.get(base, base)
    terms = list(inputs)
    stage = 0
    inner_limit = _MAX_ARITY[inner]
    while len(terms) > limit:
        grouped: list[str] = []
        for start in range(0, len(terms), inner_limit):
            chunk = terms[start:start + inner_limit]
            if len(chunk) == 1:
                grouped.append(chunk[0])
                continue
            net = netlist.fresh_net(f"{gate_name}_t")
            netlist.add_gate(netlist.fresh_gate_name(f"{gate_name}_d{stage}_"),
                             _sized_function(inner, len(chunk)), chunk, net)
            grouped.append(net)
        terms = grouped
        stage += 1
    netlist.add_gate(gate_name, _sized_function(base, len(terms)),
                     terms, output)


def read_bench(path: str | Path) -> Netlist:
    """Parse a ``.bench`` file into a generic :class:`Netlist`."""
    filename = str(path)
    text = Path(path).read_text(encoding="ascii")
    netlist = Netlist(Path(path).stem)
    pending_outputs: list[str] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1), io_match.group(2)
            try:
                if kind == "INPUT":
                    netlist.add_input(net)
                else:
                    pending_outputs.append(net)
                    netlist.add_output(net)
            except NetlistError as exc:
                raise ParseError(str(exc), filename, lineno) from exc
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, family, args = gate_match.groups()
            family = family.upper()
            if family not in _BENCH_TO_GENERIC:
                raise ParseError(
                    f"unknown gate type {family!r}", filename, lineno)
            base = _BENCH_TO_GENERIC[family]
            inputs = [token.strip() for token in args.split(",")
                      if token.strip()]
            if not inputs:
                raise ParseError(
                    f"gate {output!r} has no inputs", filename, lineno)
            try:
                if base in ("INV", "BUF", "DFF"):
                    netlist.add_gate(f"{output}_g", _sized_function(
                        base, len(inputs)), inputs, output)
                elif len(inputs) == 1:
                    # single-input AND/OR etc. degenerate to a buffer
                    netlist.add_gate(f"{output}_g", "BUF", inputs, output)
                elif len(inputs) <= _MAX_ARITY[base]:
                    netlist.add_gate(f"{output}_g", _sized_function(
                        base, len(inputs)), inputs, output)
                else:
                    _decompose_wide(netlist, f"{output}_g", base,
                                    inputs, output)
            except NetlistError as exc:
                raise ParseError(str(exc), filename, lineno) from exc
            continue
        raise ParseError(f"unparseable line: {line!r}", filename, lineno)

    try:
        netlist.validate()
    except NetlistError as exc:
        raise ParseError(str(exc), filename) from exc
    return netlist


def write_bench(netlist: Netlist, path: str | Path) -> None:
    """Serialise a generic netlist to ``.bench``.

    Mapped netlists can be written too: the cell binding is dropped and
    only the logic function is kept (bench has no cell concept).
    """
    lines = [f"# {netlist.name} - written by repro.netlist.bench"]
    for net in netlist.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.primary_outputs:
        lines.append(f"OUTPUT({net})")
    for gate in netlist.topological_order():
        family = _GENERIC_TO_BENCH.get(gate.function)
        if family is None:
            raise NetlistError(
                f"gate {gate.name!r}: function {gate.function!r} has no "
                "bench equivalent")
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {family}({args})")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
