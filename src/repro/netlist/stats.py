"""Netlist statistics used in reports and experiment tables (the
gates/depth columns of the paper's Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.core import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics for one netlist."""

    name: str
    num_gates: int
    num_combinational: int
    num_sequential: int
    num_primary_inputs: int
    num_primary_outputs: int
    num_nets: int
    logic_depth: int
    max_fanout: int
    avg_fanout: float
    function_histogram: dict[str, int]

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"netlist {self.name}:",
            f"  gates          {self.num_gates}"
            f" ({self.num_combinational} comb, {self.num_sequential} seq)",
            f"  primary I/O    {self.num_primary_inputs} in /"
            f" {self.num_primary_outputs} out",
            f"  nets           {self.num_nets}",
            f"  logic depth    {self.logic_depth}",
            f"  fanout         max {self.max_fanout}, avg {self.avg_fanout:.2f}",
        ]
        parts = ", ".join(f"{fn}:{count}"
                          for fn, count in self.function_histogram.items())
        lines.append(f"  functions      {parts}")
        return "\n".join(lines)


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    fanouts = [len(net.sinks) for net in netlist.nets.values()]
    return NetlistStats(
        name=netlist.name,
        num_gates=netlist.num_gates,
        num_combinational=len(netlist.combinational_gates()),
        num_sequential=len(netlist.sequential_gates()),
        num_primary_inputs=len(netlist.primary_inputs),
        num_primary_outputs=len(netlist.primary_outputs),
        num_nets=len(netlist.nets),
        logic_depth=netlist.logic_depth(),
        max_fanout=max(fanouts, default=0),
        avg_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        function_histogram=netlist.function_histogram(),
    )
