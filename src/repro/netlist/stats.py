"""Netlist statistics used in reports and experiment tables (the
gates/depth columns of the paper's Table 1), plus the placed-design
summary (rows, utilization and total wirelength — the physical side of
the same table)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.netlist.core import Netlist

if TYPE_CHECKING:  # placement imports netlist; avoid the cycle at runtime
    from repro.placement.placed_design import PlacedDesign


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics for one netlist."""

    name: str
    num_gates: int
    num_combinational: int
    num_sequential: int
    num_primary_inputs: int
    num_primary_outputs: int
    num_nets: int
    logic_depth: int
    max_fanout: int
    avg_fanout: float
    function_histogram: dict[str, int]

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"netlist {self.name}:",
            f"  gates          {self.num_gates}"
            f" ({self.num_combinational} comb, {self.num_sequential} seq)",
            f"  primary I/O    {self.num_primary_inputs} in /"
            f" {self.num_primary_outputs} out",
            f"  nets           {self.num_nets}",
            f"  logic depth    {self.logic_depth}",
            f"  fanout         max {self.max_fanout}, avg {self.avg_fanout:.2f}",
        ]
        parts = ", ".join(f"{fn}:{count}"
                          for fn, count in self.function_histogram.items())
        lines.append(f"  functions      {parts}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PlacementStats:
    """Physical summary of one placed design."""

    name: str
    num_gates: int
    num_rows: int
    total_hpwl_um: float
    mean_row_utilization: float

    def format(self) -> str:
        """Human-readable multi-line summary."""
        return "\n".join([
            f"placement {self.name}:",
            f"  gates          {self.num_gates}",
            f"  rows           {self.num_rows}",
            f"  wirelength     {self.total_hpwl_um:.1f} um (HPWL)",
            f"  utilization    {self.mean_row_utilization:.1%} mean/row",
        ])


def placement_stats(design: "PlacedDesign") -> PlacementStats:
    """Compute :class:`PlacementStats` for a placed design.

    Wirelength comes from the vectorized
    :func:`repro.placement.hpwl.total_hpwl` kernel (imported lazily:
    placement depends on netlist, not the other way around).
    """
    from repro.placement.hpwl import total_hpwl
    used_sites = sum(p.width_sites for p in design.placements.values())
    total_sites = design.floorplan.total_sites()
    return PlacementStats(
        name=design.netlist.name,
        num_gates=design.netlist.num_gates,
        num_rows=design.num_rows,
        total_hpwl_um=total_hpwl(design),
        mean_row_utilization=used_sites / total_sites,
    )


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    fanouts = [len(net.sinks) for net in netlist.nets.values()]
    return NetlistStats(
        name=netlist.name,
        num_gates=netlist.num_gates,
        num_combinational=len(netlist.combinational_gates()),
        num_sequential=len(netlist.sequential_gates()),
        num_primary_inputs=len(netlist.primary_inputs),
        num_primary_outputs=len(netlist.primary_outputs),
        num_nets=len(netlist.nets),
        logic_depth=netlist.logic_depth(),
        max_fanout=max(fanouts, default=0),
        avg_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        function_histogram=netlist.function_histogram(),
    )
