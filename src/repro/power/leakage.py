"""Leakage power accounting under body-bias assignments.

Provides the ``L[i,j]`` inputs of the allocation problem (leakage of row
``i`` at bias level ``j``, Sec. 4.1) and design-level rollups used in the
experiment tables.  All powers are in nanowatts; Table 1 reports
microwatts, converted at the report layer.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import AllocationError
from repro.netlist.core import Netlist
from repro.placement.placed_design import PlacedDesign
from repro.tech.characterize import CharacterizedLibrary


def gate_leakage_nw(netlist: Netlist, clib: CharacterizedLibrary,
                    gate_name: str, level: int) -> float:
    """Leakage of one gate at a bias level."""
    gate = netlist.gate(gate_name)
    if gate.cell_name is None:
        raise AllocationError(f"gate {gate_name!r} unmapped")
    return clib.leakage_nw(gate.cell_name, level)


def row_leakage_nw(placed: PlacedDesign, clib: CharacterizedLibrary,
                   row: int, level: int) -> float:
    """Leakage of every cell on a row at one bias level (one L[i,j])."""
    return sum(gate_leakage_nw(placed.netlist, clib, name, level)
               for name in placed.gates_in_row(row))


def leakage_matrix(placed: PlacedDesign,
                   clib: CharacterizedLibrary) -> np.ndarray:
    """The full L[i, j] matrix, shape (num_rows, num_levels).

    Row ``i`` assigned voltage ``j`` costs ``L[i, j]`` nanowatts.  This
    is the objective data of the ILP (Eq. 1) and of the heuristic's
    leakage bookkeeping.
    """
    rows = placed.rows_to_gates()
    matrix = np.zeros((len(rows), clib.num_levels))
    netlist = placed.netlist
    for i, members in enumerate(rows):
        for name in members:
            gate = netlist.gates[name]
            if gate.cell_name is None:
                raise AllocationError(f"gate {name!r} unmapped")
            char = clib.characterization(gate.cell_name)
            matrix[i, :] += np.asarray(char.leakage_nw)
    return matrix


def design_leakage_nw(placed: PlacedDesign, clib: CharacterizedLibrary,
                      row_levels: Sequence[int] | Mapping[int, int]) -> float:
    """Total design leakage for a per-row bias-level assignment."""
    rows = placed.rows_to_gates()
    if isinstance(row_levels, Mapping):
        levels = [row_levels.get(i, 0) for i in range(len(rows))]
    else:
        levels = list(row_levels)
    if len(levels) != len(rows):
        raise AllocationError(
            f"assignment covers {len(levels)} rows, design has {len(rows)}")
    total = 0.0
    for i, members in enumerate(rows):
        for name in members:
            total += gate_leakage_nw(placed.netlist, clib, name, levels[i])
    return total


def uniform_leakage_nw(placed: PlacedDesign, clib: CharacterizedLibrary,
                       level: int) -> float:
    """Design leakage with every row at one level (block-level FBB)."""
    return design_leakage_nw(
        placed, clib, [level] * placed.num_rows)
