"""Leakage power accounting (the paper's Eq. 1 objective data)."""

from repro.power.leakage import (design_leakage_nw, gate_leakage_nw,
                                 leakage_matrix, row_leakage_nw,
                                 uniform_leakage_nw)

__all__ = [
    "design_leakage_nw",
    "gate_leakage_nw",
    "leakage_matrix",
    "row_leakage_nw",
    "uniform_leakage_nw",
]
