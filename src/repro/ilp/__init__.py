"""MILP substrate for the paper's exact Sec. 4.2 ILP: model container,
simplex, branch & bound, HiGHS."""

from repro.ilp.branch_bound import solve_branch_bound
from repro.ilp.highs import solve_highs
from repro.ilp.model import MilpModel, Sense, Solution, Status
from repro.ilp.simplex import LpResult, solve_lp

__all__ = [
    "LpResult",
    "MilpModel",
    "Sense",
    "Solution",
    "Status",
    "solve_branch_bound",
    "solve_highs",
    "solve_lp",
]
