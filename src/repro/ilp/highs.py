"""HiGHS MILP backend via scipy.optimize.milp.

The production path for Table 1 regeneration: the paper used lp_solve;
we use the from-scratch branch & bound for fidelity on small problems
and HiGHS for speed on the full benchmark sweep.  Both consume the same
:class:`repro.ilp.model.MilpModel`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro.errors import SolverError
from repro.ilp.model import MilpModel, Sense, Solution, Status


def solve_highs(model: MilpModel,
                time_limit_s: float | None = None) -> Solution:
    """Solve a MILP with scipy's HiGHS backend."""
    num_vars = model.num_vars
    if num_vars == 0:
        raise SolverError("model has no variables")
    c = model.objective_vector()
    lower, upper = model.bounds
    integrality = model.integer_mask.astype(int)

    num_cons = len(model.constraints)
    matrix = lil_matrix((num_cons, num_vars))
    lo = np.full(num_cons, -np.inf)
    hi = np.full(num_cons, np.inf)
    for row, con in enumerate(model.constraints):
        for index, coeff in con.coeffs.items():
            matrix[row, index] = coeff
        if con.sense is Sense.LE:
            hi[row] = con.rhs
        elif con.sense is Sense.GE:
            lo[row] = con.rhs
        else:
            lo[row] = hi[row] = con.rhs

    options = {}
    if time_limit_s is not None:
        options["time_limit"] = time_limit_s
    constraints = (LinearConstraint(matrix.tocsr(), lo, hi)
                   if num_cons else ())
    result = milp(c, constraints=constraints,
                  integrality=integrality,
                  bounds=Bounds(lower, upper), options=options)

    if result.status == 0:
        return Solution(Status.OPTIMAL, float(result.fun),
                        np.asarray(result.x), incumbent_is_feasible=True)
    if result.status == 2:
        return Solution(Status.INFEASIBLE, None, None)
    if result.status == 1:  # iteration/time limit
        if result.x is not None:
            return Solution(Status.TIMEOUT, float(result.fun),
                            np.asarray(result.x),
                            incumbent_is_feasible=True)
        return Solution(Status.TIMEOUT, None, None)
    if result.status == 3:
        return Solution(Status.UNBOUNDED, None, None)
    raise SolverError(f"HiGHS failed: {result.message}")
