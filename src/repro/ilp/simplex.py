"""Dense two-phase simplex LP solver (from scratch) — the
dependency-free base of the paper's Sec. 4.2 ILP relaxations.

A compact, dependency-free LP solver used as the teaching/backstop engine
under the pure-Python branch & bound.  Solves::

    minimise    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub   (finite bounds handled as rows)

via the standard-form tableau method with Bland's anti-cycling rule.
For the problem sizes the FBB ILP produces on small designs this is
plenty; the HiGHS backend takes over for large ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError

_EPS = 1e-9


@dataclass(frozen=True)
class LpResult:
    status: str          # "optimal" | "infeasible" | "unbounded"
    objective: float | None
    x: np.ndarray | None


def _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, lower, upper):
    """Shift variables to x' = x - lb >= 0; add upper bounds as rows."""
    num_vars = len(c)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if np.any(~np.isfinite(lower)):
        raise SolverError("simplex backend requires finite lower bounds")

    # Substitute x = x' + lb
    b_ub_shift = b_ub - a_ub @ lower if len(b_ub) else b_ub
    b_eq_shift = b_eq - a_eq @ lower if len(b_eq) else b_eq

    finite_upper = np.isfinite(upper)
    ub_rows = []
    ub_rhs = []
    for index in np.nonzero(finite_upper)[0]:
        row = np.zeros(num_vars)
        row[index] = 1.0
        ub_rows.append(row)
        ub_rhs.append(upper[index] - lower[index])
    if ub_rows:
        a_ub_full = np.vstack([a_ub, np.array(ub_rows)]) if len(a_ub) \
            else np.array(ub_rows)
        b_ub_full = np.concatenate([b_ub_shift, np.array(ub_rhs)]) \
            if len(b_ub) else np.array(ub_rhs)
    else:
        a_ub_full, b_ub_full = a_ub, b_ub_shift
    return a_ub_full, b_ub_full, a_eq, b_eq_shift


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > _EPS:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col


def _simplex_core(tableau: np.ndarray, basis: list[int],
                  num_structural: int, max_iter: int) -> str:
    """Minimise the objective row in-place; returns status."""
    num_rows = tableau.shape[0] - 1
    for _ in range(max_iter):
        objective_row = tableau[-1, :-1]
        # Bland's rule: smallest index with negative reduced cost.
        entering = -1
        for col in range(len(objective_row)):
            if objective_row[col] < -_EPS:
                entering = col
                break
        if entering < 0:
            return "optimal"
        # ratio test
        best_ratio = None
        leaving = -1
        for row in range(num_rows):
            coef = tableau[row, entering]
            if coef > _EPS:
                ratio = tableau[row, -1] / coef
                if (best_ratio is None or ratio < best_ratio - _EPS or
                        (abs(ratio - best_ratio) <= _EPS
                         and basis[row] < basis[leaving])):
                    best_ratio = ratio
                    leaving = row
        if leaving < 0:
            return "unbounded"
        _pivot(tableau, basis, leaving, entering)
    raise SolverError(f"simplex exceeded {max_iter} iterations")


def solve_lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
             lower=None, upper=None, max_iter: int = 20000) -> LpResult:
    """Solve the LP; see module docstring for the form handled."""
    c = np.asarray(c, dtype=float)
    num_vars = len(c)
    a_ub = np.zeros((0, num_vars)) if a_ub is None else np.asarray(
        a_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    a_eq = np.zeros((0, num_vars)) if a_eq is None else np.asarray(
        a_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lower = np.zeros(num_vars) if lower is None else np.asarray(
        lower, dtype=float)
    upper = np.full(num_vars, np.inf) if upper is None else np.asarray(
        upper, dtype=float)

    a_ub2, b_ub2, a_eq2, b_eq2 = _to_standard_form(
        c, a_ub, b_ub, a_eq, b_eq, lower, upper)

    num_ub = a_ub2.shape[0]
    num_eq = a_eq2.shape[0]
    num_rows = num_ub + num_eq

    # Build [A | slacks | artificials | rhs]; ensure rhs >= 0.
    a_all = np.vstack([a_ub2, a_eq2]) if num_rows else np.zeros(
        (0, num_vars))
    b_all = np.concatenate([b_ub2, b_eq2]) if num_rows else np.zeros(0)
    slack = np.zeros((num_rows, num_ub))
    for i in range(num_ub):
        slack[i, i] = 1.0
    for row in range(num_rows):
        if b_all[row] < 0:
            a_all[row] *= -1
            b_all[row] *= -1
            if row < num_ub:
                slack[row, row] = -1.0

    total_cols = num_vars + num_ub
    needs_artificial = []
    for row in range(num_rows):
        if row < num_ub and slack[row, row] > 0:
            continue
        needs_artificial.append(row)
    num_art = len(needs_artificial)

    tableau = np.zeros((num_rows + 1, total_cols + num_art + 1))
    tableau[:num_rows, :num_vars] = a_all
    tableau[:num_rows, num_vars:num_vars + num_ub] = slack
    tableau[:num_rows, -1] = b_all
    basis: list[int] = [0] * num_rows
    art_col = total_cols
    art_of_row = {}
    for row in range(num_rows):
        if row < num_ub and slack[row, row] > 0:
            basis[row] = num_vars + row
        else:
            tableau[row, art_col] = 1.0
            basis[row] = art_col
            art_of_row[row] = art_col
            art_col += 1

    # Phase 1: minimise sum of artificials.  The objective row stores
    # reduced costs with rhs = -(current objective value).
    if num_art:
        for row, col in art_of_row.items():
            tableau[-1] -= tableau[row]
            tableau[-1, col] += 1.0  # phase-1 cost of the artificial itself
        status = _simplex_core(tableau, basis, num_vars, max_iter)
        if status != "optimal":
            raise SolverError("phase-1 simplex failed unexpectedly")
        if abs(tableau[-1, -1]) > 1e-7:
            return LpResult("infeasible", None, None)
        # Drive remaining artificials out of the basis if possible.
        for row in range(num_rows):
            if basis[row] >= total_cols:
                pivot_col = -1
                for col in range(total_cols):
                    if abs(tableau[row, col]) > _EPS:
                        pivot_col = col
                        break
                if pivot_col >= 0:
                    _pivot(tableau, basis, row, pivot_col)
        # Rows still basic in an artificial are redundant: drop them.
        keep = [row for row in range(num_rows) if basis[row] < total_cols]
        if len(keep) < num_rows:
            tableau = np.vstack([tableau[keep], tableau[-1:]])
            basis = [basis[row] for row in keep]
            num_rows = len(keep)
        tableau = np.delete(
            tableau, np.s_[total_cols:total_cols + num_art], axis=1)

    # Phase 2: real objective.
    tableau[-1, :] = 0.0
    tableau[-1, :num_vars] = c
    for row in range(num_rows):
        col = basis[row]
        if col < tableau.shape[1] - 1 and abs(tableau[-1, col]) > _EPS:
            tableau[-1] -= tableau[-1, col] * tableau[row]
    status = _simplex_core(tableau, basis, num_vars, max_iter)
    if status == "unbounded":
        return LpResult("unbounded", None, None)

    x_std = np.zeros(tableau.shape[1] - 1)
    for row in range(num_rows):
        if basis[row] < len(x_std):
            x_std[basis[row]] = tableau[row, -1]
    x = x_std[:num_vars] + np.asarray(lower, dtype=float)
    objective = float(c @ x)
    return LpResult("optimal", objective, x)
