"""Solver-independent MILP model container.

The paper casts FBB allocation as a set-partitioning ILP and solves it
with lp_solve.  This module is our lp_solve substitute's front half: a
plain description of variables, linear constraints and the objective,
consumable by any of the backends (pure-Python branch & bound, or
scipy's HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import SolverError


class Sense(Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Status(Enum):
    """Solve outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    TIMEOUT = "timeout"
    UNBOUNDED = "unbounded"


@dataclass
class Constraint:
    coeffs: dict[int, float]
    sense: Sense
    rhs: float
    name: str = ""


@dataclass
class Solution:
    """Result of a MILP solve."""

    status: Status
    objective: float | None
    values: np.ndarray | None
    nodes_explored: int = 0
    incumbent_is_feasible: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status is Status.OPTIMAL


@dataclass
class MilpModel:
    """Minimisation MILP with binary and continuous variables."""

    name: str = "milp"
    _num_vars: int = 0
    _objective: dict[int, float] = field(default_factory=dict)
    _integer: list[bool] = field(default_factory=list)
    _lower: list[float] = field(default_factory=list)
    _upper: list[float] = field(default_factory=list)
    _names: list[str] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)

    # -- variables -------------------------------------------------------------

    def add_binary(self, name: str = "") -> int:
        """Add a 0/1 variable; returns its index."""
        return self._add_var(True, 0.0, 1.0, name)

    def add_continuous(self, lower: float = 0.0,
                       upper: float = float("inf"),
                       name: str = "") -> int:
        return self._add_var(False, lower, upper, name)

    def _add_var(self, integer: bool, lower: float, upper: float,
                 name: str) -> int:
        if lower > upper:
            raise SolverError(f"variable {name!r}: lower {lower} > upper "
                              f"{upper}")
        index = self._num_vars
        self._num_vars += 1
        self._integer.append(integer)
        self._lower.append(lower)
        self._upper.append(upper)
        self._names.append(name or f"x{index}")
        return index

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def integer_mask(self) -> np.ndarray:
        return np.array(self._integer, dtype=bool)

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.array(self._lower), np.array(self._upper))

    def variable_name(self, index: int) -> str:
        return self._names[index]

    # -- objective / constraints --------------------------------------------------

    def set_objective(self, coeffs: dict[int, float]) -> None:
        """Minimise sum(coeffs[i] * x[i])."""
        self._check_indices(coeffs)
        self._objective = dict(coeffs)

    def objective_vector(self) -> np.ndarray:
        vector = np.zeros(self._num_vars)
        for index, coeff in self._objective.items():
            vector[index] = coeff
        return vector

    def add_constraint(self, coeffs: dict[int, float], sense: Sense,
                       rhs: float, name: str = "") -> None:
        if not coeffs:
            raise SolverError(f"constraint {name!r} has no terms")
        self._check_indices(coeffs)
        self.constraints.append(Constraint(dict(coeffs), sense, rhs, name))

    def _check_indices(self, coeffs: dict[int, float]) -> None:
        for index in coeffs:
            if not 0 <= index < self._num_vars:
                raise SolverError(f"unknown variable index {index}")

    # -- matrix form -----------------------------------------------------------------

    def to_matrix_form(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        """Return (c, A_ub, b_ub, A_eq, b_eq) with GE rows negated."""
        num_ub = sum(1 for con in self.constraints
                     if con.sense is not Sense.EQ)
        num_eq = len(self.constraints) - num_ub
        a_ub = np.zeros((num_ub, self._num_vars))
        b_ub = np.zeros(num_ub)
        a_eq = np.zeros((num_eq, self._num_vars))
        b_eq = np.zeros(num_eq)
        iu = ie = 0
        for con in self.constraints:
            if con.sense is Sense.EQ:
                for index, coeff in con.coeffs.items():
                    a_eq[ie, index] = coeff
                b_eq[ie] = con.rhs
                ie += 1
                continue
            flip = -1.0 if con.sense is Sense.GE else 1.0
            for index, coeff in con.coeffs.items():
                a_ub[iu, index] = flip * coeff
            b_ub[iu] = flip * con.rhs
            iu += 1
        return self.objective_vector(), a_ub, b_ub, a_eq, b_eq

    def check_solution(self, values: np.ndarray,
                       tolerance: float = 1e-6) -> bool:
        """Verify a value vector satisfies all constraints and bounds."""
        lower, upper = self.bounds
        if np.any(values < lower - tolerance):
            return False
        if np.any(values > upper + tolerance):
            return False
        mask = self.integer_mask
        if np.any(np.abs(values[mask] - np.round(values[mask])) > tolerance):
            return False
        for con in self.constraints:
            total = sum(coeff * values[index]
                        for index, coeff in con.coeffs.items())
            if con.sense is Sense.LE and total > con.rhs + tolerance:
                return False
            if con.sense is Sense.GE and total < con.rhs - tolerance:
                return False
            if con.sense is Sense.EQ and abs(total - con.rhs) > tolerance:
                return False
        return True
