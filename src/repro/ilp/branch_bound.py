"""Pure-Python branch & bound MILP solver.

Our lp_solve substitute's back half: LP-relaxation-based branch & bound
with best-bound node selection and most-fractional branching.  The LP
relaxations are solved by scipy's HiGGS ``linprog`` when available (it is
in this environment) or by the from-scratch simplex in
:mod:`repro.ilp.simplex` — both produce identical branching behaviour on
the FBB problems.

A wall-clock time limit reproduces the paper's observation that the
exact ILP "did not converge in a specified amount of time" on the two
largest industrial designs.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import MilpModel, Solution, Status
from repro.ilp.simplex import solve_lp

try:
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _scipy_linprog = None

_INTEGER_TOL = 1e-6


def _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, lower, upper,
                      use_scipy: bool):
    """Solve one LP relaxation; returns (status, objective, x)."""
    if use_scipy and _scipy_linprog is not None:
        bounds = list(zip(lower, upper))
        result = _scipy_linprog(
            c, A_ub=a_ub if len(a_ub) else None,
            b_ub=b_ub if len(b_ub) else None,
            A_eq=a_eq if len(a_eq) else None,
            b_eq=b_eq if len(b_eq) else None,
            bounds=bounds, method="highs")
        if result.status == 2:
            return "infeasible", None, None
        if result.status == 3:
            return "unbounded", None, None
        if not result.success:
            raise SolverError(f"linprog failed: {result.message}")
        return "optimal", float(result.fun), np.asarray(result.x)
    result = solve_lp(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
    return result.status, result.objective, result.x


def solve_branch_bound(model: MilpModel,
                       time_limit_s: float | None = None,
                       max_nodes: int = 200_000,
                       use_scipy_lp: bool = True) -> Solution:
    """Solve a MILP by LP-based branch & bound.

    Returns a :class:`Solution` whose status is OPTIMAL, INFEASIBLE or
    TIMEOUT.  On TIMEOUT the best incumbent found so far (if any) is
    returned with ``incumbent_is_feasible=True``.
    """
    c, a_ub, b_ub, a_eq, b_eq = model.to_matrix_form()
    lower0, upper0 = model.bounds
    integer_mask = model.integer_mask
    start = time.monotonic()

    def out_of_time() -> bool:
        return (time_limit_s is not None
                and time.monotonic() - start > time_limit_s)

    status, objective, x = _solve_relaxation(
        c, a_ub, b_ub, a_eq, b_eq, lower0, upper0, use_scipy_lp)
    if status == "infeasible":
        return Solution(Status.INFEASIBLE, None, None)
    if status == "unbounded":
        return Solution(Status.UNBOUNDED, None, None)

    best_obj: float | None = None
    best_x: np.ndarray | None = None
    nodes = 0
    counter = 0  # heap tiebreaker
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (objective, counter, lower0.copy(), upper0.copy()))

    while heap:
        if nodes >= max_nodes or out_of_time():
            return Solution(
                Status.TIMEOUT, best_obj, best_x, nodes_explored=nodes,
                incumbent_is_feasible=best_x is not None)
        bound, _tie, lower, upper = heapq.heappop(heap)
        if best_obj is not None and bound >= best_obj - 1e-9:
            continue
        status, objective, x = _solve_relaxation(
            c, a_ub, b_ub, a_eq, b_eq, lower, upper, use_scipy_lp)
        nodes += 1
        if status != "optimal":
            continue
        if best_obj is not None and objective >= best_obj - 1e-9:
            continue

        fractional = [
            (abs(x[i] - round(x[i])), i)
            for i in np.nonzero(integer_mask)[0]
            if abs(x[i] - round(x[i])) > _INTEGER_TOL]
        if not fractional:
            rounded = x.copy()
            rounded[integer_mask] = np.round(rounded[integer_mask])
            if best_obj is None or objective < best_obj - 1e-9:
                best_obj = objective
                best_x = rounded
            continue

        # Branch on the most fractional variable.
        _frac, branch_var = max(fractional)
        floor_val = np.floor(x[branch_var])

        lower_child = (lower.copy(), upper.copy())
        lower_child[1][branch_var] = floor_val
        upper_child = (lower.copy(), upper.copy())
        upper_child[0][branch_var] = floor_val + 1.0

        for child_lower, child_upper in (lower_child, upper_child):
            if child_lower[branch_var] > child_upper[branch_var] + 1e-12:
                continue
            counter += 1
            heapq.heappush(
                heap, (objective, counter, child_lower, child_upper))

    if best_x is None:
        return Solution(Status.INFEASIBLE, None, None, nodes_explored=nodes)
    return Solution(Status.OPTIMAL, best_obj, best_x, nodes_explored=nodes,
                    incumbent_is_feasible=True)
