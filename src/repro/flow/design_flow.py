"""End-to-end design flow: generate -> map -> size -> place -> STA.

One call takes a benchmark name (or a prebuilt netlist) to a fully
analysed :class:`FlowResult`, mirroring the paper's Synopsys flow
(Physical Compiler synthesis + placement, PrimeTime timing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.catalog import build_benchmark
from repro.flow.cache import ArtifactCache, default_cache, tech_content
from repro.netlist.core import Netlist
from repro.placement.placed_design import PlacedDesign
from repro.placement.placer import place_design
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import TimingPath, extract_paths
from repro.synth.mapping import map_netlist
from repro.synth.sizing import size_for_load
from repro.tech.cells import reduced_library
from repro.tech.characterize import (CharacterizedLibrary,
                                     characterize_library)
from repro.tech.technology import Technology


@dataclass(frozen=True)
class FlowResult:
    """Everything downstream steps need about one implemented design."""

    netlist: Netlist
    placed: PlacedDesign
    clib: CharacterizedLibrary
    analyzer: TimingAnalyzer
    paths: tuple[TimingPath, ...]
    dcrit_ps: float

    @property
    def name(self) -> str:
        return self.netlist.name

    @property
    def num_gates(self) -> int:
        return self.netlist.num_gates

    @property
    def num_rows(self) -> int:
        return self.placed.num_rows


def characterized_library(tech: Technology | None = None,
                          cache: ArtifactCache | None = None
                          ) -> CharacterizedLibrary:
    """Build (and cache) the characterized reduced library for a node.

    The memo key is the *full content* of the technology (every field,
    nested bias rules included), not just ``tech.name`` — two different
    :class:`Technology` objects sharing a name get distinct libraries,
    fixing the collision the old ``_CLIB_CACHE`` dict allowed.
    """
    if tech is None:
        tech = Technology()
    if cache is None:
        cache = default_cache()
    return cache.get_or_create(
        "clib", tech_content(tech),
        lambda: characterize_library(reduced_library(tech)))


def implement(source: str | Netlist,
              tech: Technology | None = None,
              utilization: float = 0.75,
              sizing_budget_ps: float | None = None,
              placer: str = "bfs",
              cache: ArtifactCache | None = None) -> FlowResult:
    """Run the full implementation flow on a benchmark name or netlist.

    Named benchmarks are memoized in the artifact cache (keyed on the
    benchmark name, full technology content and flow knobs), so Table 1
    sweeps and population studies re-running the same design share one
    synthesis/placement/STA pass.  Prebuilt netlists bypass the flow
    memo (their content is not cheaply addressable) but still reuse the
    cached characterized library.  ``placer`` names a placer-registry
    engine (``"bfs"`` default, ``"anneal:<preset>"``); the default is
    elided from the cache material so every pre-existing flow artifact
    key is unchanged.
    """
    if cache is None:
        cache = default_cache()
    if isinstance(source, str):
        material = {
            "artifact": "flow",
            "source": source,
            "tech": tech_content(tech if tech is not None else Technology()),
            "utilization": utilization,
            "sizing_budget_ps": sizing_budget_ps,
        }
        if placer != "bfs":
            material["placer"] = placer
        return cache.get_or_create(
            "flow", material,
            lambda: _implement_uncached(source, tech, utilization,
                                        sizing_budget_ps, placer, cache))
    return _implement_uncached(source, tech, utilization,
                               sizing_budget_ps, placer, cache)


def _implement_uncached(source: str | Netlist,
                        tech: Technology | None,
                        utilization: float,
                        sizing_budget_ps: float | None,
                        placer: str,
                        cache: ArtifactCache) -> FlowResult:
    clib = characterized_library(tech, cache=cache)
    library = clib.library
    netlist = (build_benchmark(source) if isinstance(source, str)
               else source)
    mapped = map_netlist(netlist, library)
    if sizing_budget_ps is None:
        size_for_load(mapped, library)
    else:
        size_for_load(mapped, library, budget_ps=sizing_budget_ps)
    placed = place_design(mapped, library, utilization=utilization,
                          placer=placer)
    analyzer = TimingAnalyzer.for_placed(placed)
    paths = tuple(extract_paths(analyzer))
    return FlowResult(
        netlist=mapped,
        placed=placed,
        clib=clib,
        analyzer=analyzer,
        paths=paths,
        dcrit_ps=paths[0].delay_ps,
    )
