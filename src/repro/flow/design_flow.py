"""End-to-end design flow: generate -> map -> size -> place -> STA.

One call takes a benchmark name (or a prebuilt netlist) to a fully
analysed :class:`FlowResult`, mirroring the paper's Synopsys flow
(Physical Compiler synthesis + placement, PrimeTime timing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.catalog import build_benchmark
from repro.netlist.core import Netlist
from repro.placement.placed_design import PlacedDesign
from repro.placement.placer import place_design
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import TimingPath, extract_paths
from repro.synth.mapping import map_netlist
from repro.synth.sizing import size_for_load
from repro.tech.cells import reduced_library
from repro.tech.characterize import (CharacterizedLibrary,
                                     characterize_library)
from repro.tech.technology import Technology


@dataclass(frozen=True)
class FlowResult:
    """Everything downstream steps need about one implemented design."""

    netlist: Netlist
    placed: PlacedDesign
    clib: CharacterizedLibrary
    analyzer: TimingAnalyzer
    paths: tuple[TimingPath, ...]
    dcrit_ps: float

    @property
    def name(self) -> str:
        return self.netlist.name

    @property
    def num_gates(self) -> int:
        return self.netlist.num_gates

    @property
    def num_rows(self) -> int:
        return self.placed.num_rows


_CLIB_CACHE: dict[str, CharacterizedLibrary] = {}


def characterized_library(tech: Technology | None = None
                          ) -> CharacterizedLibrary:
    """Build (and cache) the characterized reduced library for a node."""
    if tech is None:
        tech = Technology()
    cached = _CLIB_CACHE.get(tech.name)
    if cached is None or cached.tech is not tech and cached.tech != tech:
        cached = characterize_library(reduced_library(tech))
        _CLIB_CACHE[tech.name] = cached
    return cached


def implement(source: str | Netlist,
              tech: Technology | None = None,
              utilization: float = 0.75,
              sizing_budget_ps: float | None = None) -> FlowResult:
    """Run the full implementation flow on a benchmark name or netlist."""
    clib = characterized_library(tech)
    library = clib.library
    netlist = (build_benchmark(source) if isinstance(source, str)
               else source)
    mapped = map_netlist(netlist, library)
    if sizing_budget_ps is None:
        size_for_load(mapped, library)
    else:
        size_for_load(mapped, library, budget_ps=sizing_budget_ps)
    placed = place_design(mapped, library, utilization=utilization)
    analyzer = TimingAnalyzer.for_placed(placed)
    paths = tuple(extract_paths(analyzer))
    return FlowResult(
        netlist=mapped,
        placed=placed,
        clib=clib,
        analyzer=analyzer,
        paths=paths,
        dcrit_ps=paths[0].delay_ps,
    )
