"""Experiment harnesses: Table 1, Monte Carlo populations, spatial and
lifetime studies.

Runs the paper's main experiment — for each design and slowdown beta,
the Single BB baseline, the exact ILP and the two-pass heuristic at
cluster budgets C = 2 and C = 3, reporting leakage savings and the
timing-constraint counts — plus the population study behind the
post-silicon-tuning sections (sample thousands of dies through the
batched STA backend, optionally tune every slow one, and report the
yield/leakage economics) and the **spatial compensation study**: the
same die population calibrated twice, once through a per-region sensor
grid with clustered allocation and once through the classic single
die-wide sensor with uniform biasing, head to head — the paper's
central clustered-vs-uniform claim as one experiment row — and the
**lifetime study**: the same population aged through per-row NBTI drift
epochs and re-calibrated at a cadence (:mod:`repro.tuning.lifetime`),
reporting the yield-vs-age trajectory.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.core.problem import FBBProblem, build_problem
from repro.core.single_bb import solve_single_bb
from repro.errors import SpecError, TimeoutError_
from repro.flow.design_flow import FlowResult, implement
from repro.grouping import solve_grouped
from repro.variation.drift import DriftModel
from repro.variation.montecarlo import sample_dies
from repro.variation.process import ProcessModel

#: population-tuning execution engines (PopulationConfig.tuning_engine /
#: RunSpec.tuning_engine): both produce bit-identical summaries
TUNING_ENGINES = ("serial", "batched")


@dataclass(frozen=True)
class Table1Row:
    """One (design, beta) row of the paper's Table 1."""

    design: str
    gates: int
    rows: int
    beta: float
    single_bb_uw: float
    ilp_savings: dict[int, float | None]
    """C -> savings %, None when the ILP timed out (paper's '-')."""
    heuristic_savings: dict[int, float]
    num_constraints: int
    ilp_runtime_s: float
    heuristic_runtime_s: float

    def ilp_cell(self, clusters: int) -> str:
        value = self.ilp_savings.get(clusters)
        return "-" if value is None else f"{value:.2f}"


@dataclass
class ExperimentConfig:
    """Knobs for a Table 1 regeneration run."""

    betas: tuple[float, ...] = (0.05, 0.10)
    cluster_budgets: tuple[int, ...] = (2, 3)
    ilp_backend: str = "highs"
    ilp_time_limit_s: float = 120.0
    skip_ilp_above_rows: int | None = None
    """Mimic the paper: no ILP results for the largest designs."""
    heuristic_strategy: str = "row-descent"
    workers: int = 1
    """Process-pool width for the (design, beta) fan-out when the run
    routes through ``api.run_many`` (the ``run_table1`` shim)."""
    grouping: str = "identity"
    """Bias-domain grouping spec for the ILP/heuristic columns
    (``"identity"`` = the paper's per-row granularity; the Single BB
    baseline is granularity-free by definition)."""
    extra: dict = field(default_factory=dict)


def run_design_beta(flow: FlowResult, beta: float,
                    config: ExperimentConfig) -> Table1Row:
    """One Table 1 row: all methods on one (design, beta) pair."""
    problem: FBBProblem = build_problem(
        flow.placed, flow.clib, beta,
        analyzer=flow.analyzer, paths=list(flow.paths),
        dcrit_ps=flow.dcrit_ps)
    baseline = solve_single_bb(problem)

    ilp_savings: dict[int, float | None] = {}
    ilp_runtime = 0.0
    skip_ilp = (config.skip_ilp_above_rows is not None
                and problem.num_rows > config.skip_ilp_above_rows)
    for clusters in config.cluster_budgets:
        if skip_ilp:
            ilp_savings[clusters] = None
            continue
        try:
            solution = solve_grouped(
                problem, f"ilp:{config.ilp_backend}", clusters,
                grouping=config.grouping, placed=flow.placed,
                time_limit_s=config.ilp_time_limit_s)
            ilp_savings[clusters] = solution.savings_vs(baseline.leakage_nw)
            ilp_runtime += solution.runtime_s
        except TimeoutError_:
            ilp_savings[clusters] = None

    heuristic_savings: dict[int, float] = {}
    heuristic_runtime = 0.0
    for clusters in config.cluster_budgets:
        solution = solve_grouped(
            problem, f"heuristic:{config.heuristic_strategy}", clusters,
            grouping=config.grouping, placed=flow.placed)
        heuristic_savings[clusters] = solution.savings_vs(
            baseline.leakage_nw)
        heuristic_runtime += solution.runtime_s

    return Table1Row(
        design=flow.name,
        gates=flow.num_gates,
        rows=flow.num_rows,
        beta=beta,
        single_bb_uw=baseline.leakage_uw,
        ilp_savings=ilp_savings,
        heuristic_savings=heuristic_savings,
        num_constraints=problem.num_constraints,
        ilp_runtime_s=ilp_runtime,
        heuristic_runtime_s=heuristic_runtime,
    )


@dataclass
class PopulationConfig:
    """Knobs for a Monte Carlo die-population study."""

    num_dies: int = 1000
    seed: int = 0
    model: ProcessModel | None = None
    sta_engine: str = "batched"
    """"batched" (vectorized, default) or "scalar" (ground truth)."""
    tune: bool = False
    """Run the closed calibration loop on every out-of-budget die."""
    max_clusters: int = 3
    beta_budget: float = 0.0
    method: str = "heuristic:row-descent"
    """Solver-registry method the tuning controller allocates with."""
    workers: int = 1
    """Process-pool width for sharding the tuning loop across the
    population's slow dies (1 = the serial reference path)."""
    grouping: str = "identity"
    """Bias-domain grouping the tuning controller allocates at
    (``"identity"`` = per-row, the pre-grouping behaviour)."""
    tuning_engine: str = "serial"
    """Calibration execution engine: ``"serial"`` runs the per-die
    reference loop, ``"batched"`` advances all slow dies one
    sense/allocate/verify step per matrix pass
    (:mod:`repro.tuning.batched`) with bit-identical results.  An
    execution knob like ``workers``, not an experiment input."""


@dataclass(frozen=True)
class PopulationRow:
    """One design's Monte Carlo population study."""

    design: str
    gates: int
    rows: int
    num_dies: int
    nominal_delay_ps: float
    beta_mean: float
    beta_std: float
    beta_max: float
    timing_yield: float
    sta_engine: str
    sample_runtime_s: float
    tuned_yield: float | None = None
    recovered: int = 0
    lost: int = 0
    tune_runtime_s: float = 0.0
    seed: int = 0
    """Sampling seed the population was drawn with (reproducibility)."""


def run_population(flow: FlowResult,
                   config: PopulationConfig | None = None) -> PopulationRow:
    """Sample (and optionally tune) one design's die population."""
    if config is None:
        config = PopulationConfig()
    started = time.perf_counter()
    population = sample_dies(flow.placed, config.num_dies,
                             model=config.model, seed=config.seed,
                             engine=config.sta_engine,
                             store_scales=False)
    sample_runtime = time.perf_counter() - started

    tuned_yield = None
    recovered = 0
    lost = 0
    tune_runtime = 0.0
    if config.tune:
        from repro.tuning.controller import TuningController
        if config.tuning_engine not in TUNING_ENGINES:
            raise SpecError(
                f"unknown tuning engine {config.tuning_engine!r}; "
                f"choose from {TUNING_ENGINES}")
        started = time.perf_counter()
        controller = TuningController(flow.placed, flow.clib,
                                      max_clusters=config.max_clusters,
                                      method=config.method,
                                      grouping=config.grouping)
        summary = controller.calibrate_population(
            population, beta_budget=config.beta_budget,
            workers=config.workers,
            mode=("batched" if config.tuning_engine == "batched"
                  else "model"))
        tune_runtime = time.perf_counter() - started
        tuned_yield = summary.yield_after
        recovered = summary.recovered
        lost = summary.lost

    betas = population.betas
    return PopulationRow(
        design=flow.name,
        gates=flow.num_gates,
        rows=flow.num_rows,
        num_dies=config.num_dies,
        nominal_delay_ps=population.nominal_delay_ps,
        beta_mean=float(betas.mean()),
        beta_std=float(betas.std()),
        beta_max=float(betas.max()),
        timing_yield=population.timing_yield(config.beta_budget),
        sta_engine=config.sta_engine,
        sample_runtime_s=sample_runtime,
        tuned_yield=tuned_yield,
        recovered=recovered,
        lost=lost,
        tune_runtime_s=tune_runtime,
        seed=config.seed,
    )


@dataclass
class SpatialConfig:
    """Knobs for a spatial-vs-uniform compensation study."""

    num_dies: int = 200
    seed: int = 0
    model: ProcessModel | None = None
    """Process model the population is drawn from (None = defaults);
    its ``correlation_length_fraction`` is the study's main axis."""
    sta_engine: str = "batched"
    max_clusters: int = 3
    beta_budget: float = 0.0
    method: str = "heuristic:row-descent"
    """Allocator of the spatial arm (the uniform arm uses single_bb)."""
    num_regions: int = 4
    """Sensor-grid resolution of the spatial arm."""
    grouping: str = "identity"
    """Bias-domain grouping of the spatial arm's allocator (the uniform
    arm is single-voltage, so granularity does not apply to it)."""
    max_iterations: int = 4
    """Calibration-iteration budget per die (tester time is paid per
    verify pass, so the study uses a production-tight budget; both arms
    get the same one)."""
    sense_guard: float = 0.01
    """Sensing guard band applied identically to both arms (see
    :class:`repro.tuning.controller.TuningController.sense_guard`)."""
    workers: int = 1


@dataclass(frozen=True)
class SpatialRow:
    """One design's spatial-vs-uniform compensation study.

    Both arms calibrate the *same* sampled die population against its
    actual per-gate fields: the spatial arm senses ``num_regions``
    monitor regions and allocates clustered biases; the uniform arm is
    the classic baseline — a single path-replica sensor in the die's
    central band and one uniform voltage (``single_bb``).
    ``*_leakage_uw`` compare mean recovered-die leakage over the dies
    *both* arms recovered, so the leakage numbers are apples to apples
    even when the yields differ.
    """

    design: str
    gates: int
    rows: int
    num_dies: int
    num_regions: int
    seed: int
    correlation_length: float | None
    beta_budget: float
    yield_before: float
    spatial_yield: float
    uniform_yield: float
    spatial_recovered: int
    spatial_lost: int
    uniform_recovered: int
    uniform_lost: int
    spatial_leakage_uw: float
    uniform_leakage_uw: float
    sample_runtime_s: float
    tune_runtime_s: float


def run_spatial(flow: FlowResult,
                config: SpatialConfig | None = None) -> SpatialRow:
    """Run the spatial-vs-uniform study on one design's population."""
    from repro.tuning.controller import TuningController
    from repro.tuning.population import tune_population

    if config is None:
        config = SpatialConfig()
    model = config.model if config.model is not None else ProcessModel()
    started = time.perf_counter()
    population = sample_dies(flow.placed, config.num_dies,
                             model=model, seed=config.seed,
                             engine=config.sta_engine,
                             store_scales=False)
    sample_runtime = time.perf_counter() - started

    started = time.perf_counter()
    spatial_controller = TuningController(
        flow.placed, flow.clib, max_clusters=config.max_clusters,
        method=config.method, max_iterations=config.max_iterations,
        sense_guard=config.sense_guard, grouping=config.grouping)
    spatial = tune_population(
        spatial_controller, population, beta_budget=config.beta_budget,
        workers=config.workers, mode="spatial",
        num_regions=config.num_regions)
    uniform_controller = TuningController(
        flow.placed, flow.clib, max_clusters=config.max_clusters,
        method="single_bb", max_iterations=config.max_iterations,
        sense_guard=config.sense_guard)
    uniform = tune_population(
        uniform_controller, population, beta_budget=config.beta_budget,
        workers=config.workers, mode="spatial",
        num_regions=config.num_regions, replica_sensor=True)
    tune_runtime = time.perf_counter() - started

    both = [(s.leakage_nw, u.leakage_nw)
            for s, u in zip(spatial.records, uniform.records)
            if s.status == "recovered" and u.status == "recovered"]
    spatial_uw = (sum(s for s, _ in both) / len(both) / 1e3
                  if both else 0.0)
    uniform_uw = (sum(u for _, u in both) / len(both) / 1e3
                  if both else 0.0)
    return SpatialRow(
        design=flow.name,
        gates=flow.num_gates,
        rows=flow.num_rows,
        num_dies=config.num_dies,
        num_regions=spatial.num_regions or config.num_regions,
        seed=config.seed,
        correlation_length=model.correlation_length_fraction,
        beta_budget=config.beta_budget,
        yield_before=population.timing_yield(config.beta_budget),
        spatial_yield=spatial.yield_after,
        uniform_yield=uniform.yield_after,
        spatial_recovered=spatial.recovered,
        spatial_lost=spatial.lost,
        uniform_recovered=uniform.recovered,
        uniform_lost=uniform.lost,
        spatial_leakage_uw=spatial_uw,
        uniform_leakage_uw=uniform_uw,
        sample_runtime_s=sample_runtime,
        tune_runtime_s=tune_runtime,
    )


@dataclass
class LifetimeConfig:
    """Knobs for a lifetime aging-and-recalibration study."""

    num_dies: int = 200
    seed: int = 0
    """Sampling seed; also drives the drift trajectory."""
    model: ProcessModel | None = None
    drift: DriftModel | None = None
    """Per-row aging drift process (None = :class:`DriftModel`
    defaults)."""
    sta_engine: str = "batched"
    epochs: int = 8
    """Service-life epochs the population ages through."""
    cadence: int = 1
    """Re-calibrate every ``cadence`` epochs (1 = every epoch,
    ``epochs`` = tune once at time zero and coast)."""
    max_clusters: int = 3
    beta_budget: float = 0.0
    method: str = "heuristic:row-descent"
    mode: str = "model"
    """Lifetime calibration mode: "model" (scalar die-wide derate) or
    "spatial" (per-region sensing of the composed field)."""
    num_regions: int = 4
    grouping: str = "identity"


@dataclass(frozen=True)
class LifetimeRow:
    """One design's lifetime study: yield-vs-age under a re-calibration
    cadence.

    ``yield_curve`` is the epoch-by-epoch timing yield of the aging
    population with the currently programmed biases — the trajectory
    that decays between calibration visits and recovers at each one.
    """

    design: str
    gates: int
    rows: int
    num_dies: int
    epochs: int
    cadence: int
    epoch_years: float
    mode: str
    beta_budget: float
    seed: int
    grouping: str
    recalibrations: int
    initial_yield: float
    final_yield: float
    min_yield: float
    mean_yield: float
    yield_curve: tuple[float, ...]
    mean_leakage_uw: float
    """Population-mean leakage at end of life, microwatts."""
    sample_runtime_s: float
    tune_runtime_s: float


def run_lifetime_study(flow: FlowResult,
                       config: LifetimeConfig | None = None) -> LifetimeRow:
    """Age one design's die population and re-tune it at a cadence."""
    from repro.tuning.controller import TuningController
    from repro.tuning.lifetime import run_lifetime

    if config is None:
        config = LifetimeConfig()
    started = time.perf_counter()
    population = sample_dies(flow.placed, config.num_dies,
                             model=config.model, seed=config.seed,
                             engine=config.sta_engine)
    sample_runtime = time.perf_counter() - started

    controller = TuningController(flow.placed, flow.clib,
                                  max_clusters=config.max_clusters,
                                  method=config.method,
                                  grouping=config.grouping)
    summary = run_lifetime(
        controller, population, config.drift,
        epochs=config.epochs, cadence=config.cadence,
        beta_budget=config.beta_budget, mode=config.mode,
        num_regions=config.num_regions, seed=config.seed)
    curve = summary.yield_curve()
    return LifetimeRow(
        design=flow.name,
        gates=flow.num_gates,
        rows=flow.num_rows,
        num_dies=config.num_dies,
        epochs=config.epochs,
        cadence=config.cadence,
        epoch_years=summary.epoch_years,
        mode=config.mode,
        beta_budget=config.beta_budget,
        seed=config.seed,
        grouping=config.grouping,
        recalibrations=summary.recalibrations,
        initial_yield=curve[0],
        final_yield=summary.final_yield,
        min_yield=summary.min_yield,
        mean_yield=summary.mean_yield,
        yield_curve=curve,
        mean_leakage_uw=summary.outcomes[-1].mean_leakage_nw / 1e3,
        sample_runtime_s=sample_runtime,
        tune_runtime_s=summary.runtime_s,
    )


_DEPRECATION = ("%s is deprecated; build RunSpecs and call "
                "repro.api.run_many (see DESIGN.md, 'The repro.api "
                "facade')")


def run_population_study(designs: tuple[str, ...],
                         config: PopulationConfig | None = None,
                         flows: dict[str, FlowResult] | None = None
                         ) -> list[PopulationRow]:
    """The population study over several designs.

    .. deprecated:: routed through :mod:`repro.api`; kept as a thin
       shim.  Callers supplying prebuilt ``flows`` or a custom
       ``config.model`` (neither is spec-serializable) take the direct
       legacy path and are not warned — the facade cannot express
       their call yet.
    """
    if config is None:
        config = PopulationConfig()
    if flows is not None or config.model is not None:
        return [run_population(
            flows[name] if flows is not None else implement(name), config)
            for name in designs]
    warnings.warn(_DEPRECATION % "run_population_study",
                  DeprecationWarning, stacklevel=2)
    from repro import api
    specs = [api.RunSpec(
        kind="population", design=name, num_dies=config.num_dies,
        seed=config.seed, engine=config.sta_engine, tune=config.tune,
        clusters=config.max_clusters, beta_budget=config.beta_budget,
        method=config.method, workers=config.workers,
        grouping=config.grouping)
        for name in designs]
    return [result.to_population_row() for result in api.run_many(specs)]


def run_table1(designs: tuple[str, ...],
               config: ExperimentConfig | None = None,
               flows: dict[str, FlowResult] | None = None
               ) -> list[Table1Row]:
    """Regenerate Table 1 for the given designs.

    .. deprecated:: routed through :mod:`repro.api`; kept as a thin
       shim.  Callers supplying prebuilt ``flows`` take the direct
       legacy path (a prebuilt FlowResult is not spec-serializable)
       and are not warned.
    """
    if config is None:
        config = ExperimentConfig()
    if flows is not None:
        return [run_design_beta(flows[name], beta, config)
                for name in designs for beta in config.betas]
    warnings.warn(_DEPRECATION % "run_table1",
                  DeprecationWarning, stacklevel=2)
    from repro import api
    specs = [api.RunSpec(
        kind="table1", design=name, beta=beta,
        method=f"heuristic:{config.heuristic_strategy}",
        cluster_budgets=tuple(config.cluster_budgets),
        ilp_backend=config.ilp_backend,
        ilp_time_limit_s=config.ilp_time_limit_s,
        skip_ilp_above_rows=config.skip_ilp_above_rows,
        grouping=config.grouping)
        for name in designs for beta in config.betas]
    return [result.to_table1_row()
            for result in api.run_many(specs, workers=config.workers)]
