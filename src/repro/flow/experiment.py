"""Table 1 experiment harness.

Runs the paper's main experiment: for each design and slowdown beta,
the Single BB baseline, the exact ILP and the two-pass heuristic at
cluster budgets C = 2 and C = 3, reporting leakage savings and the
timing-constraint counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.heuristic import solve_heuristic
from repro.core.ilp_alloc import solve_ilp
from repro.core.problem import FBBProblem, build_problem
from repro.core.single_bb import solve_single_bb
from repro.errors import TimeoutError_
from repro.flow.design_flow import FlowResult, implement


@dataclass(frozen=True)
class Table1Row:
    """One (design, beta) row of the paper's Table 1."""

    design: str
    gates: int
    rows: int
    beta: float
    single_bb_uw: float
    ilp_savings: dict[int, float | None]
    """C -> savings %, None when the ILP timed out (paper's '-')."""
    heuristic_savings: dict[int, float]
    num_constraints: int
    ilp_runtime_s: float
    heuristic_runtime_s: float

    def ilp_cell(self, clusters: int) -> str:
        value = self.ilp_savings.get(clusters)
        return "-" if value is None else f"{value:.2f}"


@dataclass
class ExperimentConfig:
    """Knobs for a Table 1 regeneration run."""

    betas: tuple[float, ...] = (0.05, 0.10)
    cluster_budgets: tuple[int, ...] = (2, 3)
    ilp_backend: str = "highs"
    ilp_time_limit_s: float = 120.0
    skip_ilp_above_rows: int | None = None
    """Mimic the paper: no ILP results for the largest designs."""
    heuristic_strategy: str = "row-descent"
    extra: dict = field(default_factory=dict)


def run_design_beta(flow: FlowResult, beta: float,
                    config: ExperimentConfig) -> Table1Row:
    """One Table 1 row: all methods on one (design, beta) pair."""
    problem: FBBProblem = build_problem(
        flow.placed, flow.clib, beta,
        analyzer=flow.analyzer, paths=list(flow.paths),
        dcrit_ps=flow.dcrit_ps)
    baseline = solve_single_bb(problem)

    ilp_savings: dict[int, float | None] = {}
    ilp_runtime = 0.0
    skip_ilp = (config.skip_ilp_above_rows is not None
                and problem.num_rows > config.skip_ilp_above_rows)
    for clusters in config.cluster_budgets:
        if skip_ilp:
            ilp_savings[clusters] = None
            continue
        try:
            solution = solve_ilp(problem, clusters,
                                 backend=config.ilp_backend,
                                 time_limit_s=config.ilp_time_limit_s)
            ilp_savings[clusters] = solution.savings_vs(baseline.leakage_nw)
            ilp_runtime += solution.runtime_s
        except TimeoutError_:
            ilp_savings[clusters] = None

    heuristic_savings: dict[int, float] = {}
    heuristic_runtime = 0.0
    for clusters in config.cluster_budgets:
        solution = solve_heuristic(problem, clusters,
                                   strategy=config.heuristic_strategy)
        heuristic_savings[clusters] = solution.savings_vs(
            baseline.leakage_nw)
        heuristic_runtime += solution.runtime_s

    return Table1Row(
        design=flow.name,
        gates=flow.num_gates,
        rows=flow.num_rows,
        beta=beta,
        single_bb_uw=baseline.leakage_uw,
        ilp_savings=ilp_savings,
        heuristic_savings=heuristic_savings,
        num_constraints=problem.num_constraints,
        ilp_runtime_s=ilp_runtime,
        heuristic_runtime_s=heuristic_runtime,
    )


def run_table1(designs: tuple[str, ...],
               config: ExperimentConfig | None = None,
               flows: dict[str, FlowResult] | None = None
               ) -> list[Table1Row]:
    """Regenerate Table 1 for the given designs."""
    if config is None:
        config = ExperimentConfig()
    rows = []
    for name in designs:
        flow = flows[name] if flows is not None else implement(name)
        for beta in config.betas:
            rows.append(run_design_beta(flow, beta, config))
    return rows
