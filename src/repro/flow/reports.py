"""Fixed-width report tables for the experiment harness (the paper's
Table 1 layout, the population study, the spatial-vs-uniform
compensation comparison and the lifetime aging study)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.flow.experiment import (LifetimeRow, PopulationRow, SpatialRow,
                                   Table1Row)


def format_table1(rows: Sequence[Table1Row],
                  cluster_budgets: tuple[int, ...] = (2, 3)) -> str:
    """Render experiment rows in the paper's Table 1 layout."""
    ilp_heads = "".join(f"  ILP C={c} " for c in cluster_budgets)
    heur_heads = "".join(f" Heur C={c}" for c in cluster_budgets)
    header = (f"{'Benchmark':<15}{'Gates':>7}{'Rows':>6}{'beta':>6}"
              f"{'SingleBB':>10}{ilp_heads}{heur_heads}{'No.Constr':>11}")
    lines = [header, "-" * len(header)]
    for row in rows:
        ilp_cells = "".join(f"{row.ilp_cell(c):>9} "
                            for c in cluster_budgets)
        heur_cells = "".join(f"{row.heuristic_savings[c]:>9.2f}"
                             for c in cluster_budgets)
        lines.append(
            f"{row.design:<15}{row.gates:>7}{row.rows:>6}"
            f"{row.beta * 100:>5.0f}%"
            f"{row.single_bb_uw:>9.2f}u{ilp_cells}{heur_cells}"
            f"{row.num_constraints:>11}")
    lines.append("")
    lines.append("Single BB in uW; ILP/Heuristic columns are leakage "
                 "savings % vs Single BB; '-' = ILP not run/converged.")
    return "\n".join(lines)


def format_population(rows: Sequence[PopulationRow]) -> str:
    """Render die-population study rows (batched Monte Carlo STA)."""
    header = (f"{'Benchmark':<15}{'Gates':>7}{'Dies':>7}{'Dcrit ps':>10}"
              f"{'beta mean':>11}{'std':>8}{'max':>8}{'yield':>8}"
              f"{'tuned':>8}{'rec/lost':>10}{'t_mc s':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        tuned = ("-" if row.tuned_yield is None
                 else f"{row.tuned_yield * 100:.0f}%")
        recovery = ("-" if row.tuned_yield is None
                    else f"{row.recovered}/{row.lost}")
        lines.append(
            f"{row.design:<15}{row.gates:>7}{row.num_dies:>7}"
            f"{row.nominal_delay_ps:>10.0f}{row.beta_mean * 100:>10.2f}%"
            f"{row.beta_std * 100:>7.2f}%{row.beta_max * 100:>7.2f}%"
            f"{row.timing_yield * 100:>7.0f}%{tuned:>8}{recovery:>10}"
            f"{row.sample_runtime_s:>8.3f}")
    lines.append("")
    lines.append(f"STA engine: {rows[0].sta_engine if rows else '-'}; "
                 "yield = dies within the beta budget before tuning, "
                 "tuned = after closed-loop FBB calibration.")
    return "\n".join(lines)


def format_spatial(rows: Sequence[SpatialRow]) -> str:
    """Render spatial-vs-uniform compensation study rows.

    One line per (design, correlation length, regions) study: the
    population's pre-tuning yield, each arm's post-tuning yield, and
    the mean recovered-die leakage of each arm over the dies both arms
    recovered (the apples-to-apples leakage comparison).
    """
    header = (f"{'Benchmark':<15}{'Dies':>6}{'Reg':>5}{'CorrLen':>9}"
              f"{'yield':>7}{'uniform':>9}{'spatial':>9}"
              f"{'U leak uW':>11}{'S leak uW':>11}{'saving':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        corr = ("-" if row.correlation_length is None
                else f"{row.correlation_length:.2f}")
        saving = ("-" if row.uniform_leakage_uw <= 0 else
                  f"{100 * (1 - row.spatial_leakage_uw / row.uniform_leakage_uw):.1f}%")
        lines.append(
            f"{row.design:<15}{row.num_dies:>6}{row.num_regions:>5}"
            f"{corr:>9}{row.yield_before * 100:>6.0f}%"
            f"{row.uniform_yield * 100:>8.0f}%"
            f"{row.spatial_yield * 100:>8.0f}%"
            f"{row.uniform_leakage_uw:>11.3f}{row.spatial_leakage_uw:>11.3f}"
            f"{saving:>8}")
    lines.append("")
    lines.append("uniform = single central replica sensor + "
                 "single-voltage FBB; spatial = per-region sensing + "
                 "clustered allocation; leakage averaged over dies "
                 "both arms recovered.")
    return "\n".join(lines)


def format_lifetime(rows: Sequence[LifetimeRow]) -> str:
    """Render lifetime aging study rows plus their yield-vs-age curves.

    One summary line per (design, cadence, mode) study, followed by the
    epoch-by-epoch yield trajectory — the curve that decays between
    calibration visits and recovers at each one.
    """
    header = (f"{'Benchmark':<15}{'Dies':>6}{'Ep':>4}{'Cad':>5}"
              f"{'Mode':>9}{'Recal':>7}{'init':>7}{'final':>7}"
              f"{'min':>7}{'leak uW':>9}{'t_tune s':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.design:<15}{row.num_dies:>6}{row.epochs:>4}"
            f"{row.cadence:>5}{row.mode:>9}{row.recalibrations:>7}"
            f"{row.initial_yield * 100:>6.0f}%"
            f"{row.final_yield * 100:>6.0f}%{row.min_yield * 100:>6.0f}%"
            f"{row.mean_leakage_uw:>9.3f}{row.tune_runtime_s:>9.3f}")
    lines.append("")
    for row in rows:
        curve = " ".join(f"{y * 100:.0f}" for y in row.yield_curve)
        lines.append(f"{row.design} yield-vs-age (% per epoch of "
                     f"{row.epoch_years:g}y): {curve}")
    lines.append("")
    lines.append("init/final/min = epoch timing yield within the beta "
                 "budget; Recal = calibration visits over the lifetime.")
    return "\n".join(lines)


def format_cache_stats(stats: dict) -> str:
    """Render :meth:`ArtifactCache.stats` hit/miss counters.

    ``stats`` is the dict returned by
    :meth:`repro.flow.cache.ArtifactCache.stats`: total hits/misses
    plus a per-artifact-kind breakdown.  When the tiered split
    (``memory_hits``/``disk_hits``) is present — warm vs lukewarm, the
    serving layer's distinction — it is shown alongside the aggregate.
    """
    total = stats.get("hits", 0) + stats.get("misses", 0)
    head = (f"artifact cache: {stats.get('hits', 0)} hits / "
            f"{stats.get('misses', 0)} misses "
            f"({stats.get('entries', 0)} entries)")
    if "memory_hits" in stats or "disk_hits" in stats:
        head += (f" [memory {stats.get('memory_hits', 0)} / "
                 f"disk {stats.get('disk_hits', 0)}]")
    lines = [head]
    for kind, counts in sorted(stats.get("by_kind", {}).items()):
        line = (f"  {kind:<12} {counts['hits']:>6} hits "
                f"{counts['misses']:>6} misses")
        if "memory_hits" in counts or "disk_hits" in counts:
            line += (f"  [memory {counts.get('memory_hits', 0)} / "
                     f"disk {counts.get('disk_hits', 0)}]")
        lines.append(line)
    if total == 0:
        lines.append("  (no lookups recorded)")
    return "\n".join(lines)


def format_cache_inventory(inventory: dict) -> str:
    """Render :meth:`ArtifactCache.disk_inventory` — the per-kind disk
    census (entry counts by layout, total bytes) behind
    ``repro-fbb cache stats``."""
    if not inventory:
        return "disk tier: empty"
    total_entries = sum(row["entries"] for row in inventory.values())
    total_bytes = sum(row["bytes"] for row in inventory.values())
    lines = [f"disk tier: {total_entries} artifact(s), "
             f"{total_bytes / 1024:.1f} KiB"]
    for kind, row in sorted(inventory.items()):
        lines.append(f"  {kind:<12} {row['entries']:>6} entries "
                     f"({row['sharded']} sharded / {row['legacy']} legacy)"
                     f" {row['bytes'] / 1024:>9.1f} KiB")
    return "\n".join(lines)


def format_serve_stats(stats: dict) -> str:
    """Render the serving layer's ``/stats`` snapshot (per-endpoint
    request/hit/miss/latency counters, single-flight state and the
    tiered artifact-cache table) for terminal display."""
    lines = []
    for name, counts in sorted(stats.get("endpoints", {}).items()):
        latency = counts.get("latency", {})
        lines.append(
            f"endpoint {name}: {counts.get('requests', 0)} requests "
            f"({counts.get('errors', 0)} errors, "
            f"{counts.get('in_flight', 0)} in flight), "
            f"{counts.get('cache_hits', 0)} hits / "
            f"{counts.get('cache_misses', 0)} misses / "
            f"{counts.get('coalesced', 0)} coalesced, "
            f"mean latency {latency.get('mean_s', 0.0):.4f} s")
    flight = stats.get("single_flight", {})
    if flight:
        lines.append(f"single-flight: {flight.get('leaders', 0)} leaders, "
                     f"{flight.get('coalesced', 0)} coalesced, "
                     f"{flight.get('in_flight', 0)} in flight")
    if "cache" in stats:
        lines.append(format_cache_stats(stats["cache"]))
    return "\n".join(lines) if lines else "no serve activity recorded"


def format_spec_failures(failures: Sequence, total: int) -> str:
    """Render captured per-spec sweep failures (the CLI's stderr tail).

    ``failures`` are :class:`repro.flow.parallel.SpecFailure` records;
    ``total`` is the whole batch size, so the operator sees at a glance
    how much of the sweep survived.
    """
    lines = [f"{len(failures)} of {total} sweep spec(s) failed:"]
    for failure in failures:
        design = (failure.spec.get("design", "?")
                  if isinstance(failure.spec, dict) else "?")
        lines.append(f"  {failure.error} [{design}]: {failure.message}")
    return "\n".join(lines)


def format_sweep(design: str, beta: float,
                 budgets: Sequence[int],
                 savings: Sequence[float],
                 clusters: Sequence[int] | None = None,
                 domains: Sequence[int] | None = None) -> str:
    """Render the cluster-count sweep (paper Sec. 5, c5315 C=2..11).

    ``clusters`` and ``domains`` (optional, aligned with ``budgets``)
    separate the two counts the old report conflated: *voltage
    clusters* is how many distinct bias values an assignment uses,
    *physical domains* is how many contiguous same-voltage row wells it
    creates (= well boundaries + 1).  With bias-domain grouping the
    two genuinely differ — a banded grouping caps the domain count no
    matter how many voltages the budget admits.
    """
    header = f"cluster-count sweep: {design}, beta={beta:.0%}"
    columns = f"{'C':>4} {'savings %':>10} {'marginal':>10}"
    if clusters is not None:
        columns += f" {'voltages':>9}"
    if domains is not None:
        columns += f" {'domains':>8}"
    lines = [header, columns]
    previous = None
    for index, (budget, value) in enumerate(zip(budgets, savings)):
        marginal = "" if previous is None else f"{value - previous:+10.2f}"
        line = f"{budget:>4} {value:>10.2f} {marginal:>10}"
        if clusters is not None:
            line += f" {clusters[index]:>9}"
        if domains is not None:
            line += f" {domains[index]:>8}"
        lines.append(line)
        previous = value
    if clusters is not None and domains is not None:
        lines.append("")
        lines.append("voltages = distinct bias values used; domains = "
                     "contiguous same-voltage row wells (boundaries + 1).")
    return "\n".join(lines)


def format_grouping_tradeoff(design: str, beta: float,
                             rows: Sequence[dict]) -> str:
    """Render the granularity trade-off sweep of ``bench_grouping.py``.

    Each row is one grouping (``spec``/``groups``/``savings_pct``/
    ``leakage_uw``/``boundaries``/``domains``/``solve_s`` keys): coarser
    bias domains mean fewer well boundaries but less leakage recovered —
    the physical-cost-vs-granularity axis the paper's Sec. 3.3 argues
    qualitatively.
    """
    header = f"grouping granularity sweep: {design}, beta={beta:.0%}"
    lines = [header,
             f"{'grouping':<16}{'groups':>7} {'savings %':>10} "
             f"{'leak uW':>9} {'bnd':>5} {'domains':>8} {'solve s':>9}"]
    for row in rows:
        lines.append(
            f"{row['spec']:<16}{row['groups']:>7} "
            f"{row['savings_pct']:>10.2f} {row['leakage_uw']:>9.3f} "
            f"{row['boundaries']:>5} {row['domains']:>8} "
            f"{row['solve_s']:>9.4f}")
    lines.append("")
    lines.append("bnd = well-separation boundaries of the expanded "
                 "assignment; domains = contiguous same-voltage wells.")
    return "\n".join(lines)


def format_placer_sweep(design: str, beta: float,
                        rows: Sequence[dict]) -> str:
    """Render the placer quality comparison of ``repro-fbb place`` and
    ``bench_placer.py``.

    Each row is one placer run (``placer``/``hpwl_um``/``boundaries``/
    ``leakage_uw``/``savings_pct``/``place_s`` keys): the knob-sweep
    Pareto view of the annealer — wirelength and well fragmentation
    versus the leakage the allocation flow then recovers (the paper's
    Sec. 3.3 area-cost axis made tunable).
    """
    header = f"placer sweep: {design}, beta={beta:.0%}"
    lines = [header,
             f"{'placer':<22}{'hpwl um':>12} {'bnd':>5} "
             f"{'leak uW':>9} {'savings %':>10} {'place s':>9}"]
    for row in rows:
        lines.append(
            f"{row['placer']:<22}{row['hpwl_um']:>12.1f} "
            f"{row['boundaries']:>5} {row['leakage_uw']:>9.3f} "
            f"{row['savings_pct']:>10.2f} {row['place_s']:>9.3f}")
    lines.append("")
    lines.append("bnd = well-separation boundaries of the allocated "
                 "assignment; leakage/savings via the same solver on "
                 "each placement.")
    return "\n".join(lines)
