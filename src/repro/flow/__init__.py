"""End-to-end flow orchestration and experiment harness (the paper's
Sec. 5 evaluation flow: Table 1, populations, spatial study)."""

from repro.flow.cache import (ArtifactCache, canonical_json, content_hash,
                              default_cache, set_default_cache)
from repro.flow.design_flow import (FlowResult, characterized_library,
                                    implement)
from repro.flow.experiment import (ExperimentConfig, PopulationConfig,
                                   PopulationRow, SpatialConfig, SpatialRow,
                                   Table1Row, run_design_beta,
                                   run_population, run_population_study,
                                   run_spatial, run_table1)
from repro.flow.parallel import (SpecFailure, execute_specs,
                                 resolve_workers, stable_payload,
                                 tune_dies_parallel,
                                 tune_dies_spatial_parallel)
from repro.flow.reports import (format_cache_stats,
                                format_grouping_tradeoff,
                                format_population, format_spatial,
                                format_spec_failures, format_sweep,
                                format_table1)

__all__ = [
    "ArtifactCache",
    "ExperimentConfig",
    "FlowResult",
    "PopulationConfig",
    "PopulationRow",
    "SpatialConfig",
    "SpatialRow",
    "SpecFailure",
    "Table1Row",
    "canonical_json",
    "characterized_library",
    "content_hash",
    "default_cache",
    "execute_specs",
    "format_cache_stats",
    "format_grouping_tradeoff",
    "format_population",
    "format_spatial",
    "format_spec_failures",
    "format_sweep",
    "format_table1",
    "implement",
    "resolve_workers",
    "run_design_beta",
    "run_population",
    "run_population_study",
    "run_spatial",
    "run_table1",
    "set_default_cache",
    "stable_payload",
    "tune_dies_parallel",
    "tune_dies_spatial_parallel",
]
