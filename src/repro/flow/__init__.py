"""End-to-end flow orchestration and experiment harness."""

from repro.flow.design_flow import (FlowResult, characterized_library,
                                    implement)
from repro.flow.experiment import (ExperimentConfig, PopulationConfig,
                                   PopulationRow, Table1Row,
                                   run_design_beta, run_population,
                                   run_population_study, run_table1)
from repro.flow.reports import format_population, format_sweep, format_table1

__all__ = [
    "ExperimentConfig",
    "FlowResult",
    "PopulationConfig",
    "PopulationRow",
    "Table1Row",
    "characterized_library",
    "format_population",
    "format_sweep",
    "format_table1",
    "implement",
    "run_design_beta",
    "run_population",
    "run_population_study",
    "run_table1",
]
