"""End-to-end flow orchestration and experiment harness."""

from repro.flow.design_flow import (FlowResult, characterized_library,
                                    implement)
from repro.flow.experiment import (ExperimentConfig, Table1Row,
                                   run_design_beta, run_table1)
from repro.flow.reports import format_sweep, format_table1

__all__ = [
    "ExperimentConfig",
    "FlowResult",
    "Table1Row",
    "characterized_library",
    "format_sweep",
    "format_table1",
    "implement",
    "run_design_beta",
    "run_table1",
]
