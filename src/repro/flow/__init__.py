"""End-to-end flow orchestration and experiment harness."""

from repro.flow.cache import (ArtifactCache, canonical_json, content_hash,
                              default_cache, set_default_cache)
from repro.flow.design_flow import (FlowResult, characterized_library,
                                    implement)
from repro.flow.experiment import (ExperimentConfig, PopulationConfig,
                                   PopulationRow, Table1Row,
                                   run_design_beta, run_population,
                                   run_population_study, run_table1)
from repro.flow.parallel import (SpecFailure, execute_specs,
                                 resolve_workers, stable_payload,
                                 tune_dies_parallel)
from repro.flow.reports import (format_cache_stats, format_population,
                                format_spec_failures, format_sweep,
                                format_table1)

__all__ = [
    "ArtifactCache",
    "ExperimentConfig",
    "FlowResult",
    "PopulationConfig",
    "PopulationRow",
    "SpecFailure",
    "Table1Row",
    "canonical_json",
    "characterized_library",
    "content_hash",
    "default_cache",
    "execute_specs",
    "format_cache_stats",
    "format_population",
    "format_spec_failures",
    "format_sweep",
    "format_table1",
    "implement",
    "resolve_workers",
    "run_design_beta",
    "run_population",
    "run_population_study",
    "run_table1",
    "set_default_cache",
    "stable_payload",
    "tune_dies_parallel",
]
