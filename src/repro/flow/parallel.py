"""Process-pool execution engine for sweeps and population tuning
(scales the paper's Sec. 5 experiments across cores).

Everything above the batched STA used to be a serial Python loop: a
sweep executed its RunSpecs one at a time and ``tune_population``
calibrated dies one at a time, so a 10k-die study used one core.  Both
workloads are embarrassingly parallel — every spec is a frozen,
JSON-serializable, content-hashed value and every die's calibration is
independent of every other die's — so this module fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* :func:`execute_specs` is the engine behind
  ``repro.api.run_many(specs, workers=N)``.  The parent process resolves
  cache hits (memory + disk tier) and deduplicates the batch; only
  unique misses ship to workers, as canonical spec JSON.  Each worker
  executes with a process-local :class:`ArtifactCache` that shares the
  parent's disk tier (safe because disk writes are atomic, see
  ``flow/cache.py``), and returns a pure-JSON payload that the parent
  merges back into its own cache.
* :func:`tune_dies_parallel` shards a population's out-of-budget dies
  into per-worker chunks; each worker rebuilds the tuning controller
  once and runs the full sense/allocate/apply/verify loop per die.
  Chunks are contiguous, so concatenating the parts restores die order
  and the reassembled records are bit-identical to the serial path.

The determinism contract: ``workers=1`` is the reference path, and for
any ``workers > 1`` the merged results must equal it exactly (modulo
wall-clock runtime fields).  ``RunSpec.workers`` is an execution knob,
not an input to the experiment, so it is excluded from the spec's
content address — a 4-worker sweep hits the artifacts a serial sweep
produced and vice versa.
"""

from __future__ import annotations

import copy
import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SpecError
from repro.flow.cache import ArtifactCache, canonical_json


def resolve_workers(workers: int | None,
                    num_tasks: int | None = None) -> int:
    """Validate a worker count and clamp it to the available tasks."""
    if workers is None:
        workers = 1
    if workers < 1:
        raise SpecError(f"workers must be >= 1, got {workers}")
    if num_tasks is not None:
        workers = min(workers, max(int(num_tasks), 1))
    return workers


#: payload keys ending in this suffix are wall-clock diagnostics
RUNTIME_KEY_SUFFIX = "runtime_s"


def stable_payload(payload: dict) -> dict:
    """A payload's deterministic view: wall-clock fields dropped.

    RunResult payloads are pure functions of their spec *except* for
    the ``*runtime_s`` timing diagnostics, which differ between any two
    executions (serial re-runs included).  The serial/parallel
    equivalence contract — and the tests and benchmarks that enforce
    it — is defined on this view.
    """
    return {key: value for key, value in payload.items()
            if not key.endswith(RUNTIME_KEY_SUFFIX)}


def chunked(items: Sequence[Any], num_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, non-empty
    chunks whose concatenation restores the input order."""
    if num_chunks < 1:
        raise SpecError(f"num_chunks must be >= 1, got {num_chunks}")
    count = min(num_chunks, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start:start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class SpecFailure:
    """One spec's captured failure in an error-tolerant batch.

    Emitted (as a JSONL line alongside the RunResult lines) by
    ``repro-fbb sweep`` so one malformed spec no longer aborts the whole
    batch; distinguishable from a result because it carries ``error``
    instead of ``payload``.
    """

    spec: Any
    """The offending spec material (raw JSON entry or RunSpec dict)."""
    error: str
    """Exception class name."""
    message: str

    @classmethod
    def from_exception(cls, spec: Any, exc: BaseException) -> "SpecFailure":
        return cls(spec=spec, error=type(exc).__name__, message=str(exc))

    def to_dict(self) -> dict:
        try:
            spec = json.loads(canonical_json(self.spec))
        except Exception:
            # The spec material itself may be what failed to serialize
            # (e.g. a set inside tech overrides); the error record must
            # still be emittable.
            spec = repr(self.spec)
        return {"schema_version": 1, "error": self.error,
                "message": self.message, "spec": spec}

    def to_json(self) -> str:
        return canonical_json(self.to_dict())


# -- spec batches (repro.api.run_many's parallel engine) -------------------

#: per-process caches keyed on cache_dir, so every task a pool worker
#: executes shares one memory tier (and disk tier, when configured)
_WORKER_CACHES: dict[str | None, ArtifactCache] = {}


def _worker_cache(cache_dir: str | None) -> ArtifactCache:
    """The executing process's cache for a given disk tier.

    Created once per (process, cache_dir) and reused across tasks:
    without this, a worker handling several specs of one design would
    re-run characterization and implementation per spec even though the
    serial path memoizes them — making parallel slower than serial
    whenever no disk tier is configured.
    """
    if cache_dir not in _WORKER_CACHES:
        _WORKER_CACHES[cache_dir] = ArtifactCache(cache_dir=cache_dir)
    return _WORKER_CACHES[cache_dir]


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-kind counter growth between two ``ArtifactCache.stats()``
    snapshots (worker caches persist across tasks, so only the delta
    belongs to the current task)."""
    delta = {}
    for kind, counts in after.items():
        prior = before.get(kind, {})
        hits = counts["hits"] - prior.get("hits", 0)
        misses = counts["misses"] - prior.get("misses", 0)
        if hits or misses:
            delta[kind] = {"hits": hits, "misses": misses}
    return delta


def _worker_run_spec(spec_json: str,
                     cache_dir: str | None) -> tuple[dict, dict]:
    """Execute one spec in a pool worker.

    Returns ``(payload, stats_delta)``: the pure-JSON payload plus the
    worker cache's per-kind hit/miss growth for this task, which the
    parent folds into its own counters so a parallel sweep's stats
    report shows the same clib/flow activity a serial run would.  The
    worker's process-local cache sits on the parent's disk tier (when
    one is configured) so characterized libraries and implemented flows
    persist across the batch.  ``spec.workers`` is forced to 1 — a
    worker never opens a nested pool.
    """
    import dataclasses

    from repro import api
    spec = api.RunSpec.from_json(spec_json)
    if spec.workers != 1:
        spec = dataclasses.replace(spec, workers=1)
    cache = _worker_cache(cache_dir)
    before = cache.stats()["by_kind"]
    payload = api.execute_spec(spec, cache=cache)
    return payload, _stats_delta(before, cache.stats()["by_kind"])


def execute_specs(specs: Sequence[Any],
                  cache: ArtifactCache,
                  workers: int = 1,
                  use_cache: bool = True,
                  capture_errors: bool = False) -> list[Any]:
    """Execute a batch of RunSpecs, optionally over a process pool.

    Returns results in spec order.  With ``capture_errors=True`` a
    failing spec yields a :class:`SpecFailure` in its slot and the rest
    of the batch still runs; otherwise the first failure (in spec
    order) is raised.  ``workers=1`` is the serial reference path —
    parallel payloads are identical because every spec is a pure
    function of its content.
    """
    from repro import api
    workers = resolve_workers(workers, len(specs))
    results: list[Any] = [None] * len(specs)

    if workers == 1:
        for index, spec in enumerate(specs):
            try:
                results[index] = api.run(spec, cache=cache,
                                         use_cache=use_cache)
            except Exception as exc:
                if not capture_errors:
                    raise
                results[index] = SpecFailure.from_exception(
                    spec.to_dict(), exc)
        return results

    # Parent-side cache pass: resolve hits inline, dedupe the misses so
    # each unique spec executes exactly once.  Any per-spec failure —
    # hashing, serialization or worker execution — lands in `errors`
    # keyed by spec index, so the raise-vs-capture decision is taken
    # once at the end, deterministically on the lowest index (the same
    # exception the serial path would have raised first).
    pending: dict[str, list[int]] = {}
    errors: dict[int, Exception] = {}
    for index, spec in enumerate(specs):
        try:
            if not use_cache:
                pending[f"force-{index}"] = [index]
                continue
            key = spec.spec_hash()
            if key in pending:
                pending[key].append(index)
                continue
            found, payload = cache.lookup("run", key)
        except Exception as exc:
            errors[index] = exc
            continue
        if found:
            results[index] = api.RunResult(
                spec=spec, payload=copy.deepcopy(payload), cache_hit=True)
        else:
            pending[key] = [index]

    cache_dir = (str(cache.cache_dir)
                 if cache.cache_dir is not None else None)
    futures: dict = {}
    if pending:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))) as pool:
            for indices in pending.values():
                try:
                    spec_json = specs[indices[0]].to_json()
                except Exception as exc:
                    for index in indices:
                        errors[index] = exc
                    continue
                futures[pool.submit(_worker_run_spec, spec_json,
                                    cache_dir)] = indices
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    indices = futures[future]
                    first = indices[0]
                    try:
                        payload, stats_delta = future.result()
                    except Exception as exc:
                        for index in indices:
                            errors[index] = exc
                        continue
                    cache.merge_counts(stats_delta)
                    cache.put("run", specs[first].cache_material(),
                              copy.deepcopy(payload))
                    results[first] = api.RunResult(
                        spec=specs[first], payload=payload, cache_hit=False)
                    for index in indices[1:]:
                        # Mirror the serial contract: a duplicate spec is
                        # a run-cache hit (counted as one).
                        found, dup = cache.lookup(
                            "run", specs[index].spec_hash())
                        results[index] = api.RunResult(
                            spec=specs[index],
                            payload=copy.deepcopy(
                                dup if found else payload),
                            cache_hit=True)
    if errors:
        if not capture_errors:
            raise errors[min(errors)]
        for index, exc in errors.items():
            results[index] = SpecFailure.from_exception(
                specs[index].to_dict(), exc)
    return results


# -- population tuning (tune_population's parallel engine) -----------------

def _worker_tune_chunk(args: tuple) -> list:
    """Calibrate one contiguous chunk of out-of-budget dies.

    Rebuilds the tuning controller once per chunk from the shipped
    (placed, clib, knobs) material — controller construction is cheap
    next to per-die calibration, and rebuilding avoids pickling live
    analyzer/monitor state.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, beta_budget, dies) = args
    from repro.tuning.controller import TuningController
    from repro.tuning.population import calibrate_die
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping)
    unbiased = controller.clib_leakage_unbiased()
    return [calibrate_die(controller, index, beta, beta_budget, unbiased)
            for index, beta in dies]


def tune_dies_parallel(controller: Any,
                       dies: Sequence[tuple[int, float]],
                       beta_budget: float,
                       workers: int) -> list:
    """Shard ``(index, beta)`` dies over a pool; preserves input order.

    Each worker runs the full closed calibration loop per die; since
    every die's outcome is a pure function of its beta, the
    concatenated records are bit-identical to the serial loop's.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping, beta_budget, chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_chunk, args))
    return [record for part in parts for record in part]


def _worker_tune_batched_chunk(args: tuple) -> list:
    """Batch-calibrate one contiguous chunk of out-of-budget dies.

    Mirrors :func:`_worker_tune_chunk` with the population-at-a-time
    engine inside: the controller (and its compiled batched analyzer)
    is rebuilt once per chunk, and every die's record is still a pure
    function of its ``(beta, beta_budget)``, so concatenated chunks
    equal the serial batched sweep — which itself equals the per-die
    loop — bit for bit.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, beta_budget, dies) = args
    from repro.tuning.batched import calibrate_dies_batched
    from repro.tuning.controller import TuningController
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping)
    unbiased = controller.clib_leakage_unbiased()
    return calibrate_dies_batched(controller, dies, beta_budget, unbiased)


def tune_dies_batched_parallel(controller: Any,
                               dies: Sequence[tuple[int, float]],
                               beta_budget: float,
                               workers: int) -> list:
    """Shard ``(index, beta)`` dies over a pool of batched engines.

    The batched twin of :func:`tune_dies_parallel`: same contiguous
    chunking, same order-restoring concatenation, each worker running
    :func:`repro.tuning.batched.calibrate_dies_batched` over its chunk.
    Chunk boundaries cannot change any record (per-die purity), so
    ``workers=N`` stays bit-identical to ``workers=1``.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping, beta_budget, chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_batched_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_batched_chunk, args))
    return [record for part in parts for record in part]


def _worker_tune_spatial_chunk(args: tuple) -> list:
    """Spatially calibrate one contiguous chunk of out-of-budget dies.

    Mirrors :func:`_worker_tune_chunk`: the controller (and its sensor
    grid) is rebuilt once per chunk from the shipped material; every
    die's record is a pure function of its sampled field, so the
    concatenated chunks equal the serial sweep bit for bit.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, sense_guard, beta_budget, num_regions, replica_sensor,
     gate_names, dies) = args
    from repro.tuning.controller import TuningController
    from repro.tuning.population import calibrate_die_spatial
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping, sense_guard=sense_guard)
    unbiased = controller.clib_leakage_unbiased()
    grid = (controller.replica_sensor_grid(num_regions) if replica_sensor
            else controller.sensor_grid(num_regions))
    return [calibrate_die_spatial(controller, index, beta, scale_row,
                                  gate_names, beta_budget, unbiased, grid)
            for index, beta, scale_row in dies]


def tune_dies_spatial_parallel(controller: Any,
                               dies: Sequence[tuple],
                               gate_names: Sequence[str],
                               beta_budget: float,
                               workers: int,
                               num_regions: int,
                               replica_sensor: bool = False) -> list:
    """Shard ``(index, beta, scale_row)`` dies over a pool, in order.

    The spatial twin of :func:`tune_dies_parallel`: each worker rebuilds
    the tuning controller and its per-region sensor grid once, then
    runs the field-driven calibration loop per die.  Contiguous chunks
    concatenate back in die order, so the records are bit-identical to
    the serial ``workers=1`` path.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping,
             controller.sense_guard, beta_budget,
             num_regions, replica_sensor, tuple(gate_names), chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_spatial_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_spatial_chunk, args))
    return [record for part in parts for record in part]
