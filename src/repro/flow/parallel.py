"""Process-pool execution engine for sweeps and population tuning
(scales the paper's Sec. 5 experiments across cores).

Everything above the batched STA used to be a serial Python loop: a
sweep executed its RunSpecs one at a time and ``tune_population``
calibrated dies one at a time, so a 10k-die study used one core.  Both
workloads are embarrassingly parallel — every spec is a frozen,
JSON-serializable, content-hashed value and every die's calibration is
independent of every other die's — so this module fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* :func:`execute_specs` is the batch entry behind
  ``repro.api.run_many(specs, workers=N)``.  The orchestration it used
  to own — resolve cache hits (memory + disk tier), dedupe by
  ``spec_hash``, dispatch unique misses, merge payloads and counter
  deltas back — now lives in
  :class:`repro.flow.executor.ExecutionEngine`, shared with the
  serving layer; this function remains as the thin batch adapter
  (inline backend for one worker, persistent process pool otherwise).
* :func:`tune_dies_parallel` shards a population's out-of-budget dies
  into per-worker chunks; each worker rebuilds the tuning controller
  once and runs the full sense/allocate/apply/verify loop per die.
  Chunks are contiguous, so concatenating the parts restores die order
  and the reassembled records are bit-identical to the serial path.

The determinism contract: ``workers=1`` is the reference path, and for
any ``workers > 1`` the merged results must equal it exactly (modulo
wall-clock runtime fields).  ``RunSpec.workers`` is an execution knob,
not an input to the experiment, so it is excluded from the spec's
content address — a 4-worker sweep hits the artifacts a serial sweep
produced and vice versa.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SpecError
from repro.flow.cache import ArtifactCache, canonical_json


def resolve_workers(workers: int | None,
                    num_tasks: int | None = None) -> int:
    """Validate a worker count and clamp it to the available tasks."""
    if workers is None:
        workers = 1
    if workers < 1:
        raise SpecError(f"workers must be >= 1, got {workers}")
    if num_tasks is not None:
        workers = min(workers, max(int(num_tasks), 1))
    return workers


#: payload keys ending in this suffix are wall-clock diagnostics
RUNTIME_KEY_SUFFIX = "runtime_s"


def stable_payload(payload: dict) -> dict:
    """A payload's deterministic view: wall-clock fields dropped.

    RunResult payloads are pure functions of their spec *except* for
    the ``*runtime_s`` timing diagnostics, which differ between any two
    executions (serial re-runs included).  The serial/parallel
    equivalence contract — and the tests and benchmarks that enforce
    it — is defined on this view.
    """
    return {key: value for key, value in payload.items()
            if not key.endswith(RUNTIME_KEY_SUFFIX)}


def chunked(items: Sequence[Any], num_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, non-empty
    chunks whose concatenation restores the input order."""
    if num_chunks < 1:
        raise SpecError(f"num_chunks must be >= 1, got {num_chunks}")
    count = min(num_chunks, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start:start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class SpecFailure:
    """One spec's captured failure in an error-tolerant batch.

    Emitted (as a JSONL line alongside the RunResult lines) by
    ``repro-fbb sweep`` so one malformed spec no longer aborts the whole
    batch; distinguishable from a result because it carries ``error``
    instead of ``payload``.
    """

    spec: Any
    """The offending spec material (raw JSON entry or RunSpec dict)."""
    error: str
    """Exception class name."""
    message: str

    @classmethod
    def from_exception(cls, spec: Any, exc: BaseException) -> "SpecFailure":
        return cls(spec=spec, error=type(exc).__name__, message=str(exc))

    def to_dict(self) -> dict:
        try:
            spec = json.loads(canonical_json(self.spec))
        except Exception:
            # The spec material itself may be what failed to serialize
            # (e.g. a set inside tech overrides); the error record must
            # still be emittable.
            spec = repr(self.spec)
        return {"schema_version": 1, "error": self.error,
                "message": self.message, "spec": spec}

    def to_json(self) -> str:
        return canonical_json(self.to_dict())


# -- spec batches (repro.api.run_many's batch adapter) ---------------------

def execute_specs(specs: Sequence[Any],
                  cache: ArtifactCache,
                  workers: int = 1,
                  use_cache: bool = True,
                  capture_errors: bool = False) -> list[Any]:
    """Execute a batch of RunSpecs, optionally over a process pool.

    Returns results in spec order.  With ``capture_errors=True`` a
    failing spec yields a :class:`SpecFailure` in its slot and the rest
    of the batch still runs; otherwise the first failure (in spec
    order) is raised.  ``workers=1`` is the serial reference path —
    parallel payloads are identical because every spec is a pure
    function of its content.

    This is a thin batch adapter over
    :class:`repro.flow.executor.ExecutionEngine` (where the shared
    resolve → dedupe → dispatch → merge sequence lives): one worker
    selects the inline backend, more select a warm process pool that
    is torn down when the batch completes.
    """
    from repro.flow.executor import ExecutionEngine
    with ExecutionEngine.for_batch(cache, workers,
                                   num_tasks=len(specs)) as engine:
        return engine.execute(list(specs), use_cache=use_cache,
                              capture_errors=capture_errors)


# -- population tuning (tune_population's parallel engine) -----------------

def _worker_tune_chunk(args: tuple) -> list:
    """Calibrate one contiguous chunk of out-of-budget dies.

    Rebuilds the tuning controller once per chunk from the shipped
    (placed, clib, knobs) material — controller construction is cheap
    next to per-die calibration, and rebuilding avoids pickling live
    analyzer/monitor state.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, beta_budget, dies) = args
    from repro.tuning.controller import TuningController
    from repro.tuning.population import calibrate_die
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping)
    unbiased = controller.clib_leakage_unbiased()
    return [calibrate_die(controller, index, beta, beta_budget, unbiased)
            for index, beta in dies]


def tune_dies_parallel(controller: Any,
                       dies: Sequence[tuple[int, float]],
                       beta_budget: float,
                       workers: int) -> list:
    """Shard ``(index, beta)`` dies over a pool; preserves input order.

    Each worker runs the full closed calibration loop per die; since
    every die's outcome is a pure function of its beta, the
    concatenated records are bit-identical to the serial loop's.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping, beta_budget, chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_chunk, args))
    return [record for part in parts for record in part]


def _worker_tune_batched_chunk(args: tuple) -> list:
    """Batch-calibrate one contiguous chunk of out-of-budget dies.

    Mirrors :func:`_worker_tune_chunk` with the population-at-a-time
    engine inside: the controller (and its compiled batched analyzer)
    is rebuilt once per chunk, and every die's record is still a pure
    function of its ``(beta, beta_budget)``, so concatenated chunks
    equal the serial batched sweep — which itself equals the per-die
    loop — bit for bit.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, beta_budget, dies) = args
    from repro.tuning.batched import calibrate_dies_batched
    from repro.tuning.controller import TuningController
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping)
    unbiased = controller.clib_leakage_unbiased()
    return calibrate_dies_batched(controller, dies, beta_budget, unbiased)


def tune_dies_batched_parallel(controller: Any,
                               dies: Sequence[tuple[int, float]],
                               beta_budget: float,
                               workers: int) -> list:
    """Shard ``(index, beta)`` dies over a pool of batched engines.

    The batched twin of :func:`tune_dies_parallel`: same contiguous
    chunking, same order-restoring concatenation, each worker running
    :func:`repro.tuning.batched.calibrate_dies_batched` over its chunk.
    Chunk boundaries cannot change any record (per-die purity), so
    ``workers=N`` stays bit-identical to ``workers=1``.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping, beta_budget, chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_batched_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_batched_chunk, args))
    return [record for part in parts for record in part]


def _worker_tune_spatial_chunk(args: tuple) -> list:
    """Spatially calibrate one contiguous chunk of out-of-budget dies.

    Mirrors :func:`_worker_tune_chunk`: the controller (and its sensor
    grid) is rebuilt once per chunk from the shipped material; every
    die's record is a pure function of its sampled field, so the
    concatenated chunks equal the serial sweep bit for bit.
    """
    (placed, clib, max_clusters, max_iterations, beta_step, method,
     grouping, sense_guard, beta_budget, num_regions, replica_sensor,
     gate_names, dies) = args
    from repro.tuning.controller import TuningController
    from repro.tuning.population import calibrate_die_spatial
    controller = TuningController(
        placed, clib, max_clusters=max_clusters,
        max_iterations=max_iterations, beta_step=beta_step, method=method,
        grouping=grouping, sense_guard=sense_guard)
    unbiased = controller.clib_leakage_unbiased()
    grid = (controller.replica_sensor_grid(num_regions) if replica_sensor
            else controller.sensor_grid(num_regions))
    return [calibrate_die_spatial(controller, index, beta, scale_row,
                                  gate_names, beta_budget, unbiased, grid)
            for index, beta, scale_row in dies]


def tune_dies_spatial_parallel(controller: Any,
                               dies: Sequence[tuple],
                               gate_names: Sequence[str],
                               beta_budget: float,
                               workers: int,
                               num_regions: int,
                               replica_sensor: bool = False) -> list:
    """Shard ``(index, beta, scale_row)`` dies over a pool, in order.

    The spatial twin of :func:`tune_dies_parallel`: each worker rebuilds
    the tuning controller and its per-region sensor grid once, then
    runs the field-driven calibration loop per die.  Contiguous chunks
    concatenate back in die order, so the records are bit-identical to
    the serial ``workers=1`` path.
    """
    workers = resolve_workers(workers, len(dies))
    if not dies:
        return []
    chunks = chunked(list(dies), workers)
    args = [(controller.placed, controller.clib, controller.max_clusters,
             controller.max_iterations, controller.beta_step,
             controller.method, controller.grouping,
             controller.sense_guard, beta_budget,
             num_regions, replica_sensor, tuple(gate_names), chunk)
            for chunk in chunks]
    if len(chunks) == 1:
        parts = [_worker_tune_spatial_chunk(args[0])]
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(pool.map(_worker_tune_spatial_chunk, args))
    return [record for part in parts for record in part]
