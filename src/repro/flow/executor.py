"""Engine-agnostic execution core: resolve → dedupe → dispatch → merge.

The paper's clustered-FBB allocation is consumed two ways: as batch
sweeps over Sec. 5 experiment grids (``repro.api.run_many``) and — the
deployment view — as an always-on decision service answering "what
bias settings for this die right now" (``repro.serve``).  Both need
the same orchestration sequence over frozen RunSpecs: resolve cache
hits (memory + disk tier), deduplicate identical specs by
``spec_hash``, dispatch the unique misses to some executor, and merge
payloads plus worker cache-counter deltas back.  This module owns that
sequence once, as :class:`ExecutionEngine`, with the *where* pluggable
behind a backend:

* :class:`InlineBackend` executes in the calling process against the
  engine's own cache — the serial reference path every equivalence
  test is defined against.
* :class:`ProcessPoolBackend` keeps a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers hold
  process-local caches (``_WORKER_CACHES``) keyed on the shared disk
  tier — characterized libraries and implemented flows stay warm
  across batches and, for a server, across requests.

The determinism contract is unchanged from the pre-refactor
``flow/parallel.execute_specs``: the inline path is the reference, and
any backend's merged results must equal it exactly (modulo wall-clock
runtime fields).  ``RunSpec.workers`` stays an execution knob excluded
from the content address, so results are shared across backends.
"""

from __future__ import annotations

import copy
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from typing import Any, Sequence

from repro.errors import SpecError
from repro.flow.cache import ArtifactCache, default_cache
from repro.flow.parallel import SpecFailure, resolve_workers

#: backend names accepted by :class:`ExecutionEngine` and the CLI
BACKEND_NAMES = ("inline", "process_pool")

#: per-process caches keyed on cache_dir, so every task a pool worker
#: executes shares one memory tier (and disk tier, when configured)
_WORKER_CACHES: dict[str | None, ArtifactCache] = {}


def _worker_cache(cache_dir: str | None) -> ArtifactCache:
    """The executing process's cache for a given disk tier.

    Created once per (process, cache_dir) and reused across tasks:
    without this, a worker handling several specs of one design would
    re-run characterization and implementation per spec even though the
    serial path memoizes them — making parallel slower than serial
    whenever no disk tier is configured.
    """
    if cache_dir not in _WORKER_CACHES:
        _WORKER_CACHES[cache_dir] = ArtifactCache(cache_dir=cache_dir)
    return _WORKER_CACHES[cache_dir]


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-kind counter growth between two ``ArtifactCache.stats()``
    snapshots (worker caches persist across tasks, so only the delta
    belongs to the current task).  Deltas carry the tiered keys
    (``memory_hits``/``disk_hits``/``misses``)."""
    delta = {}
    for kind, counts in after.items():
        prior = before.get(kind, {})
        growth = {key: counts.get(key, 0) - prior.get(key, 0)
                  for key in ("memory_hits", "disk_hits", "misses")}
        if any(growth.values()):
            delta[kind] = growth
    return delta


def _worker_run_spec(spec_json: str,
                     cache_dir: str | None) -> tuple[dict, dict]:
    """Execute one spec in a pool worker.

    Returns ``(payload, stats_delta)``: the pure-JSON payload plus the
    worker cache's per-kind hit/miss growth for this task, which the
    parent folds into its own counters so a parallel sweep's stats
    report shows the same clib/flow activity a serial run would.  The
    worker's process-local cache sits on the parent's disk tier (when
    one is configured) so characterized libraries and implemented flows
    persist across the batch.  ``spec.workers`` is forced to 1 — a
    worker never opens a nested pool.
    """
    import dataclasses

    from repro import api
    spec = api.RunSpec.from_json(spec_json)
    if spec.workers != 1:
        spec = dataclasses.replace(spec, workers=1)
    cache = _worker_cache(cache_dir)
    before = cache.stats()["by_kind"]
    payload = api.execute_spec(spec, cache=cache)
    return payload, _stats_delta(before, cache.stats()["by_kind"])


class InlineBackend:
    """Execute specs synchronously in the calling process.

    Runs ``api.execute_spec`` against the engine's own cache, so every
    characterization/flow lookup is counted directly — no delta
    merging.  This is the serial reference path of the determinism
    contract (paper Sec. 5 experiments are defined on it).
    """

    name = "inline"

    def __init__(self, cache: ArtifactCache) -> None:
        self._cache = cache
        self.workers = 1

    def submit(self, spec: Any) -> Future:
        """Execute now; return an already-resolved future of
        ``(payload, stats_delta)`` to keep the engine backend-agnostic."""
        from repro import api
        future: Future = Future()
        try:
            payload = api.execute_spec(spec, cache=self._cache)
        except Exception as exc:
            future.set_exception(exc)
        else:
            future.set_result((payload, {}))
        return future

    def close(self) -> None:
        """Nothing to release."""


class ProcessPoolBackend:
    """Persistent warm process pool.

    Workers are forked/spawned once and reused: each holds a
    process-local :class:`ArtifactCache` (``_WORKER_CACHES``) on the
    shared disk tier, so characterized libraries survive across
    batches — the warm-worker property the serving layer depends on.
    Processes spawn lazily on first submit, so an all-hits batch costs
    nothing.
    """

    name = "process_pool"

    def __init__(self, cache: ArtifactCache, workers: int) -> None:
        self.workers = resolve_workers(workers)
        self._cache_dir = (str(cache.cache_dir)
                           if cache.cache_dir is not None else None)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, spec: Any) -> Future:
        """Ship the spec (as canonical JSON) to a warm worker."""
        return self._pool.submit(_worker_run_spec, spec.to_json(),
                                 self._cache_dir)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def create_backend(name: str, cache: ArtifactCache,
                   workers: int = 1) -> Any:
    """Instantiate a backend by name (``inline`` / ``process_pool``)."""
    if name == "inline":
        return InlineBackend(cache)
    if name == "process_pool":
        return ProcessPoolBackend(cache, workers)
    raise SpecError(f"unknown execution backend {name!r}; "
                    f"expected one of {BACKEND_NAMES}")


class ExecutionEngine:
    """The shared resolve → dedupe → dispatch → merge orchestrator.

    ``run_many`` batches and the ``repro.serve`` request loop are both
    thin adapters over this class.  The engine owns one cache and one
    backend; :meth:`execute` processes a spec batch with exactly the
    pre-refactor semantics (hits resolved in the parent, unique misses
    dispatched once, duplicates mirrored as cache hits, failures
    collected by index), and :meth:`run_spec` is the single-spec path a
    server drives per request.
    """

    def __init__(self, cache: ArtifactCache | None = None,
                 backend: str | Any = "inline",
                 workers: int = 1) -> None:
        self.cache = cache if cache is not None else default_cache()
        if isinstance(backend, str):
            backend = create_backend(backend, self.cache, workers)
        self.backend = backend

    @classmethod
    def for_batch(cls, cache: ArtifactCache | None, workers: int | None,
                  num_tasks: int | None = None) -> "ExecutionEngine":
        """The batch adapter's backend choice: inline when one worker
        suffices (the serial reference path), a process pool otherwise."""
        workers = resolve_workers(workers, num_tasks)
        name = "inline" if workers == 1 else "process_pool"
        return cls(cache=cache, backend=name, workers=workers)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def describe(self) -> dict:
        """JSON-able identity for reports and the ``/stats`` endpoint."""
        return {"name": self.backend.name,
                "workers": getattr(self.backend, "workers", 1)}

    # -- execution --------------------------------------------------------

    def run_spec(self, spec: Any, use_cache: bool = True) -> Any:
        """Execute one spec: lookup, dispatch on miss, store, wrap.

        The per-request path of the serving layer; equivalent to a
        one-element :meth:`execute` batch (and to ``api.run``).
        """
        from repro import api
        if use_cache:
            found, payload = self.cache.lookup("run", spec.spec_hash())
            if found:
                return api.RunResult(spec=spec,
                                     payload=copy.deepcopy(payload),
                                     cache_hit=True)
        payload, stats_delta = self.backend.submit(spec).result()
        if stats_delta:
            self.cache.merge_counts(stats_delta)
        self.cache.put("run", spec.cache_material(),
                       copy.deepcopy(payload))
        return api.RunResult(spec=spec, payload=payload, cache_hit=False)

    def execute(self, specs: Sequence[Any], use_cache: bool = True,
                capture_errors: bool = False) -> list[Any]:
        """Execute a batch of RunSpecs through the backend.

        Returns results in spec order.  With ``capture_errors=True`` a
        failing spec yields a :class:`SpecFailure` in its slot and the
        rest of the batch still runs; otherwise the lowest-index
        failure is raised.  Results are bit-identical across backends
        because every spec is a pure function of its content.
        """
        from repro import api
        specs = list(specs)
        results: list[Any] = [None] * len(specs)

        # Resolve pass: serve hits from the engine cache, dedupe the
        # misses so each unique spec executes exactly once.  Any
        # per-spec failure — hashing, serialization or execution —
        # lands in `errors` keyed by spec index, so the
        # raise-vs-capture decision is taken once at the end,
        # deterministically on the lowest index.
        pending: dict[str, list[int]] = {}
        errors: dict[int, Exception] = {}
        for index, spec in enumerate(specs):
            try:
                if not use_cache:
                    pending[f"force-{index}"] = [index]
                    continue
                key = spec.spec_hash()
                if key in pending:
                    pending[key].append(index)
                    continue
                found, payload = self.cache.lookup("run", key)
            except Exception as exc:
                errors[index] = exc
                continue
            if found:
                results[index] = api.RunResult(
                    spec=spec, payload=copy.deepcopy(payload),
                    cache_hit=True)
            else:
                pending[key] = [index]

        # Dispatch pass: ship each unique miss to the backend; merge
        # payloads and worker counter deltas as futures complete.
        futures: dict[Future, list[int]] = {}
        for indices in pending.values():
            try:
                future = self.backend.submit(specs[indices[0]])
            except Exception as exc:
                for index in indices:
                    errors[index] = exc
                continue
            futures[future] = indices
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                indices = futures[future]
                first = indices[0]
                try:
                    payload, stats_delta = future.result()
                except Exception as exc:
                    for index in indices:
                        errors[index] = exc
                    continue
                if stats_delta:
                    self.cache.merge_counts(stats_delta)
                self.cache.put("run", specs[first].cache_material(),
                               copy.deepcopy(payload))
                results[first] = api.RunResult(
                    spec=specs[first], payload=payload, cache_hit=False)
                for index in indices[1:]:
                    # Mirror the serial contract: a duplicate spec is
                    # a run-cache hit (counted as one).
                    found, dup = self.cache.lookup(
                        "run", specs[index].spec_hash())
                    results[index] = api.RunResult(
                        spec=specs[index],
                        payload=copy.deepcopy(dup if found else payload),
                        cache_hit=True)
        if errors:
            if not capture_errors:
                raise errors[min(errors)]
            for index, exc in errors.items():
                results[index] = SpecFailure.from_exception(
                    specs[index].to_dict(), exc)
        return results
