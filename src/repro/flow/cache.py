"""Content-addressed artifact cache for the experiment facade.

Every expensive artifact the stack produces — characterized libraries,
implemented :class:`~repro.flow.design_flow.FlowResult` objects, solved
Table 1 / population payloads — is a pure function of some declarative
key material (a technology description, a benchmark name, a RunSpec).
This module hashes that material into a stable content address and
memoizes the artifact under it, replacing the old hidden
``_CLIB_CACHE`` dict in ``design_flow`` whose invalidation predicate
keyed only on ``tech.name`` (two different :class:`Technology` objects
sharing a name collided).

The cache is two-tier: an in-memory dict (always on) and an optional
on-disk pickle store for artifacts that survive process restarts.  The
disk tier is sharded by the first two hex characters of the content
address (``<kind>/<aa>/<address>.pkl``) so long-lived serving caches
never accumulate one flat directory of thousands of entries; artifacts
written by older versions at the flat ``<kind>/<address>.pkl`` path are
still found transparently (read-through), and
:meth:`ArtifactCache.migrate_layout` rehomes them.  The disk tier is
multi-process safe: writes go through a temp file plus
:func:`os.replace` (so a killed or concurrent writer can never leave a
truncated pickle at a final path) and unreadable or corrupt entries
degrade to misses — properties the parallel execution engine
(``flow/executor.py``) relies on when several workers share one cache
directory.  Hit counters are kept per artifact kind *and per tier*
(memory vs disk — warm vs lukewarm, the distinction the serving
layer's ``/stats`` endpoint reports) and surfaced by
:func:`repro.flow.reports.format_cache_stats`, ``repro-fbb sweep`` and
``repro-fbb cache stats``.  All mutating entry points take an internal
lock, so one cache instance may back the threaded serving bridge.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import SpecError

_MISS = object()

#: process-local suffix counter for atomic temp-file names
_TMP_COUNTER = itertools.count()

#: hex-prefix width of the sharded disk layout (``<kind>/<aa>/...``)
SHARD_CHARS = 2


def _jsonable(value: Any) -> Any:
    """Coerce key material into canonical JSON-native structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _jsonable(value.item())
    raise SpecError(
        f"cannot build a content address from {type(value).__name__!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def content_hash(value: Any) -> str:
    """Stable sha256 content address of arbitrary key material."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def tech_content(tech: Any) -> dict:
    """Full-content key material for a Technology (not just its name)."""
    return {"artifact": "technology", "fields": dataclasses.asdict(tech)}


class ArtifactCache:
    """Two-tier (memory + optional disk) content-addressed cache.

    Keys are ``(kind, content-hash)`` pairs; ``kind`` namespaces the
    hit/miss counters so reports can show which artifact class a sweep
    is actually reusing.  Hits are further split by the tier that
    served them (``memory_hits`` vs ``disk_hits``): a long-lived server
    wants to know whether requests are warm (memory) or merely lukewarm
    (a disk read plus unpickle away).

    ``max_entries`` bounds the memory tier with least-recently-used
    eviction — long-lived sweep services over many (design, tech)
    combinations should set it (evicted artifacts stay retrievable from
    the disk tier when a ``cache_dir`` is configured).  The default is
    unbounded, matching interactive/experiment usage.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise SpecError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._memory_hits: dict[str, int] = {}
        self._disk_hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self._lock = threading.RLock()
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- addressing -------------------------------------------------------

    @staticmethod
    def address(material: Any) -> str:
        """Content address of key material (pass-through for hex digests)."""
        if isinstance(material, str):
            return material
        return content_hash(material)

    def _disk_path(self, kind: str, address: str) -> Path | None:
        """Canonical (sharded) disk location of one artifact."""
        if self.cache_dir is None:
            return None
        return (self.cache_dir / kind / address[:SHARD_CHARS]
                / f"{address}.pkl")

    def _legacy_disk_path(self, kind: str, address: str) -> Path | None:
        """Pre-sharding flat location, still honoured on reads."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / kind / f"{address}.pkl"

    # -- lookup / store ---------------------------------------------------

    def lookup(self, kind: str, material: Any) -> tuple[bool, Any]:
        """Return ``(found, value)`` and count the hit (per tier) or miss."""
        address = self.address(material)
        with self._lock:
            value = self._memory.get((kind, address), _MISS)
            tier = self._memory_hits
            if value is _MISS:
                value = self._load_disk(kind, address)
                tier = self._disk_hits
            if value is _MISS:
                self._misses[kind] = self._misses.get(kind, 0) + 1
                return False, None
            self._remember(kind, address, value)
            tier[kind] = tier.get(kind, 0) + 1
            return True, value

    def put(self, kind: str, material: Any, value: Any) -> str:
        """Store an artifact; returns its content address."""
        address = self.address(material)
        with self._lock:
            self._remember(kind, address, value)
            self._store_disk(kind, address, value)
        return address

    def _remember(self, kind: str, address: str, value: Any) -> None:
        """Insert into the memory tier as most-recently-used; evict LRU
        entries past ``max_entries``."""
        key = (kind, address)
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)

    def get_or_create(self, kind: str, material: Any,
                      factory: Callable[[], Any]) -> Any:
        """Memoize ``factory()`` under the material's content address."""
        found, value = self.lookup(kind, material)
        if found:
            return value
        value = factory()
        self.put(kind, material, value)
        return value

    def _load_disk(self, kind: str, address: str) -> Any:
        """Read one artifact from disk: sharded path first, then the
        legacy flat path (transparent read-through of old caches)."""
        for path in (self._disk_path(kind, address),
                     self._legacy_disk_path(kind, address)):
            if path is None:
                return _MISS
            if not path.is_file():
                continue
            try:
                with path.open("rb") as handle:
                    return pickle.load(handle)
            except Exception:  # corrupt or unreadable: try next / miss
                continue
        return _MISS

    def _store_disk(self, kind: str, address: str, value: Any) -> None:
        """Atomically persist one artifact (multi-process safe).

        The pickle is written to a uniquely named temp file in the
        target directory and moved into place with :func:`os.replace`,
        so concurrent writers of the same address race benignly (last
        complete write wins, both are identical by content addressing)
        and a killed process can never leave a truncated pickle at the
        final path — readers either see a whole artifact or a miss.
        New writes always land in the sharded layout.
        """
        path = self._disk_path(kind, address)
        if path is None:
            return
        try:
            blob = pickle.dumps(value)
        except Exception:  # unpicklable artifacts stay memory-only
            return
        tmp = path.parent / (f".{address}.{os.getpid()}."
                             f"{next(_TMP_COUNTER)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except Exception:  # disk-tier failures degrade to memory-only
            with contextlib.suppress(OSError):
                tmp.unlink()

    # -- disk-tier maintenance (repro-fbb cache) --------------------------

    def _iter_disk_entries(self) -> Iterator[tuple[str, str, Path, str]]:
        """Yield ``(kind, address, path, layout)`` for every on-disk
        artifact, where ``layout`` is ``"sharded"`` or ``"legacy"``."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        for kind_dir in sorted(self.cache_dir.iterdir()):
            if not kind_dir.is_dir():
                continue
            kind = kind_dir.name
            for child in sorted(kind_dir.iterdir()):
                if child.is_file() and child.suffix == ".pkl":
                    yield kind, child.stem, child, "legacy"
                elif child.is_dir() and len(child.name) == SHARD_CHARS:
                    for path in sorted(child.glob("*.pkl")):
                        yield kind, path.stem, path, "sharded"

    def disk_inventory(self) -> dict:
        """Per-kind census of the disk tier: entry counts by layout and
        total bytes — what ``repro-fbb cache stats`` tabulates."""
        inventory: dict[str, dict] = {}
        for kind, _address, path, layout in self._iter_disk_entries():
            row = inventory.setdefault(
                kind, {"entries": 0, "sharded": 0, "legacy": 0, "bytes": 0})
            row["entries"] += 1
            row[layout] += 1
            with contextlib.suppress(OSError):
                row["bytes"] += path.stat().st_size
        return inventory

    def migrate_layout(self) -> dict[str, int]:
        """Rehome legacy flat-layout artifacts into sharded directories.

        Returns the per-kind count of moved files.  Uses
        :func:`os.replace`, so a sharded copy that already exists (e.g.
        written by a newer process since the legacy one) simply wins and
        the flat duplicate disappears — both are identical by content
        addressing.  Safe to re-run; a fully sharded cache is a no-op.
        """
        moved: dict[str, int] = {}
        for kind, address, path, layout in list(self._iter_disk_entries()):
            if layout != "legacy":
                continue
            target = self._disk_path(kind, address)
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except OSError:
                continue
            moved[kind] = moved.get(kind, 0) + 1
        return moved

    def clear_disk(self) -> int:
        """Delete every on-disk artifact (both layouts); returns the
        number of entries removed.  Empty shard/kind directories are
        pruned; the cache directory itself is kept."""
        removed = 0
        for _kind, _address, path, _layout in list(self._iter_disk_entries()):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        if self.cache_dir is not None and self.cache_dir.is_dir():
            for kind_dir in self.cache_dir.iterdir():
                if not kind_dir.is_dir():
                    continue
                for shard in kind_dir.iterdir():
                    if shard.is_dir():
                        with contextlib.suppress(OSError):
                            shard.rmdir()
                with contextlib.suppress(OSError):
                    kind_dir.rmdir()
        return removed

    def verify_disk(self) -> dict:
        """Read-through every disk artifact, exercising the tiered
        counters; returns per-kind ``{"readable": n, "corrupt": n}``.

        Each artifact loads through :meth:`lookup`, so a verification
        pass over a cold cache shows up as pure disk hits — the table
        ``repro-fbb cache stats`` prints.
        """
        report: dict[str, dict] = {}
        for kind, address, _path, _layout in self._iter_disk_entries():
            row = report.setdefault(kind, {"readable": 0, "corrupt": 0})
            found, _value = self.lookup(kind, address)
            row["readable" if found else "corrupt"] += 1
        return report

    # -- bookkeeping ------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def memory_hits(self) -> int:
        return sum(self._memory_hits.values())

    @property
    def disk_hits(self) -> int:
        return sum(self._disk_hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    def stats(self) -> dict:
        """JSON-able counter snapshot, per artifact kind and total.

        ``hits`` aggregates both tiers; ``memory_hits``/``disk_hits``
        split it, at the top level and per kind.
        """
        with self._lock:
            kinds = sorted(set(self._memory_hits) | set(self._disk_hits)
                           | set(self._misses))
            return {
                "hits": self.hits,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "by_kind": {
                    kind: {
                        "hits": (self._memory_hits.get(kind, 0)
                                 + self._disk_hits.get(kind, 0)),
                        "memory_hits": self._memory_hits.get(kind, 0),
                        "disk_hits": self._disk_hits.get(kind, 0),
                        "misses": self._misses.get(kind, 0)}
                    for kind in kinds},
            }

    def merge_counts(self, by_kind: dict) -> None:
        """Fold another cache's per-kind hit/miss counters into ours.

        Used by the execution engine: pool workers execute against
        process-local caches, so without merging their counter deltas
        back a parallel sweep's stats report would silently omit all
        worker-side clib/flow activity that a serial run shows.  Counter
        dicts may be tiered (``memory_hits``/``disk_hits``) or legacy
        aggregate (``hits`` only, attributed to the memory tier).
        """
        with self._lock:
            for kind, counts in by_kind.items():
                memory = counts.get("memory_hits")
                if memory is None:
                    memory = counts.get("hits", 0)
                if memory:
                    self._memory_hits[kind] = \
                        self._memory_hits.get(kind, 0) + memory
                disk = counts.get("disk_hits", 0)
                if disk:
                    self._disk_hits[kind] = \
                        self._disk_hits.get(kind, 0) + disk
                misses = counts.get("misses", 0)
                if misses:
                    self._misses[kind] = \
                        self._misses.get(kind, 0) + misses

    def clear(self) -> None:
        """Drop memory entries and counters (disk artifacts are kept)."""
        with self._lock:
            self._memory.clear()
            self._memory_hits.clear()
            self._disk_hits.clear()
            self._misses.clear()


_DEFAULT_CACHE = ArtifactCache()


def default_cache() -> ArtifactCache:
    """The process-wide cache used when no explicit cache is passed."""
    return _DEFAULT_CACHE


def set_default_cache(cache: ArtifactCache) -> ArtifactCache:
    """Swap the process-wide cache (returns the previous one)."""
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
