"""Content-addressed artifact cache for the experiment facade.

Every expensive artifact the stack produces — characterized libraries,
implemented :class:`~repro.flow.design_flow.FlowResult` objects, solved
Table 1 / population payloads — is a pure function of some declarative
key material (a technology description, a benchmark name, a RunSpec).
This module hashes that material into a stable content address and
memoizes the artifact under it, replacing the old hidden
``_CLIB_CACHE`` dict in ``design_flow`` whose invalidation predicate
keyed only on ``tech.name`` (two different :class:`Technology` objects
sharing a name collided).

The cache is two-tier: an in-memory dict (always on) and an optional
on-disk pickle store for artifacts that survive process restarts.  The
disk tier is multi-process safe: writes go through a temp file plus
:func:`os.replace` (so a killed or concurrent writer can never leave a
truncated pickle at a final path) and unreadable or corrupt entries
degrade to misses — properties the parallel execution engine
(``flow/parallel.py``) relies on when several workers share one cache
directory.  Hit and miss counters are kept per artifact kind and
surfaced by :func:`repro.flow.reports.format_cache_stats` and the
``repro-fbb sweep`` subcommand.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import itertools
import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro.errors import SpecError

_MISS = object()

#: process-local suffix counter for atomic temp-file names
_TMP_COUNTER = itertools.count()


def _jsonable(value: Any) -> Any:
    """Coerce key material into canonical JSON-native structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _jsonable(value.item())
    raise SpecError(
        f"cannot build a content address from {type(value).__name__!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def content_hash(value: Any) -> str:
    """Stable sha256 content address of arbitrary key material."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def tech_content(tech: Any) -> dict:
    """Full-content key material for a Technology (not just its name)."""
    return {"artifact": "technology", "fields": dataclasses.asdict(tech)}


class ArtifactCache:
    """Two-tier (memory + optional disk) content-addressed cache.

    Keys are ``(kind, content-hash)`` pairs; ``kind`` namespaces the
    hit/miss counters so reports can show which artifact class a sweep
    is actually reusing.

    ``max_entries`` bounds the memory tier with least-recently-used
    eviction — long-lived sweep services over many (design, tech)
    combinations should set it (evicted artifacts stay retrievable from
    the disk tier when a ``cache_dir`` is configured).  The default is
    unbounded, matching interactive/experiment usage.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise SpecError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- addressing -------------------------------------------------------

    @staticmethod
    def address(material: Any) -> str:
        """Content address of key material (pass-through for hex digests)."""
        if isinstance(material, str):
            return material
        return content_hash(material)

    def _disk_path(self, kind: str, address: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / kind / f"{address}.pkl"

    # -- lookup / store ---------------------------------------------------

    def lookup(self, kind: str, material: Any) -> tuple[bool, Any]:
        """Return ``(found, value)`` and count the hit or miss."""
        address = self.address(material)
        value = self._memory.get((kind, address), _MISS)
        if value is _MISS:
            value = self._load_disk(kind, address)
        if value is _MISS:
            self._misses[kind] = self._misses.get(kind, 0) + 1
            return False, None
        self._remember(kind, address, value)
        self._hits[kind] = self._hits.get(kind, 0) + 1
        return True, value

    def put(self, kind: str, material: Any, value: Any) -> str:
        """Store an artifact; returns its content address."""
        address = self.address(material)
        self._remember(kind, address, value)
        self._store_disk(kind, address, value)
        return address

    def _remember(self, kind: str, address: str, value: Any) -> None:
        """Insert into the memory tier as most-recently-used; evict LRU
        entries past ``max_entries``."""
        key = (kind, address)
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)

    def get_or_create(self, kind: str, material: Any,
                      factory: Callable[[], Any]) -> Any:
        """Memoize ``factory()`` under the material's content address."""
        found, value = self.lookup(kind, material)
        if found:
            return value
        value = factory()
        self.put(kind, material, value)
        return value

    def _load_disk(self, kind: str, address: str) -> Any:
        path = self._disk_path(kind, address)
        if path is None or not path.is_file():
            return _MISS
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:  # corrupt or unreadable artifact: treat as miss
            return _MISS

    def _store_disk(self, kind: str, address: str, value: Any) -> None:
        """Atomically persist one artifact (multi-process safe).

        The pickle is written to a uniquely named temp file in the
        target directory and moved into place with :func:`os.replace`,
        so concurrent writers of the same address race benignly (last
        complete write wins, both are identical by content addressing)
        and a killed process can never leave a truncated pickle at the
        final path — readers either see a whole artifact or a miss.
        """
        path = self._disk_path(kind, address)
        if path is None:
            return
        try:
            blob = pickle.dumps(value)
        except Exception:  # unpicklable artifacts stay memory-only
            return
        tmp = path.parent / (f".{address}.{os.getpid()}."
                             f"{next(_TMP_COUNTER)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except Exception:  # disk-tier failures degrade to memory-only
            with contextlib.suppress(OSError):
                tmp.unlink()

    # -- bookkeeping ------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    def stats(self) -> dict:
        """JSON-able counter snapshot, per artifact kind and total."""
        kinds = sorted(set(self._hits) | set(self._misses))
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memory),
            "by_kind": {
                kind: {"hits": self._hits.get(kind, 0),
                       "misses": self._misses.get(kind, 0)}
                for kind in kinds},
        }

    def merge_counts(self, by_kind: dict) -> None:
        """Fold another cache's per-kind hit/miss counters into ours.

        Used by the parallel engine: pool workers execute against
        process-local caches, so without merging their counter deltas
        back a parallel sweep's stats report would silently omit all
        worker-side clib/flow activity that a serial run shows.
        """
        for kind, counts in by_kind.items():
            self._hits[kind] = self._hits.get(kind, 0) \
                + counts.get("hits", 0)
            self._misses[kind] = self._misses.get(kind, 0) \
                + counts.get("misses", 0)

    def clear(self) -> None:
        """Drop memory entries and counters (disk artifacts are kept)."""
        self._memory.clear()
        self._hits.clear()
        self._misses.clear()


_DEFAULT_CACHE = ArtifactCache()


def default_cache() -> ArtifactCache:
    """The process-wide cache used when no explicit cache is passed."""
    return _DEFAULT_CACHE


def set_default_cache(cache: ArtifactCache) -> ArtifactCache:
    """Swap the process-wide cache (returns the previous one)."""
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
