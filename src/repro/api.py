"""Unified experiment facade: declarative ``RunSpec`` in, ``RunResult`` out.

Every experiment in the reproduction — a single allocation run, one
(design, beta) row of the paper's Table 1, a Monte Carlo die-population
study — is a pure function of a small declarative spec: the design, the
slowdown, the solver method, the cluster budget, the seed, the STA
engine and the technology knobs.  This module makes that literal:

    from repro.api import RunSpec, run

    spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                   method="heuristic:row-descent", clusters=3)
    result = run(spec)
    print(result.payload["savings_pct"])
    replay = RunSpec.from_json(spec.to_json())     # identical spec

Specs and results are frozen, JSON-(de)serializable and
schema-versioned; ``RunResult.from_json(result.to_json())`` round-trips
bit-identically.  ``run()`` memoizes results in the content-addressed
:class:`~repro.flow.cache.ArtifactCache` keyed on the spec hash, so
re-running a sweep is free and the hit/miss counters show exactly what
was reused.  Solver methods are names in the
:mod:`repro.core.registry` solver registry (``single_bb``,
``ilp:highs``, ``ilp:branch_bound``, ``ilp:simplex``,
``heuristic:row-descent``, ``heuristic:level-sweep`` plus aliases), so
new allocation strategies become available here without code changes.
Allocation *granularity* is a spec axis too: ``grouping="bands:8"``
solves at eight bias domains through :mod:`repro.grouping` (the
``"identity"`` default keeps per-row allocation, bit-identical in
results and content hash to specs predating the field).  So is the
placement engine: ``placer="anneal:default"`` implements the design
with the bias-domain-aware annealer of :mod:`repro.placement.anneal`
(the ``"bfs"`` default is likewise hash-elided).

The ``repro-fbb sweep`` CLI subcommand is the batch interface over this
module: a JSON list of RunSpecs in, one JSONL RunResult per line out.
Batches scale across cores: ``run_many(specs, workers=N)`` fans the
specs out over a process pool (specs are frozen, JSON-serializable and
content-hashed, so they ship to workers as-is and payloads merge back
into the shared cache), with results identical to the serial path; see
``repro/flow/parallel.py`` and DESIGN.md, "Parallel execution".
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.problem import build_problem
from repro.core.registry import registry
from repro.core.single_bb import solve_single_bb
from repro.errors import GroupingError, RegistryError, SpecError
from repro.flow.cache import (ArtifactCache, canonical_json, content_hash,
                              default_cache)
from repro.flow.design_flow import FlowResult, implement
from repro.flow.experiment import (TUNING_ENGINES, ExperimentConfig,
                                   LifetimeConfig, LifetimeRow,
                                   PopulationConfig, PopulationRow,
                                   SpatialConfig, SpatialRow, Table1Row,
                                   run_design_beta, run_lifetime_study,
                                   run_population, run_spatial)
from repro.flow.parallel import SpecFailure
from repro.grouping import solve_grouped, validate_grouping_spec
from repro.placement.registry import validate_placer_spec
from repro.tech.technology import BodyBiasRules, Technology
from repro.tuning.lifetime import LIFETIME_MODES
from repro.variation.aging import NbtiModel
from repro.variation.drift import DriftModel
from repro.variation.process import ProcessModel

SCHEMA_VERSION = 1
"""Serialization schema of RunSpec/RunResult; bumped on breaking change."""

RUN_KINDS = ("allocate", "table1", "population", "spatial", "lifetime")

EXECUTION_KNOBS = ("workers", "tuning_engine")
"""RunSpec fields that choose *how* a run executes, never *what* it
computes: results are bit-identical for every value, so they are
excluded from :meth:`RunSpec.cache_material` and do not perturb the
content address.  The ``hash-stability`` lint rule requires every
RunSpec field to appear here or in :data:`HASHED_FIELDS` — adding a
field without declaring its hash fate is a lint failure."""

HASHED_FIELDS = (
    "kind", "design", "beta", "method", "clusters", "cluster_budgets",
    "ilp_backend", "ilp_time_limit_s", "skip_ilp_above_rows", "seed",
    "num_dies", "engine", "tune", "beta_budget", "utilization",
    "grouping", "num_regions", "process", "tech", "epochs", "cadence",
    "drift", "mode", "placer", "schema_version",
)
"""RunSpec fields that participate in the content address: changing any
of them changes :meth:`RunSpec.spec_hash` and therefore misses the run
cache.  (``grouping`` is special-cased: its ``"identity"`` default is
elided from the material so spec hashes predating the field are
stable; the lifetime fields ``epochs``/``cadence``/``drift`` and the
``placer`` field elide their defaults the same way.)  Kept disjoint from
:data:`EXECUTION_KNOBS` and exhaustive over the dataclass fields, both
enforced by the ``hash-stability`` lint rule and ``tests/lint``."""


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one experiment run.

    One spec fully determines one :class:`RunResult` (up to wall-clock
    runtime fields); unused knobs for a given ``kind`` keep their
    defaults and still participate in the content hash.
    """

    kind: str = "allocate"
    """"allocate" (one solver run), "table1" (one Table 1 row),
    "population" (one Monte Carlo die-population row) or "spatial"
    (one spatial-vs-uniform compensation study row)."""

    design: str = "c1355"
    """Benchmark name accepted by :func:`repro.flow.implement`."""

    beta: float = 0.05
    """Slowdown coefficient (allocate/table1 kinds)."""

    method: str = "heuristic:row-descent"
    """Solver-registry method: the solver for ``allocate``, the
    heuristic strategy entry for ``table1``, the tuning solver for
    ``population`` runs with ``tune=True``."""

    clusters: int = 3
    """Cluster budget for allocate runs and population tuning."""

    cluster_budgets: tuple[int, ...] = (2, 3)
    """Table 1 column budgets (table1 kind only)."""

    ilp_backend: str = "highs"
    """MILP backend for the table1 ILP columns."""

    ilp_time_limit_s: float | None = 120.0
    skip_ilp_above_rows: int | None = None
    seed: int = 0
    """Monte Carlo sampling seed (population kind)."""

    num_dies: int = 1000
    engine: str = "batched"
    """Population STA engine: "batched" or "scalar"."""

    tune: bool = False
    beta_budget: float = 0.0
    utilization: float = 0.75
    grouping: str = "identity"
    """Bias-domain grouping spec (DESIGN.md, "Bias-domain grouping"):
    ``"identity"`` allocates per row, bit-identical to specs predating
    the field; ``"bands:<k>"``, ``"correlation:<k>"`` and
    ``"community:<k>"`` solve at ``k`` bias domains.  Part of the
    content address — except the ``"identity"`` default, which is
    omitted so existing spec hashes are unchanged."""
    num_regions: int = 4
    """Sensor-grid resolution of the spatial arm (spatial kind, and
    lifetime runs tuned with ``method``-driven spatial sensing)."""
    epochs: int = 8
    """Service-life epochs of a lifetime run (lifetime kind only)."""
    cadence: int = 1
    """Re-calibration cadence of a lifetime run: re-tune every
    ``cadence`` epochs (1 = every epoch, ``epochs`` = once at time
    zero).  Must not exceed ``epochs``."""
    drift: dict = field(default_factory=dict)
    """DriftModel field overrides for the lifetime aging process, e.g.
    ``{"activity_sigma_v": 0.002, "nbti": {"prefactor_v": 0.012}}``
    (the nested ``nbti`` value may be a dict of NbtiModel fields;
    empty = model defaults)."""
    mode: str = "model"
    """Lifetime re-calibration mode (lifetime kind only): ``"model"``
    senses each die as one scalar slowdown (the paper's die-wide
    derate), ``"spatial"`` re-tunes against the composed per-gate field
    through a ``num_regions`` sensor grid."""
    placer: str = "bfs"
    """Placement engine in the placer registry (DESIGN.md, "Annealing
    placement"): ``"bfs"`` is the deterministic serpentine default,
    bit-identical to specs predating the field; ``"anneal:<preset>"``
    anneals from the BFS seed with a bias-domain-aware cost.  Part of
    the content address — except the ``"bfs"`` default, which is
    omitted so existing spec hashes are unchanged."""
    process: dict = field(default_factory=dict)
    """ProcessModel field overrides for the sampled population, e.g.
    ``{"correlation_length_fraction": 0.25, "sigma_intra_v": 0.02}``
    (population and spatial kinds; empty = model defaults)."""
    workers: int = 1
    """Process-pool width for the run's internal fan-out (population
    tuning shards its slow dies across this many workers).  An
    execution knob, not an experiment input: it is excluded from the
    content address, and results are bit-identical for any value."""
    tuning_engine: str = "serial"
    """Calibration execution engine for tuned population runs:
    ``"serial"`` is the per-die reference loop, ``"batched"`` the
    population-at-a-time engine (DESIGN.md, "Batched calibration").
    Like ``workers``, an execution knob with bit-identical results —
    excluded from the content address."""
    tech: dict = field(default_factory=dict)
    """Technology field overrides, e.g. ``{"vth0_n": 0.5}``; the nested
    ``bias_rules`` value may itself be a dict of BodyBiasRules fields."""

    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise SpecError(
                f"unknown run kind {self.kind!r}; choose from {RUN_KINDS}")
        if self.schema_version > SCHEMA_VERSION:
            raise SpecError(
                f"spec schema v{self.schema_version} is newer than this "
                f"library's v{SCHEMA_VERSION}")
        if self.beta < 0:
            raise SpecError(f"beta must be non-negative, got {self.beta}")
        if self.clusters < 1:
            raise SpecError(f"clusters must be >= 1, got {self.clusters}")
        if self.num_dies < 1:
            raise SpecError(f"num_dies must be >= 1, got {self.num_dies}")
        if self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.tuning_engine not in TUNING_ENGINES:
            raise SpecError(
                f"unknown tuning engine {self.tuning_engine!r}; choose "
                f"from {TUNING_ENGINES}")
        if self.num_regions < 1:
            raise SpecError(
                f"num_regions must be >= 1, got {self.num_regions}")
        if self.epochs < 1:
            raise SpecError(f"epochs must be >= 1, got {self.epochs}")
        if self.cadence < 1:
            raise SpecError(f"cadence must be >= 1, got {self.cadence}")
        if self.cadence > self.epochs:
            raise SpecError(
                f"cadence {self.cadence} exceeds the {self.epochs}-epoch "
                "lifetime: the controller would never re-calibrate")
        if self.mode not in LIFETIME_MODES:
            raise SpecError(
                f"unknown lifetime mode {self.mode!r}; choose from "
                f"{LIFETIME_MODES}")
        try:
            validate_grouping_spec(self.grouping)
        except GroupingError as exc:
            raise SpecError(
                f"bad grouping spec {self.grouping!r}: {exc}") from exc
        try:
            validate_placer_spec(self.placer)
        except RegistryError as exc:
            raise SpecError(
                f"bad placer spec {self.placer!r}: {exc}") from exc
        object.__setattr__(self, "cluster_budgets",
                           tuple(int(c) for c in self.cluster_budgets))

    # -- derived objects --------------------------------------------------

    def technology(self) -> Technology:
        """Materialize the Technology with this spec's overrides."""
        overrides = dict(self.tech)
        rules = overrides.pop("bias_rules", None)
        if isinstance(rules, dict):
            overrides["bias_rules"] = BodyBiasRules(**rules)
        try:
            return Technology(**overrides)
        except TypeError as exc:
            raise SpecError(f"bad tech overrides {self.tech}: {exc}") from exc

    def process_model(self) -> ProcessModel | None:
        """Materialize the ProcessModel overrides (None when empty, so
        harnesses fall back to their default model)."""
        if not self.process:
            return None
        try:
            return ProcessModel(**self.process)
        except TypeError as exc:
            raise SpecError(
                f"bad process overrides {self.process}: {exc}") from exc

    def drift_model(self) -> DriftModel | None:
        """Materialize the DriftModel overrides (None when empty, so
        the lifetime harness falls back to its default drift)."""
        if not self.drift:
            return None
        overrides = dict(self.drift)
        nbti = overrides.pop("nbti", None)
        if isinstance(nbti, dict):
            try:
                nbti = NbtiModel(**nbti)
            except TypeError as exc:
                raise SpecError(
                    f"bad nbti overrides {self.drift['nbti']}: "
                    f"{exc}") from exc
        if nbti is not None:
            overrides["nbti"] = nbti
        try:
            return DriftModel(**overrides)
        except TypeError as exc:
            raise SpecError(
                f"bad drift overrides {self.drift}: {exc}") from exc

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-native dict (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["cluster_budgets"] = list(self.cluster_budgets)
        return data

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON text of the spec."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        if not isinstance(data, dict):
            raise SpecError(f"RunSpec needs a JSON object, got "
                            f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown RunSpec fields: {', '.join(unknown)}")
        payload = dict(data)
        if "cluster_budgets" in payload:
            payload["cluster_budgets"] = tuple(payload["cluster_budgets"])
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def cache_material(self) -> dict:
        """Key material for the run cache: the spec minus execution-only
        knobs.

        The fields in :data:`EXECUTION_KNOBS` parallelize or re-engine
        execution without changing the result — a sweep run with
        ``workers=4`` hits the exact artifacts a serial run produced,
        and the batched ``tuning_engine`` is bit-identical to the
        serial loop — so they do not participate in the content
        address (which also keeps every spec hash from before those
        fields existed).

        ``grouping`` *does* change the result, so non-default values
        are part of the address; the ``"identity"`` default is dropped
        from the material so that specs predating the field keep their
        hashes (and their cached artifacts).  The lifetime fields
        (``epochs``, ``cadence``, ``drift``) elide their defaults for
        the same reason.
        """
        material = self.to_dict()
        for knob in EXECUTION_KNOBS:
            del material[knob]
        if material["grouping"] == "identity":
            del material["grouping"]
        if material["epochs"] == 8:
            del material["epochs"]
        if material["cadence"] == 1:
            del material["cadence"]
        if not material["drift"]:
            del material["drift"]
        if material["mode"] == "model":
            del material["mode"]
        if material["placer"] == "bfs":
            del material["placer"]
        return material

    def spec_hash(self) -> str:
        """Stable content address of the spec (the run-cache key)."""
        return content_hash(self.cache_material())


@dataclass(frozen=True)
class RunResult:
    """The outcome of executing one :class:`RunSpec`.

    ``payload`` holds only JSON-native values (string keys, lists, plain
    scalars), so serialization round-trips bit-identically:
    ``RunResult.from_json(result.to_json()) == result``.
    """

    spec: RunSpec
    payload: dict
    cache_hit: bool = False
    schema_version: int = SCHEMA_VERSION

    @property
    def kind(self) -> str:
        return self.spec.kind

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "spec": self.spec.to_dict(),
            "payload": self.payload,
            "cache_hit": self.cache_hit,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        try:
            spec = RunSpec.from_dict(data["spec"])
            return cls(spec=spec, payload=data["payload"],
                       cache_hit=data.get("cache_hit", False),
                       schema_version=data.get("schema_version",
                                               SCHEMA_VERSION))
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed RunResult: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # -- payload decoding -------------------------------------------------

    def to_table1_row(self) -> Table1Row:
        """Rebuild the Table1Row a table1 run produced."""
        if self.kind != "table1":
            raise SpecError(f"not a table1 result (kind={self.kind!r})")
        return table1_row_from_payload(self.payload)

    def to_population_row(self) -> PopulationRow:
        """Rebuild the PopulationRow a population run produced."""
        if self.kind != "population":
            raise SpecError(f"not a population result (kind={self.kind!r})")
        return population_row_from_payload(self.payload)

    def to_spatial_row(self) -> SpatialRow:
        """Rebuild the SpatialRow a spatial run produced."""
        if self.kind != "spatial":
            raise SpecError(f"not a spatial result (kind={self.kind!r})")
        return spatial_row_from_payload(self.payload)

    def to_lifetime_row(self) -> LifetimeRow:
        """Rebuild the LifetimeRow a lifetime run produced."""
        if self.kind != "lifetime":
            raise SpecError(f"not a lifetime result (kind={self.kind!r})")
        return lifetime_row_from_payload(self.payload)


# -- payload codecs (JSON-native dicts <-> harness row dataclasses) --------

def table1_row_payload(row: Table1Row) -> dict:
    """Encode a Table1Row as a pure-JSON payload (str cluster keys)."""
    return {
        "design": row.design,
        "gates": row.gates,
        "rows": row.rows,
        "beta": row.beta,
        "single_bb_uw": row.single_bb_uw,
        "ilp_savings": {str(c): v for c, v in row.ilp_savings.items()},
        "heuristic_savings": {str(c): v
                              for c, v in row.heuristic_savings.items()},
        "num_constraints": row.num_constraints,
        "ilp_runtime_s": row.ilp_runtime_s,
        "heuristic_runtime_s": row.heuristic_runtime_s,
    }


def table1_row_from_payload(payload: dict) -> Table1Row:
    """Inverse of :func:`table1_row_payload`."""
    return Table1Row(
        design=payload["design"],
        gates=payload["gates"],
        rows=payload["rows"],
        beta=payload["beta"],
        single_bb_uw=payload["single_bb_uw"],
        ilp_savings={int(c): v for c, v in payload["ilp_savings"].items()},
        heuristic_savings={int(c): v
                           for c, v in payload["heuristic_savings"].items()},
        num_constraints=payload["num_constraints"],
        ilp_runtime_s=payload["ilp_runtime_s"],
        heuristic_runtime_s=payload["heuristic_runtime_s"],
    )


def population_row_payload(row: PopulationRow) -> dict:
    """Encode a PopulationRow as a pure-JSON payload."""
    return dataclasses.asdict(row)


def population_row_from_payload(payload: dict) -> PopulationRow:
    """Inverse of :func:`population_row_payload`."""
    return PopulationRow(**payload)


def spatial_row_payload(row: SpatialRow) -> dict:
    """Encode a SpatialRow as a pure-JSON payload."""
    return dataclasses.asdict(row)


def spatial_row_from_payload(payload: dict) -> SpatialRow:
    """Inverse of :func:`spatial_row_payload`."""
    return SpatialRow(**payload)


def lifetime_row_payload(row: LifetimeRow) -> dict:
    """Encode a LifetimeRow as a pure-JSON payload (list yield curve)."""
    data = dataclasses.asdict(row)
    data["yield_curve"] = list(row.yield_curve)
    return data


def lifetime_row_from_payload(payload: dict) -> LifetimeRow:
    """Inverse of :func:`lifetime_row_payload`."""
    data = dict(payload)
    data["yield_curve"] = tuple(data["yield_curve"])
    return LifetimeRow(**data)


# -- execution -------------------------------------------------------------

def _implement_spec(spec: RunSpec, cache: ArtifactCache) -> FlowResult:
    return implement(spec.design, tech=spec.technology(),
                     utilization=spec.utilization, placer=spec.placer,
                     cache=cache)


def _heuristic_strategy(method: str) -> str:
    """Table 1 runs every method; ``method`` picks the heuristic variant."""
    name = registry.get(method).name
    if not name.startswith("heuristic:"):
        raise SpecError(
            f"table1 runs all method families; `method` must name a "
            f"heuristic strategy entry, got {method!r}")
    return name.split(":", 1)[1]


def _execute_allocate(spec: RunSpec, cache: ArtifactCache) -> dict:
    flow = _implement_spec(spec, cache)
    problem = build_problem(flow.placed, flow.clib, spec.beta,
                            analyzer=flow.analyzer, paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    baseline = solve_single_bb(problem)
    entry = registry.get(spec.method)
    opts: dict[str, Any] = {}
    if entry.name.startswith("ilp:"):
        opts["time_limit_s"] = spec.ilp_time_limit_s
    grouped = spec.grouping != "identity"
    if grouped:
        solution = solve_grouped(problem, entry.name, spec.clusters,
                                 grouping=spec.grouping,
                                 placed=flow.placed, **opts)
    else:
        solution = entry.func(problem, spec.clusters, **opts)
    payload = {
        "design": flow.name,
        "gates": flow.num_gates,
        "rows": flow.num_rows,
        "beta": spec.beta,
        "method": solution.method,
        "baseline_uw": baseline.leakage_uw,
        "leakage_uw": solution.leakage_uw,
        "savings_pct": solution.savings_vs(baseline.leakage_nw),
        "num_clusters": solution.num_clusters,
        "levels": [int(level) for level in solution.levels],
        "timing_ok": bool(solution.is_timing_feasible),
        "optimal": bool(solution.optimal),
        "runtime_s": solution.runtime_s,
    }
    if grouped:
        # Extra keys only on grouped runs: identity payloads stay
        # bit-identical to those produced before the grouping layer.
        payload["grouping"] = spec.grouping
        payload["num_groups"] = solution.num_groups
        payload["num_domains"] = solution.num_domains
    return payload


def _execute_table1(spec: RunSpec, cache: ArtifactCache) -> dict:
    flow = _implement_spec(spec, cache)
    config = ExperimentConfig(
        betas=(spec.beta,),
        cluster_budgets=spec.cluster_budgets,
        ilp_backend=spec.ilp_backend,
        ilp_time_limit_s=spec.ilp_time_limit_s,
        skip_ilp_above_rows=spec.skip_ilp_above_rows,
        heuristic_strategy=_heuristic_strategy(spec.method),
        grouping=spec.grouping)
    return table1_row_payload(run_design_beta(flow, spec.beta, config))


def _execute_population(spec: RunSpec, cache: ArtifactCache) -> dict:
    flow = _implement_spec(spec, cache)
    config = PopulationConfig(
        num_dies=spec.num_dies, seed=spec.seed,
        model=spec.process_model(), sta_engine=spec.engine,
        tune=spec.tune, max_clusters=spec.clusters,
        beta_budget=spec.beta_budget, method=spec.method,
        workers=spec.workers, grouping=spec.grouping,
        tuning_engine=spec.tuning_engine)
    return population_row_payload(run_population(flow, config))


def _execute_spatial(spec: RunSpec, cache: ArtifactCache) -> dict:
    flow = _implement_spec(spec, cache)
    config = SpatialConfig(
        num_dies=spec.num_dies, seed=spec.seed,
        model=spec.process_model(), sta_engine=spec.engine,
        max_clusters=spec.clusters, beta_budget=spec.beta_budget,
        method=spec.method, num_regions=spec.num_regions,
        workers=spec.workers, grouping=spec.grouping)
    return spatial_row_payload(run_spatial(flow, config))


def _execute_lifetime(spec: RunSpec, cache: ArtifactCache) -> dict:
    flow = _implement_spec(spec, cache)
    config = LifetimeConfig(
        num_dies=spec.num_dies, seed=spec.seed,
        model=spec.process_model(), drift=spec.drift_model(),
        sta_engine=spec.engine, epochs=spec.epochs,
        cadence=spec.cadence, max_clusters=spec.clusters,
        beta_budget=spec.beta_budget, method=spec.method,
        mode=spec.mode, num_regions=spec.num_regions,
        grouping=spec.grouping)
    return lifetime_row_payload(run_lifetime_study(flow, config))


_EXECUTORS: dict[str, Callable[[RunSpec, ArtifactCache], dict]] = {
    "allocate": _execute_allocate,
    "table1": _execute_table1,
    "population": _execute_population,
    "spatial": _execute_spatial,
    "lifetime": _execute_lifetime,
}


def execute_spec(spec: RunSpec,
                 cache: ArtifactCache | None = None) -> dict:
    """Compute one spec's payload with no run-cache lookup.

    This is the raw execution step :func:`run` wraps with memoization,
    and the entry point pool workers call: the worker executes against
    a process-local cache and ships the pure-JSON payload back to the
    parent, which merges it into the shared run cache.
    """
    if cache is None:
        cache = default_cache()
    return _EXECUTORS[spec.kind](spec, cache)


def run(spec: RunSpec, cache: ArtifactCache | None = None,
        use_cache: bool = True) -> RunResult:
    """Execute one spec, memoizing the payload in the artifact cache.

    A repeated spec returns the cached payload with ``cache_hit=True``
    and identical numbers; pass ``use_cache=False`` to force
    re-execution (the fresh payload still refreshes the cache).  The
    cache key is :meth:`RunSpec.spec_hash`; payloads cross the cache
    boundary as deep copies, so mutating a returned result cannot
    corrupt later hits.
    """
    if cache is None:
        cache = default_cache()
    material = spec.cache_material()
    if use_cache:
        found, payload = cache.lookup("run", material)
        if found:
            return RunResult(spec=spec, payload=copy.deepcopy(payload),
                             cache_hit=True)
    payload = execute_spec(spec, cache)
    cache.put("run", material, copy.deepcopy(payload))
    return RunResult(spec=spec, payload=payload, cache_hit=False)


def run_many(specs: list[RunSpec] | tuple[RunSpec, ...],
             cache: ArtifactCache | None = None,
             use_cache: bool = True,
             workers: int = 1,
             capture_errors: bool = False
             ) -> list[RunResult | SpecFailure]:
    """Execute a batch of specs in order (the `sweep` CLI's engine).

    A thin batch adapter over
    :class:`repro.flow.executor.ExecutionEngine` — the same
    resolve → dedupe → dispatch → merge core the ``repro.serve``
    request loop drives.  ``workers > 1`` selects the process-pool
    backend: the parent resolves cache hits and deduplicates, unique
    misses execute in warm workers, and payloads merge back into the
    shared cache — results and their order are identical to the serial
    ``workers=1`` (inline-backend) path, modulo wall-clock runtime
    fields inside payloads.

    With ``capture_errors=True`` a failing spec produces a
    :class:`~repro.flow.parallel.SpecFailure` in its result slot and
    the rest of the batch still runs; otherwise the first failure (in
    spec order) is raised, as before.
    """
    from repro.flow.executor import ExecutionEngine
    if cache is None:
        cache = default_cache()
    with ExecutionEngine.for_batch(cache, workers,
                                   num_tasks=len(specs)) as engine:
        return engine.execute(list(specs), use_cache=use_cache,
                              capture_errors=capture_errors)


def solve(problem, method: str = "heuristic", clusters: int = 3, **opts):
    """Registry dispatch re-export: one entry point for ad-hoc solves."""
    return registry.solve(problem, method, clusters, **opts)


def solver_names(include_aliases: bool = True) -> tuple[str, ...]:
    """Registered solver method names (the valid ``RunSpec.method``s)."""
    return registry.names(include_aliases=include_aliases)
