"""Process variation models: inter-die and spatially correlated intra-die.

The paper applies a uniform slowdown coefficient beta per die (Sec. 3.1);
these models produce such betas from first principles so the tuning
examples can generate realistic die populations:

* **inter-die** — one threshold-voltage shift shared by every device on
  the die, Gaussian across dies;
* **intra-die** — a spatially correlated Vth field over the die using a
  multi-level grid model (each level contributes a coarser, shared
  offset — the standard quad-tree-style approximation of correlated
  process variation) plus an independent per-gate term.

Threshold shifts convert to per-gate delay multipliers through the
alpha-power-law sensitivity; the die's effective slowdown is taken
through full STA by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.placement.placed_design import PlacedDesign
from repro.tech.technology import Technology


@dataclass(frozen=True)
class ProcessModel:
    """Gaussian Vth variation, volts (one sigma)."""

    sigma_inter_v: float = 0.020
    sigma_intra_v: float = 0.012
    intra_grid_levels: int = 3
    intra_independent_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.sigma_inter_v < 0 or self.sigma_intra_v < 0:
            raise ReproError("variation sigmas must be non-negative")
        if not 0 <= self.intra_independent_fraction <= 1:
            raise ReproError("independent fraction must be in [0, 1]")
        if self.intra_grid_levels < 1:
            raise ReproError("need at least one grid level")


def delay_multiplier_for_dvth(tech: Technology, dvth_v: float) -> float:
    """Delay multiplier caused by a threshold shift (alpha-power law).

    Positive shifts (slower devices) give multipliers above 1.
    """
    base = tech.vdd - tech.vth0_n
    shifted = base - dvth_v
    if shifted <= 0.05:
        shifted = 0.05
    return (base / shifted) ** tech.alpha_power


def sample_inter_die_dvth(model: ProcessModel,
                          rng: np.random.Generator) -> float:
    """One die-wide threshold shift, volts."""
    return float(rng.normal(0.0, model.sigma_inter_v))


def sample_intra_die_dvth(placed: PlacedDesign, model: ProcessModel,
                          rng: np.random.Generator) -> dict[str, float]:
    """Spatially correlated per-gate threshold shifts, volts.

    The correlated part is a sum of ``intra_grid_levels`` grids of
    Gaussian offsets with geometrically finer spacing; gates in the same
    grid cell share the offset, producing spatial correlation that decays
    with distance — neighbouring rows see similar shifts, which is the
    physical basis for *clustered* compensation.
    """
    sigma_total = model.sigma_intra_v
    independent_var = (sigma_total ** 2) * model.intra_independent_fraction
    correlated_var = (sigma_total ** 2) - independent_var

    # Coarser levels carry more variance (weights 2^-level), matching
    # the long correlation lengths of lithography/doping gradients.
    raw_weights = np.array([2.0 ** -level
                            for level in range(model.intra_grid_levels)])
    level_vars = correlated_var * raw_weights / raw_weights.sum()

    width = placed.floorplan.core_width_um
    height = placed.floorplan.core_height_um
    shifts: dict[str, float] = {}
    positions = {name: placed.gate_position_um(name)
                 for name in placed.netlist.gates}

    level_offsets: list[tuple[int, np.ndarray]] = []
    for level in range(model.intra_grid_levels):
        cells = 2 ** (level + 1)
        offsets = rng.normal(0.0, float(np.sqrt(level_vars[level])),
                             size=(cells, cells))
        level_offsets.append((cells, offsets))

    sigma_independent = float(np.sqrt(independent_var))
    for name, (x, y) in positions.items():
        total = 0.0
        for cells, offsets in level_offsets:
            col = min(int(x / max(width, 1e-9) * cells), cells - 1)
            row = min(int(y / max(height, 1e-9) * cells), cells - 1)
            total += offsets[row, col]
        if sigma_independent > 0:
            total += rng.normal(0.0, sigma_independent)
        shifts[name] = total
    return shifts


def gate_delay_scales(placed: PlacedDesign, model: ProcessModel,
                      rng: np.random.Generator) -> dict[str, float]:
    """Per-gate delay multipliers for one sampled die."""
    tech = placed.library.tech
    inter = sample_inter_die_dvth(model, rng)
    intra = sample_intra_die_dvth(placed, model, rng)
    return {name: delay_multiplier_for_dvth(tech, inter + shift)
            for name, shift in intra.items()}
