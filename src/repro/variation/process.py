"""Process variation models: inter-die and spatially correlated intra-die.

The paper applies a uniform slowdown coefficient beta per die (Sec. 3.1);
these models produce such betas from first principles so the tuning
examples can generate realistic die populations:

* **inter-die** — one threshold-voltage shift shared by every device on
  the die, Gaussian across dies;
* **intra-die** — a spatially correlated Vth field over the die using a
  multi-level grid model (each level contributes a coarser, shared
  offset — the standard quad-tree-style approximation of correlated
  process variation) plus an independent per-gate term.

Threshold shifts convert to per-gate delay multipliers through the
alpha-power-law sensitivity; the die's effective slowdown is taken
through full STA by the callers.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.placement.placed_design import PlacedDesign
from repro.tech.technology import Technology


@dataclass(frozen=True)
class ProcessModel:
    """Gaussian Vth variation, volts (one sigma)."""

    sigma_inter_v: float = 0.020
    sigma_intra_v: float = 0.012
    intra_grid_levels: int = 3
    intra_independent_fraction: float = 0.3
    correlation_length_fraction: float | None = None
    """Characteristic correlation length of the intra-die field, as a
    fraction of the die span (``None`` keeps the default coarse-heavy
    ``2^-level`` weighting).  When set, the grid-level variance weights
    form a log-spaced bell centred on the level whose cell size matches
    the requested length: values near 1.0 make the whole die drift
    together (lithography-scale gradients), small values push the
    variance into the fine grids (doping-scale granularity) — the knob
    the spatial-compensation experiments sweep."""

    def __post_init__(self) -> None:
        if self.sigma_inter_v < 0 or self.sigma_intra_v < 0:
            raise ReproError("variation sigmas must be non-negative")
        if not 0 <= self.intra_independent_fraction <= 1:
            raise ReproError("independent fraction must be in [0, 1]")
        if self.intra_grid_levels < 1:
            raise ReproError("need at least one grid level")
        fraction = self.correlation_length_fraction
        if fraction is not None and not 0 < fraction <= 1:
            raise ReproError(
                "correlation length fraction must be in (0, 1]")

    def level_weights(self) -> np.ndarray:
        """Raw per-level variance weights of the correlated field.

        Level ``l`` is a ``2^(l+1) x 2^(l+1)`` grid, so its cells span a
        ``2^-(l+1)`` fraction of the die.  Without a correlation length
        the paper-era default applies (coarser levels carry more
        variance, weights ``2^-l``) and the returned vector has one
        entry per grid level.  With one, the vector gains a leading
        **die-level** entry — correlation at or above the die span is a
        coherent whole-die shift, which no finite grid cell can carry —
        and the weights follow a bell in log2 cell size centred on the
        scale matching the requested length.  ``1.0`` therefore means
        "the die drifts as one" (the regime where a single sensor
        speaks for every block) and small fractions concentrate the
        variance in fine grids (where it cannot)."""
        levels = np.arange(self.intra_grid_levels, dtype=float)
        if self.correlation_length_fraction is None:
            return 2.0 ** -levels
        target = np.log2(self.correlation_length_fraction)
        cell_sizes = np.concatenate([[0.0], -(levels + 1.0)])
        return np.exp(-0.5 * ((cell_sizes - target) / 0.75) ** 2)


def delay_multiplier_for_dvth(tech: Technology, dvth_v: float) -> float:
    """Delay multiplier caused by a threshold shift (alpha-power law).

    Positive shifts (slower devices) give multipliers above 1.
    Delegates to the vectorized form so the scalar and population
    sampling paths can never drift apart.
    """
    return float(delay_multipliers_for_dvth(tech, np.float64(dvth_v)))


def delay_multipliers_for_dvth(tech: Technology,
                               dvth_v: np.ndarray) -> np.ndarray:
    """Delay multipliers for an array of threshold shifts (alpha-power
    law); the gate-overdrive clamp keeps near-depletion shifts finite."""
    base = tech.vdd - tech.vth0_n
    shifted = np.maximum(base - np.asarray(dvth_v, dtype=float), 0.05)
    return (base / shifted) ** tech.alpha_power


def sample_inter_die_dvth(model: ProcessModel,
                          rng: np.random.Generator) -> float:
    """One die-wide threshold shift, volts."""
    return float(rng.normal(0.0, model.sigma_inter_v))


def sample_intra_die_dvth(placed: PlacedDesign, model: ProcessModel,
                          rng: np.random.Generator) -> dict[str, float]:
    """Spatially correlated per-gate threshold shifts for one die, volts.

    Delegates to the population sampler with ``num_dies=1`` (identical
    rng draw order, so the two paths can never drift apart).
    """
    names = list(placed.netlist.gates)
    matrix = sample_intra_die_dvth_matrix(placed, model, rng, 1, names)
    return dict(zip(names, matrix[0].tolist()))


def sample_intra_die_dvth_matrix(placed: PlacedDesign, model: ProcessModel,
                                 rng: np.random.Generator, num_dies: int,
                                 gate_names: Sequence[str] | None = None
                                 ) -> np.ndarray:
    """Correlated per-gate threshold shifts for a whole population.

    The correlated part is a sum of ``intra_grid_levels`` grids of
    Gaussian offsets with geometrically finer spacing; gates in the same
    grid cell share the offset, producing spatial correlation that
    decays with distance — neighbouring rows see similar shifts, which
    is the physical basis for *clustered* compensation.  Coarser levels
    carry more variance (weights 2^-level), matching the long
    correlation lengths of lithography/doping gradients.

    All dies are drawn in bulk: ``(num_dies, cells, cells)`` offset
    blocks gathered per gate with fancy indexing.  Returns a
    ``(num_dies, num_gates)`` matrix whose columns follow ``gate_names``
    (defaulting to the netlist's gate order).
    """
    if num_dies <= 0:
        raise ReproError(f"num_dies must be positive, got {num_dies}")
    if gate_names is None:
        gate_names = list(placed.netlist.gates)
    positions = np.array([placed.gate_position_um(name)
                          for name in gate_names])
    return sample_correlated_field(
        model, rng, num_dies, positions[:, 0], positions[:, 1],
        placed.floorplan.core_width_um, placed.floorplan.core_height_um)


def sample_correlated_field(model: ProcessModel, rng: np.random.Generator,
                            num_samples: int, xs: np.ndarray,
                            ys: np.ndarray, width_um: float,
                            height_um: float) -> np.ndarray:
    """Correlated Gaussian field samples at arbitrary die coordinates.

    The shared machinery behind :func:`sample_intra_die_dvth_matrix` and
    the aging drift process of :mod:`repro.variation.drift` — callers
    supply the sample sites (gate positions, row centres, sensor sites)
    and the die extents.  The rng draw order is fixed and documented:
    optional die-coherent shift, then one ``(num_samples, cells, cells)``
    offset block per grid level (coarse to fine), then the independent
    per-site term.  Returns ``(num_samples, len(xs))``.
    """
    sigma_total = model.sigma_intra_v
    independent_var = (sigma_total ** 2) * model.intra_independent_fraction
    correlated_var = (sigma_total ** 2) - independent_var

    raw_weights = model.level_weights()
    level_vars = correlated_var * raw_weights / raw_weights.sum()
    die_level_var = 0.0
    if len(level_vars) > model.intra_grid_levels:
        # Leading entry is the die-coherent component (present when a
        # correlation length is set; see ProcessModel.level_weights).
        die_level_var, level_vars = level_vars[0], level_vars[1:]

    total = np.zeros((num_samples, len(xs)))
    if die_level_var > 0:
        total += rng.normal(0.0, float(np.sqrt(die_level_var)),
                            size=(num_samples, 1))
    for level in range(model.intra_grid_levels):
        cells = 2 ** (level + 1)
        offsets = rng.normal(0.0, float(np.sqrt(level_vars[level])),
                             size=(num_samples, cells, cells))
        cols = np.minimum((xs / max(width_um, 1e-9) * cells).astype(np.intp),
                          cells - 1)
        rows = np.minimum((ys / max(height_um, 1e-9) * cells).astype(np.intp),
                          cells - 1)
        total += offsets[:, rows, cols]

    sigma_independent = float(np.sqrt(independent_var))
    if sigma_independent > 0:
        total += rng.normal(0.0, sigma_independent,
                            size=(num_samples, len(xs)))
    return total


def gate_delay_scales(placed: PlacedDesign, model: ProcessModel,
                      rng: np.random.Generator) -> dict[str, float]:
    """Per-gate delay multipliers for one sampled die.

    Delegates to :func:`sample_scale_matrix` with ``num_dies=1`` so the
    single-die and population paths share one sampling implementation.
    """
    names = list(placed.netlist.gates)
    matrix = sample_scale_matrix(placed, model, rng, 1, names)
    return dict(zip(names, matrix[0].tolist()))


def sample_scale_matrix(placed: PlacedDesign, model: ProcessModel,
                        rng: np.random.Generator, num_dies: int,
                        gate_names: Sequence[str] | None = None
                        ) -> np.ndarray:
    """Delay-scale matrix for a whole die population.

    Draws every die's inter-die shift and correlated intra-die field in
    bulk and converts them through the alpha-power law, returning a
    ``(num_dies, num_gates)`` matrix ready for
    :class:`repro.sta.batched.BatchedTimingAnalyzer`.
    """
    if gate_names is None:
        gate_names = list(placed.netlist.gates)
    tech = placed.library.tech
    inter = rng.normal(0.0, model.sigma_inter_v, size=num_dies)
    intra = sample_intra_die_dvth_matrix(placed, model, rng, num_dies,
                                         gate_names)
    return delay_multipliers_for_dvth(tech, inter[:, None] + intra)
