"""Per-row aging drift: spatially correlated Vth shift over epochs.

The paper positions FBB as the recovery knob for lifetime degradation
(Sec. 1 cites Mitra's failure-prediction work [3]); this module supplies
the time axis the frozen process snapshot lacks.  Each die ages through
discrete **epochs** of ``epoch_years``; after epoch ``e`` every
standard-cell row carries a threshold shift

    dVth_row[e] = dVth_NBTI((e+1) * epoch_years)          (shared mean)
                + sum_{k<=e} increment_k[row]             (activity skew)

where the deterministic mean follows :class:`NbtiModel`'s power law and
each epoch's stochastic increment is a spatially *correlated* field over
row centres, drawn through the same multi-level grid machinery as the
process model (:func:`repro.variation.process.sample_correlated_field`)
— neighbouring rows run similar workloads, so they age together, which
is what makes row-clustered re-compensation effective.

Determinism contract: epoch ``e``'s increment is drawn from the child
generator ``np.random.default_rng([seed, e])``, so (a) the same seed
always yields the same drift trajectory, and (b) the field of epoch
``e`` is identical whether 3 or 30 epochs are materialised — epoch
composition is order-independent by construction.  Shifts are clamped
non-negative (NBTI only degrades; relaxation is below the model floor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.placement.placed_design import PlacedDesign
from repro.tech.technology import Technology
from repro.variation.aging import NbtiModel
from repro.variation.process import (ProcessModel, delay_multipliers_for_dvth,
                                     sample_correlated_field)


@dataclass(frozen=True)
class DriftModel:
    """Epoch-based per-row NBTI drift process.

    ``nbti`` anchors the deterministic mean; ``activity_sigma_v`` is the
    one-sigma per-epoch *stochastic* increment (volts) capturing
    workload/temperature skew between regions of the die, spatially
    correlated with ``correlation_length_fraction`` exactly as in
    :class:`repro.variation.process.ProcessModel`.
    """

    nbti: NbtiModel = field(default_factory=NbtiModel)
    epoch_years: float = 1.0
    activity_sigma_v: float = 0.004
    correlation_length_fraction: float | None = 0.5
    grid_levels: int = 3
    independent_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.epoch_years <= 0:
            raise ReproError("epoch_years must be positive")
        if self.activity_sigma_v < 0:
            raise ReproError("activity sigma must be non-negative")
        # Reuse ProcessModel's validation for the correlation knobs.
        self.spatial_model()

    def spatial_model(self) -> ProcessModel:
        """The correlated-field model of one epoch's activity skew."""
        return ProcessModel(
            sigma_inter_v=0.0,
            sigma_intra_v=self.activity_sigma_v,
            intra_grid_levels=self.grid_levels,
            intra_independent_fraction=self.independent_fraction,
            correlation_length_fraction=self.correlation_length_fraction)

    def mean_dvth_v(self, epoch: int) -> float:
        """Shared NBTI mean shift at the *end* of ``epoch`` (0-based)."""
        if epoch < 0:
            raise ReproError(f"epoch must be non-negative, got {epoch}")
        return self.nbti.dvth_after_years((epoch + 1) * self.epoch_years)


def row_positions_um(placed: PlacedDesign) -> tuple[np.ndarray, np.ndarray]:
    """Sample sites of the drift field: one point per row, at mid-width.

    The drift field varies across rows (the allocation unit), not along
    them — a whole row shares one body-bias rail, so finer-than-row
    drift structure is unobservable to the compensation loop anyway.
    """
    floorplan = placed.floorplan
    ys = np.array([floorplan.row(r).y_um for r in range(placed.num_rows)])
    xs = np.full(placed.num_rows, floorplan.core_width_um / 2.0)
    return xs, ys


def epoch_increment_v(placed: PlacedDesign, model: DriftModel, seed: int,
                      epoch: int) -> np.ndarray:
    """Epoch ``epoch``'s stochastic per-row Vth increment, volts.

    Drawn from the child generator ``default_rng([seed, epoch])`` — the
    composition-order-independence anchor (see module docstring).
    """
    if epoch < 0:
        raise ReproError(f"epoch must be non-negative, got {epoch}")
    if model.activity_sigma_v == 0:
        return np.zeros(placed.num_rows)
    xs, ys = row_positions_um(placed)
    rng = np.random.default_rng([seed, epoch])
    field_v = sample_correlated_field(
        model.spatial_model(), rng, 1, xs, ys,
        placed.floorplan.core_width_um, placed.floorplan.core_height_um)
    return field_v[0]


def row_dvth_epochs(placed: PlacedDesign, model: DriftModel, seed: int,
                    num_epochs: int) -> np.ndarray:
    """Cumulative per-row threshold shifts, ``(num_epochs, num_rows)``.

    Row ``r`` of epoch ``e`` is the NBTI mean at age ``(e+1) *
    epoch_years`` plus the running sum of the first ``e+1`` stochastic
    increments, clamped non-negative.
    """
    if num_epochs <= 0:
        raise ReproError(f"num_epochs must be positive, got {num_epochs}")
    increments = np.stack([epoch_increment_v(placed, model, seed, e)
                           for e in range(num_epochs)])
    means = np.array([model.mean_dvth_v(e) for e in range(num_epochs)])
    dvth = means[:, None] + np.cumsum(increments, axis=0)
    return np.maximum(dvth, 0.0)


def row_betas_epochs(placed: PlacedDesign, tech: Technology,
                     model: DriftModel, seed: int,
                     num_epochs: int) -> np.ndarray:
    """Per-row slowdown coefficients per epoch, ``(num_epochs, num_rows)``.

    Threshold shifts from :func:`row_dvth_epochs` mapped through the
    alpha-power delay sensitivity; each row of the result is a
    ``row_betas`` field ready for :func:`repro.core.problem.build_problem`
    or the ECO re-solver.
    """
    dvth = row_dvth_epochs(placed, model, seed, num_epochs)
    betas = delay_multipliers_for_dvth(tech, dvth) - 1.0
    return np.maximum(betas, 0.0)
