"""Variability models: process, temperature, aging, Monte Carlo (the
die populations the paper's Sec. 3 tuning loop compensates)."""

from repro.variation.aging import SECONDS_PER_YEAR, NbtiModel
from repro.variation.drift import (DriftModel, epoch_increment_v,
                                   row_betas_epochs, row_dvth_epochs,
                                   row_positions_um)
from repro.variation.montecarlo import (STA_ENGINES, DieSample,
                                        MonteCarloResult, sample_dies)
from repro.variation.process import (ProcessModel, delay_multiplier_for_dvth,
                                     delay_multipliers_for_dvth,
                                     gate_delay_scales,
                                     sample_correlated_field,
                                     sample_inter_die_dvth,
                                     sample_intra_die_dvth,
                                     sample_intra_die_dvth_matrix,
                                     sample_scale_matrix)
from repro.variation.temperature import (REFERENCE_TEMPERATURE_K,
                                         TemperatureModel)

__all__ = [
    "DieSample",
    "DriftModel",
    "MonteCarloResult",
    "NbtiModel",
    "ProcessModel",
    "REFERENCE_TEMPERATURE_K",
    "SECONDS_PER_YEAR",
    "STA_ENGINES",
    "TemperatureModel",
    "delay_multiplier_for_dvth",
    "delay_multipliers_for_dvth",
    "epoch_increment_v",
    "gate_delay_scales",
    "row_betas_epochs",
    "row_dvth_epochs",
    "row_positions_um",
    "sample_correlated_field",
    "sample_dies",
    "sample_inter_die_dvth",
    "sample_intra_die_dvth",
    "sample_intra_die_dvth_matrix",
    "sample_scale_matrix",
]
