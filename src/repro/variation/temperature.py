"""Temperature-induced timing and leakage variation.

At nanometre nodes higher temperature slows gates (mobility loss beats
the Vth drop at nominal supply) and grows subthreshold leakage steeply.
The paper cites temperature compensation via ABB [4] as one of the
dynamic effects its tuning loop addresses; the examples use this model
to generate thermally-induced slowdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

#: characterization reference temperature, kelvin
REFERENCE_TEMPERATURE_K = 300.0


@dataclass(frozen=True)
class TemperatureModel:
    """First-order temperature coefficients for a 45 nm-like node."""

    delay_tc_per_k: float = 8.0e-4
    """Fractional delay increase per kelvin above reference."""

    leakage_doubling_k: float = 25.0
    """Temperature rise that doubles subthreshold leakage."""

    def __post_init__(self) -> None:
        if self.delay_tc_per_k < 0:
            raise ReproError("delay temperature coefficient must be >= 0")
        if self.leakage_doubling_k <= 0:
            raise ReproError("leakage doubling interval must be positive")

    def delay_multiplier(self, temperature_k: float) -> float:
        """Gate-delay multiplier at an operating temperature."""
        if temperature_k <= 0:
            raise ReproError(f"bad temperature {temperature_k}")
        delta = temperature_k - REFERENCE_TEMPERATURE_K
        return max(1.0 + self.delay_tc_per_k * delta, 0.5)

    def slowdown_beta(self, temperature_k: float) -> float:
        """The equivalent slowdown coefficient beta at a temperature."""
        return max(self.delay_multiplier(temperature_k) - 1.0, 0.0)

    def leakage_multiplier(self, temperature_k: float) -> float:
        """Subthreshold-leakage multiplier at an operating temperature."""
        if temperature_k <= 0:
            raise ReproError(f"bad temperature {temperature_k}")
        delta = temperature_k - REFERENCE_TEMPERATURE_K
        return math.pow(2.0, delta / self.leakage_doubling_k)
