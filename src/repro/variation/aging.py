"""NBTI transistor aging model.

Negative-bias temperature instability shifts PMOS thresholds over the
operating lifetime, slowing the circuit — the paper cites Mitra's
failure-prediction work [3] and positions FBB as the recovery knob.
The standard long-term NBTI model is a fractional power law:

    dVth(t) = A * (t / t0) ** n        with n ~ 0.16

mapped to a delay multiplier via the same alpha-power sensitivity used
for process shifts.  The aging-compensation example re-tunes a design
year by year against this drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.tech.technology import Technology
from repro.variation.process import delay_multiplier_for_dvth

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class NbtiModel:
    """Power-law NBTI threshold drift."""

    prefactor_v: float = 0.032
    """dVth after one reference period (t0), volts."""

    exponent: float = 0.16
    reference_s: float = SECONDS_PER_YEAR

    def __post_init__(self) -> None:
        if self.prefactor_v < 0:
            raise ReproError("NBTI prefactor must be non-negative")
        if not 0 < self.exponent < 1:
            raise ReproError("NBTI exponent must be in (0, 1)")
        if self.reference_s <= 0:
            raise ReproError("reference period must be positive")

    def dvth_v(self, stress_s: float) -> float:
        """Threshold shift after a stress time, volts."""
        if stress_s < 0:
            raise ReproError(f"negative stress time {stress_s}")
        if stress_s == 0:
            return 0.0
        return self.prefactor_v * (stress_s / self.reference_s) ** self.exponent

    def dvth_after_years(self, years: float) -> float:
        """Threshold shift after ``years`` of stress, volts.

        Convenience wrapper over :meth:`dvth_v` used by the epoch-based
        drift process (:mod:`repro.variation.drift`), which counts age
        in years rather than seconds.
        """
        if years < 0:
            raise ReproError(f"negative stress age {years} years")
        return self.dvth_v(years * SECONDS_PER_YEAR)

    def delay_multiplier(self, tech: Technology, stress_s: float) -> float:
        """Circuit delay multiplier after a stress time."""
        return delay_multiplier_for_dvth(tech, self.dvth_v(stress_s))

    def beta_after_years(self, tech: Technology, years: float) -> float:
        """Equivalent slowdown coefficient beta after ``years``."""
        return self.slowdown_beta(tech, years * SECONDS_PER_YEAR)

    def slowdown_beta(self, tech: Technology, stress_s: float) -> float:
        """Equivalent slowdown coefficient beta after a stress time."""
        return self.delay_multiplier(tech, stress_s) - 1.0

    def years_to_beta(self, tech: Technology, beta: float,
                      resolution_years: float = 0.05) -> float:
        """Years of stress until the slowdown reaches ``beta``."""
        if beta <= 0:
            return 0.0
        years = resolution_years
        while years < 100.0:
            if self.slowdown_beta(tech, years * SECONDS_PER_YEAR) >= beta:
                return years
            years += resolution_years
        raise ReproError(f"beta {beta} not reached within 100 years")
