"""Monte Carlo die sampling for the post-silicon-tuning experiments.

Draws a population of dies from the process model, measures each die's
effective slowdown with STA, and reports the betas a tuning loop must
compensate.  This is the synthetic stand-in for the paper's
fabricated-die population (see DESIGN.md, "Paper-to-code
substitutions").

Two measurement engines share one vectorized sampling path (all dies'
gate scales are drawn as a single ``(num_dies, num_gates)`` matrix):

* ``"batched"`` (default) — one array sweep through
  :class:`repro.sta.batched.BatchedTimingAnalyzer`, fast enough for
  10k+ die populations;
* ``"scalar"`` — one dict-based :class:`TimingAnalyzer` run per die,
  the validated ground truth the batched engine is cross-checked
  against (DESIGN.md, "Scalar vs batched STA: the validation
  contract").

Both engines see identical scale matrices, so their betas agree
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.placement.placed_design import PlacedDesign
from repro.sta.batched import BatchedTimingAnalyzer
from repro.sta.engine import TimingAnalyzer
from repro.variation.process import ProcessModel, sample_scale_matrix

#: supported slowdown-measurement engines for :func:`sample_dies`
STA_ENGINES = ("batched", "scalar")


@dataclass(frozen=True)
class DieSample:
    """One sampled die."""

    index: int
    beta: float
    """Effective slowdown: critical delay ratio to nominal, minus 1."""
    gate_scales: dict[str, float]
    """Per-gate delay multipliers (empty when sampled with
    ``store_scales=False``; use ``MonteCarloResult.gate_scales_of``)."""

    @property
    def is_slow(self) -> bool:
        return self.beta > 0


@dataclass(frozen=True, eq=False)
class MonteCarloResult:
    """A sampled die population."""

    samples: tuple[DieSample, ...]
    nominal_delay_ps: float
    gate_names: tuple[str, ...] = ()
    """Column order of ``scale_matrix`` (compiled topological order)."""
    scale_matrix: np.ndarray | None = None
    """All dies' gate delay scales, shape (num_dies, num_gates)."""
    engine: str = "batched"
    betas: np.ndarray = field(default_factory=lambda: np.zeros(0))
    """Per-die slowdowns, shape (num_dies,)."""

    def __post_init__(self) -> None:
        # Direct construction may omit betas; derive them from the
        # samples so the old property-based contract keeps holding.
        if len(self.betas) != len(self.samples):
            object.__setattr__(
                self, "betas",
                np.array([sample.beta for sample in self.samples]))

    @property
    def num_dies(self) -> int:
        return len(self.samples)

    def gate_scales_of(self, index: int) -> dict[str, float]:
        """One die's name->scale mapping, rebuilt from the matrix."""
        if self.scale_matrix is None:
            raise ReproError("population was sampled without a scale matrix")
        return dict(zip(self.gate_names,
                        self.scale_matrix[index].tolist()))

    def slow_dies(self, beta_threshold: float = 0.0) -> list[DieSample]:
        """Dies slower than the threshold — the tuning candidates."""
        return [sample for sample in self.samples
                if sample.beta > beta_threshold]

    def timing_yield(self, beta_budget: float = 0.0) -> float:
        """Fraction of dies meeting timing within the given margin.

        An empty population yields 1.0 by convention (no die failed),
        rather than the NaN-plus-``RuntimeWarning`` that ``np.mean``
        emits on an empty array.
        """
        if self.betas.size == 0:
            return 1.0
        return float(np.mean(self.betas <= beta_budget))


def sample_dies(placed: PlacedDesign, num_dies: int,
                model: ProcessModel | None = None,
                seed: int = 0,
                engine: str = "batched",
                store_scales: bool = True) -> MonteCarloResult:
    """Draw a die population and measure each die's slowdown via STA.

    ``engine`` selects the measurement path (see module docstring);
    ``store_scales=False`` skips materialising the per-die scale dicts,
    which large populations (10k+ dies) neither need nor can afford.
    """
    if num_dies <= 0:
        raise ReproError(f"num_dies must be positive, got {num_dies}")
    if engine not in STA_ENGINES:
        raise ReproError(
            f"unknown STA engine {engine!r}; pick one of {STA_ENGINES}")
    if model is None:
        model = ProcessModel()
    rng = np.random.default_rng(seed)
    analyzer = TimingAnalyzer.for_placed(placed)
    batched = BatchedTimingAnalyzer(analyzer)
    nominal = analyzer.critical_delay_ps()

    scale_matrix = sample_scale_matrix(placed, model, rng, num_dies,
                                       batched.gate_names)
    if engine == "batched":
        criticals = batched.critical_delays(scale_matrix)
    else:
        criticals = np.array([
            analyzer.critical_delay_ps(batched.mapping_of_row(row))
            for row in scale_matrix])
    betas = criticals / nominal - 1.0

    samples = tuple(
        DieSample(index=index, beta=float(betas[index]),
                  gate_scales=(batched.mapping_of_row(row)
                               if store_scales else {}))
        for index, row in enumerate(scale_matrix))
    return MonteCarloResult(samples=samples,
                            nominal_delay_ps=nominal,
                            gate_names=batched.gate_names,
                            scale_matrix=scale_matrix,
                            engine=engine,
                            betas=betas)
