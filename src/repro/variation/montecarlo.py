"""Monte Carlo die sampling for the post-silicon-tuning experiments.

Draws a population of dies from the process model, measures each die's
effective slowdown with full STA, and reports the betas a tuning loop
must compensate.  This is the synthetic stand-in for the paper's
fabricated-die population (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.placement.placed_design import PlacedDesign
from repro.sta.engine import TimingAnalyzer
from repro.variation.process import ProcessModel, gate_delay_scales


@dataclass(frozen=True)
class DieSample:
    """One sampled die."""

    index: int
    beta: float
    """Effective slowdown: critical delay ratio to nominal, minus 1."""
    gate_scales: dict[str, float]

    @property
    def is_slow(self) -> bool:
        return self.beta > 0


@dataclass(frozen=True)
class MonteCarloResult:
    """A sampled die population."""

    samples: tuple[DieSample, ...]
    nominal_delay_ps: float

    @property
    def betas(self) -> np.ndarray:
        return np.array([sample.beta for sample in self.samples])

    def slow_dies(self, beta_threshold: float = 0.0) -> list[DieSample]:
        """Dies slower than the threshold — the tuning candidates."""
        return [sample for sample in self.samples
                if sample.beta > beta_threshold]

    def timing_yield(self, beta_budget: float = 0.0) -> float:
        """Fraction of dies meeting timing within the given margin."""
        return float(np.mean(self.betas <= beta_budget))


def sample_dies(placed: PlacedDesign, num_dies: int,
                model: ProcessModel | None = None,
                seed: int = 0) -> MonteCarloResult:
    """Draw a die population and measure each die's slowdown via STA."""
    if num_dies <= 0:
        raise ReproError(f"num_dies must be positive, got {num_dies}")
    if model is None:
        model = ProcessModel()
    rng = np.random.default_rng(seed)
    analyzer = TimingAnalyzer.for_placed(placed)
    nominal = analyzer.critical_delay_ps()

    samples = []
    for index in range(num_dies):
        scales = gate_delay_scales(placed, model, rng)
        critical = analyzer.critical_delay_ps(scales)
        samples.append(DieSample(
            index=index,
            beta=critical / nominal - 1.0,
            gate_scales=scales,
        ))
    return MonteCarloResult(samples=tuple(samples),
                            nominal_delay_ps=nominal)
