"""DEF (Design Exchange Format) writer and parser for the paper's
Sec. 3.3 clustered placements.

Serialises a :class:`repro.placement.placed_design.PlacedDesign`:
DIEAREA, ROW statements (one per standard-cell row), COMPONENTS with
placed coordinates, PINS for the primary I/O, and optionally SPECIALNETS
carrying the body-bias rails (written by :mod:`repro.layout.routing`).

Coordinates use a 1000 DBU/micron grid, the common convention.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParseError, PlacementError
from repro.netlist.core import Netlist
from repro.placement.floorplan import Floorplan, Row
from repro.placement.placed_design import PlacedDesign, Placement
from repro.tech.cells import CellLibrary

DBU_PER_MICRON = 1000


def _dbu(value_um: float) -> int:
    return int(round(value_um * DBU_PER_MICRON))


@dataclass
class SpecialNet:
    """A routed special net (bias rail): name + list of rect segments."""

    name: str
    layer: str
    rects_um: list[tuple[float, float, float, float]] = field(
        default_factory=list)


def write_def(design: PlacedDesign, path: str | Path,
              special_nets: list[SpecialNet] | None = None) -> None:
    """Write a DEF file for a placed design."""
    netlist = design.netlist
    floorplan = design.floorplan
    tech = design.library.tech
    lines = [
        "VERSION 5.7 ;",
        "DIVIDERCHAR \"/\" ;",
        "BUSBITCHARS \"[]\" ;",
        f"DESIGN {netlist.name} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;",
        f"DIEAREA ( 0 0 ) ( {_dbu(floorplan.core_width_um)}"
        f" {_dbu(floorplan.core_height_um)} ) ;",
        "",
    ]
    for row in floorplan.rows:
        orient = "N" if row.index % 2 == 0 else "FS"
        lines.append(
            f"ROW row_{row.index} core 0 {_dbu(row.y_um)} {orient} "
            f"DO {row.num_sites} BY 1 STEP {_dbu(row.site_width_um)} 0 ;")
    lines.append("")

    lines.append(f"COMPONENTS {netlist.num_gates} ;")
    for name in sorted(netlist.gates):
        gate = netlist.gates[name]
        placement = design.placement(name)
        x_um, y_um = design.gate_position_um(name)
        orient = "N" if placement.row % 2 == 0 else "FS"
        lines.append(
            f"  - {name} {gate.cell_name} + PLACED"
            f" ( {_dbu(x_um)} {_dbu(y_um)} ) {orient} ;")
    lines.append("END COMPONENTS")
    lines.append("")

    num_pins = len(netlist.primary_inputs) + len(netlist.primary_outputs)
    lines.append(f"PINS {num_pins} ;")
    for net in netlist.primary_inputs:
        lines.append(f"  - {net} + NET {net} + DIRECTION INPUT"
                     " + USE SIGNAL ;")
    for net in netlist.primary_outputs:
        lines.append(f"  - {net} + NET {net} + DIRECTION OUTPUT"
                     " + USE SIGNAL ;")
    lines.append("END PINS")
    lines.append("")

    if special_nets:
        lines.append(f"SPECIALNETS {len(special_nets)} ;")
        for snet in special_nets:
            lines.append(f"  - {snet.name}")
            for (x1, y1, x2, y2) in snet.rects_um:
                lines.append(
                    f"    + ROUTED {snet.layer} 0 + RECT"
                    f" ( {_dbu(x1)} {_dbu(y1)} ) ( {_dbu(x2)} {_dbu(y2)} )")
            lines.append("    + USE POWER ;")
        lines.append("END SPECIALNETS")
        lines.append("")

    lines.append("END DESIGN")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


_ROW_RE = re.compile(
    r"^ROW\s+(\S+)\s+(\S+)\s+(-?\d+)\s+(-?\d+)\s+\S+\s+DO\s+(\d+)\s+BY\s+1"
    r"\s+STEP\s+(\d+)\s+\d+\s*;$")
_COMPONENT_RE = re.compile(
    r"^-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
    r"\s+(\S+)\s*;$")
_RECT_RE = re.compile(
    r"\+\s+ROUTED\s+(\S+)\s+\d+\s+\+\s+RECT\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
    r"\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)")


@dataclass
class DefDesign:
    """Parsed DEF content, resolvable back into a PlacedDesign."""

    design_name: str
    die_width_um: float
    die_height_um: float
    rows: list[tuple[str, float, int, float]]
    """(name, y_um, num_sites, site_width_um), bottom-up order."""
    components: dict[str, tuple[str, float, float]]
    """instance -> (cell name, x_um, y_um)."""
    pins: list[str]
    special_nets: list[SpecialNet]


def read_def(path: str | Path) -> DefDesign:
    """Parse a DEF file written by :func:`write_def` (subset grammar)."""
    filename = str(path)
    text = Path(path).read_text(encoding="ascii")
    design_name = None
    die = None
    rows: list[tuple[str, float, int, float]] = []
    components: dict[str, tuple[str, float, float]] = {}
    pins: list[str] = []
    special_nets: list[SpecialNet] = []
    section = None
    current_snet: SpecialNet | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("DESIGN ") and section is None:
            design_name = line.split()[1]
            continue
        if line.startswith("DIEAREA"):
            numbers = re.findall(r"-?\d+", line)
            if len(numbers) != 4:
                raise ParseError("bad DIEAREA", filename, lineno)
            die = (int(numbers[2]) / DBU_PER_MICRON,
                   int(numbers[3]) / DBU_PER_MICRON)
            continue
        if line.startswith("ROW "):
            match = _ROW_RE.match(line)
            if not match:
                raise ParseError(f"bad ROW statement: {line!r}",
                                 filename, lineno)
            name, _site, _x, y_dbu, num_sites, step = match.groups()
            rows.append((name, int(y_dbu) / DBU_PER_MICRON,
                         int(num_sites), int(step) / DBU_PER_MICRON))
            continue
        if line.startswith("COMPONENTS"):
            section = "components"
            continue
        if line.startswith("END COMPONENTS"):
            section = None
            continue
        if line.startswith("PINS"):
            section = "pins"
            continue
        if line.startswith("END PINS"):
            section = None
            continue
        if line.startswith("SPECIALNETS"):
            section = "specialnets"
            continue
        if line.startswith("END SPECIALNETS"):
            if current_snet is not None:
                special_nets.append(current_snet)
                current_snet = None
            section = None
            continue
        if line.startswith("END DESIGN"):
            break
        if section == "components":
            match = _COMPONENT_RE.match(line)
            if not match:
                raise ParseError(f"bad COMPONENT line: {line!r}",
                                 filename, lineno)
            inst, cell, x_dbu, y_dbu, _orient = match.groups()
            components[inst] = (cell, int(x_dbu) / DBU_PER_MICRON,
                                int(y_dbu) / DBU_PER_MICRON)
            continue
        if section == "pins":
            if line.startswith("- "):
                pins.append(line.split()[1])
            continue
        if section == "specialnets":
            if line.startswith("- "):
                if current_snet is not None:
                    special_nets.append(current_snet)
                current_snet = SpecialNet(name=line.split()[1], layer="")
                continue
            match = _RECT_RE.search(line)
            if match and current_snet is not None:
                layer, x1, y1, x2, y2 = match.groups()
                current_snet.layer = layer
                current_snet.rects_um.append(
                    (int(x1) / DBU_PER_MICRON, int(y1) / DBU_PER_MICRON,
                     int(x2) / DBU_PER_MICRON, int(y2) / DBU_PER_MICRON))
            continue

    if design_name is None:
        raise ParseError("DEF file lacks DESIGN statement", filename)
    if die is None:
        raise ParseError("DEF file lacks DIEAREA", filename)
    if not rows:
        raise ParseError("DEF file has no ROW statements", filename)
    return DefDesign(design_name=design_name, die_width_um=die[0],
                     die_height_um=die[1], rows=rows,
                     components=components, pins=pins,
                     special_nets=special_nets)


def rebuild_placed_design(parsed: DefDesign, netlist: Netlist,
                          library: CellLibrary) -> PlacedDesign:
    """Reconstruct a PlacedDesign from parsed DEF + the original netlist."""
    tech = library.tech
    rows = tuple(
        Row(index=i, y_um=y, num_sites=sites, site_width_um=step)
        for i, (_name, y, sites, step) in enumerate(
            sorted(parsed.rows, key=lambda r: r[1])))
    floorplan = Floorplan(tech=tech, rows=rows, utilization_target=1.0)
    y_to_row = {row.y_um: row.index for row in rows}

    placements: dict[str, Placement] = {}
    for inst, (cell_name, x_um, y_um) in parsed.components.items():
        if inst not in netlist.gates:
            raise PlacementError(f"DEF component {inst!r} not in netlist")
        row_index = y_to_row.get(round(y_um, 6))
        if row_index is None:
            # tolerate small rounding: match nearest row
            nearest = min(rows, key=lambda r: abs(r.y_um - y_um))
            if abs(nearest.y_um - y_um) > 1e-3:
                raise PlacementError(
                    f"component {inst!r} y={y_um} not on any row")
            row_index = nearest.index
        site = int(round(x_um / rows[row_index].site_width_um))
        placements[inst] = Placement(
            row=row_index, site=site,
            width_sites=library.cell(cell_name).width_sites)
        netlist.gates[inst].cell_name = cell_name

    design = PlacedDesign(netlist=netlist, library=library,
                          floorplan=floorplan, placements=placements)
    design.validate()
    return design
