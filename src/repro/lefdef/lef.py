"""LEF (Library Exchange Format) writer and parser for the paper's
reduced cell library (Sec. 5 characterization).

Covers the subset a physical-design exchange for this flow needs: the
placement SITE, routing LAYERs (including the top metal that carries the
body-bias rails), and one MACRO per standard cell with size and pin
names.  Written files round-trip through :func:`read_lef`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParseError
from repro.netlist.verilog import input_pin_names, output_pin_name
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology


@dataclass(frozen=True)
class LefMacro:
    """One MACRO block: a cell abstract."""

    name: str
    width_um: float
    height_um: float
    pins: tuple[str, ...]
    site: str = "core"


@dataclass
class LefLibrary:
    """Parsed LEF content."""

    site_name: str
    site_width_um: float
    site_height_um: float
    layers: tuple[str, ...] = ()
    macros: dict[str, LefMacro] = field(default_factory=dict)

    def macro(self, name: str) -> LefMacro:
        try:
            return self.macros[name]
        except KeyError:
            raise ParseError(f"no macro {name!r} in LEF library") from None


#: routing stack written into generated LEF files
DEFAULT_LAYERS = ("metal1", "metal2", "metal3", "metal4", "metal5",
                  "metal6", "metal7")


def write_lef(library: CellLibrary, path: str | Path,
              site_name: str = "core") -> None:
    """Write a LEF file describing the site, layers and all cells."""
    tech = library.tech
    lines = [
        "VERSION 5.7 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
        "UNITS",
        "  DATABASE MICRONS 1000 ;",
        "END UNITS",
        "",
        f"SITE {site_name}",
        "  CLASS CORE ;",
        f"  SIZE {tech.site_width_um:.4f} BY {tech.row_height_um:.4f} ;",
        "  SYMMETRY Y ;",
        f"END {site_name}",
        "",
    ]
    for layer in DEFAULT_LAYERS:
        direction = "HORIZONTAL" if int(layer[-1]) % 2 else "VERTICAL"
        lines += [
            f"LAYER {layer}",
            "  TYPE ROUTING ;",
            f"  DIRECTION {direction} ;",
            f"END {layer}",
            "",
        ]
    for name in library.cell_names:
        cell = library.cell(name)
        pins = list(input_pin_names(cell.function))
        if cell.is_sequential:
            pins.append("CK")
        pins.append(output_pin_name(cell.function))
        lines += [
            f"MACRO {name}",
            "  CLASS CORE ;",
            "  ORIGIN 0 0 ;",
            f"  SIZE {cell.width_um(tech):.4f} BY"
            f" {tech.row_height_um:.4f} ;",
            "  SYMMETRY X Y ;",
            f"  SITE {site_name} ;",
        ]
        for pin in pins:
            use = "CLOCK" if pin == "CK" else "SIGNAL"
            direction = ("OUTPUT" if pin in ("ZN", "Q") else "INPUT")
            lines += [
                f"  PIN {pin}",
                f"    DIRECTION {direction} ;",
                f"    USE {use} ;",
                f"  END {pin}",
            ]
        lines += [f"END {name}", ""]
    lines.append("END LIBRARY")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_lef(path: str | Path) -> LefLibrary:
    """Parse a LEF file written by :func:`write_lef` (subset grammar)."""
    filename = str(path)
    tokens_per_line = [
        (lineno, raw.strip())
        for lineno, raw in enumerate(
            Path(path).read_text(encoding="ascii").splitlines(), start=1)
        if raw.strip()]

    site_name: str | None = None
    site_width = site_height = None
    layers: list[str] = []
    macros: dict[str, LefMacro] = {}

    index = 0
    current_block: list[str] = []  # stack of (kind, name)
    macro_name: str | None = None
    macro_size: tuple[float, float] | None = None
    macro_pins: list[str] = []
    macro_site = "core"

    while index < len(tokens_per_line):
        lineno, line = tokens_per_line[index]
        index += 1
        words = line.split()
        keyword = words[0].upper()

        if keyword == "SITE" and not current_block and len(words) == 2:
            site_name = words[1]
            current_block.append("SITE")
        elif keyword == "LAYER" and not current_block:
            layers.append(words[1])
            current_block.append("LAYER")
        elif keyword == "MACRO":
            if current_block:
                raise ParseError("nested MACRO", filename, lineno)
            macro_name = words[1]
            macro_size = None
            macro_pins = []
            macro_site = "core"
            current_block.append("MACRO")
        elif keyword == "PIN" and current_block and current_block[-1] == "MACRO":
            macro_pins.append(words[1])
            current_block.append("PIN")
        elif keyword == "SIZE":
            try:
                width = float(words[1])
                height = float(words[3])
            except (IndexError, ValueError) as exc:
                raise ParseError(f"bad SIZE line: {line!r}", filename,
                                 lineno) from exc
            if current_block and current_block[-1] == "SITE":
                site_width, site_height = width, height
            elif current_block and current_block[-1] == "MACRO":
                macro_size = (width, height)
        elif keyword == "SITE" and current_block and current_block[-1] == "MACRO":
            macro_site = words[1].rstrip(";").strip() or "core"
        elif keyword == "END":
            if len(words) == 1:
                continue
            target = words[1]
            if target == "LIBRARY" or target == "UNITS":
                continue
            if not current_block:
                raise ParseError(f"unmatched END {target}", filename, lineno)
            kind = current_block.pop()
            if kind == "MACRO":
                if macro_name is None or macro_size is None:
                    raise ParseError(
                        f"macro {target!r} missing SIZE", filename, lineno)
                macros[macro_name] = LefMacro(
                    name=macro_name, width_um=macro_size[0],
                    height_um=macro_size[1], pins=tuple(macro_pins),
                    site=macro_site)
                macro_name = None
        # all other lines (CLASS, ORIGIN, SYMMETRY, DIRECTION...) are
        # accepted and ignored by this subset reader

    if site_name is None or site_width is None or site_height is None:
        raise ParseError("LEF file lacks a SITE definition", filename)
    return LefLibrary(site_name=site_name, site_width_um=site_width,
                      site_height_um=site_height, layers=tuple(layers),
                      macros=macros)


def validate_against_library(lef: LefLibrary, library: CellLibrary) -> None:
    """Cross-check parsed LEF geometry against a cell library."""
    tech: Technology = library.tech
    if abs(lef.site_width_um - tech.site_width_um) > 1e-6:
        raise ParseError(
            f"LEF site width {lef.site_width_um} != technology "
            f"{tech.site_width_um}")
    for name in library.cell_names:
        macro = lef.macro(name)
        expected = library.cell(name).width_um(tech)
        if abs(macro.width_um - expected) > 1e-3:
            raise ParseError(
                f"macro {name!r}: width {macro.width_um} != {expected}")
