"""LEF/DEF physical-design interchange for the paper's Sec. 3.3
clustered layouts."""

from repro.lefdef.def_io import (DBU_PER_MICRON, DefDesign, SpecialNet,
                                 read_def, rebuild_placed_design, write_def)
from repro.lefdef.lef import (LefLibrary, LefMacro, read_lef,
                              validate_against_library, write_lef)

__all__ = [
    "DBU_PER_MICRON",
    "DefDesign",
    "LefLibrary",
    "LefMacro",
    "SpecialNet",
    "read_def",
    "read_lef",
    "rebuild_placed_design",
    "validate_against_library",
    "write_def",
    "write_lef",
]
