"""Batched array-based STA over whole die populations (scales the
paper's Sec. 3.1 die-measurement step to Monte Carlo size).

The scalar :class:`~repro.sta.engine.TimingAnalyzer` walks the netlist
with Python dicts — perfect as ground truth, far too slow when the
Monte Carlo and tuning layers need the critical delay of *thousands* of
process-sampled dies.  This module compiles the netlist once into numpy
index arrays and then propagates arrivals for an entire
``(num_dies, num_gates)`` matrix of per-gate delay scales in one
vectorized sweep per logic level:

* **Compile** — topological order, per-gate fanin driver indices
  (padded with a sentinel column whose arrival is pinned to 0, matching
  the scalar engine's ``latest_input = 0.0`` start), logic levels, base
  delays from the shared :class:`~repro.sta.delay.DelayCalculator`, and
  the endpoint driver/setup vectors.
* **Propagate** — for each level, one fancy-index gather + ``max`` over
  fanins + add of the effective delays, vectorized across all dies.
* **Report** — per-die endpoint delays, critical delays and slacks.

The arithmetic is ordered exactly like the scalar engine
(``base * derate * scale``, max-reduce over fanins, ``arrival + setup``)
so per-die results are bit-for-bit reproducible against
``TimingAnalyzer.analyze`` — the validation contract spelled out in
DESIGN.md ("Scalar vs batched STA: the validation contract") and
enforced by ``tests/sta/test_batched.py``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import TimingError
from repro.placement.placed_design import PlacedDesign
from repro.sta.engine import Endpoint, TimingAnalyzer

#: default number of dies propagated per sweep; bounds peak memory at
#: roughly ``chunk * num_gates * 8`` bytes without changing any result
#: (and keeps the per-level gathers cache-resident — measured ~2x
#: faster than 4096+ chunks at 10k dies)
DEFAULT_CHUNK_DIES = 1024

#: dirty-gate fraction above which :meth:`BatchedTimingAnalyzer.refine`
#: abandons the incremental path and re-propagates everything — the
#: per-level sub-gathers stop paying for themselves once most of the
#: netlist is dirty anyway
DEFAULT_REFINE_FALLBACK = 0.5


@dataclass(frozen=True)
class BatchTimingReport:
    """STA results for a whole die population."""

    gate_names: tuple[str, ...]
    """Gate order of the matrix columns (compiled topological order)."""
    endpoints: tuple[Endpoint, ...]
    arrival_ps: np.ndarray
    """Latest arrival at each gate output, shape (num_dies, num_gates)."""
    gate_delay_ps: np.ndarray
    """Effective per-gate delays used, shape (num_dies, num_gates)."""
    endpoint_delay_ps: np.ndarray
    """Path delay at each endpoint, shape (num_dies, num_endpoints)."""
    critical_delay_ps: np.ndarray
    """Per-die Dcrit, shape (num_dies,)."""

    @property
    def num_dies(self) -> int:
        return len(self.critical_delay_ps)

    def slack_ps(self, required_ps: float) -> np.ndarray:
        """Endpoint slacks against a required time, (num_dies, num_eps)."""
        return required_ps - self.endpoint_delay_ps

    def worst_endpoints(self) -> list[Endpoint]:
        """Each die's critical endpoint."""
        worst = np.argmax(self.endpoint_delay_ps, axis=1)
        return [self.endpoints[index] for index in worst]

    def meets(self, required_ps: float) -> np.ndarray:
        """Per-die boolean: every endpoint meets the required time."""
        return self.critical_delay_ps <= required_ps + 1e-9


class BatchedTimingAnalyzer:
    """Array STA engine compiled from a scalar :class:`TimingAnalyzer`.

    The scalar analyzer stays the single source of netlist/delay truth:
    this class only reindexes its structures, so both engines always
    price the same design state.
    """

    def __init__(self, analyzer: TimingAnalyzer) -> None:
        self.analyzer = analyzer
        netlist = analyzer.netlist
        order = netlist.topological_order()
        self.gate_names: tuple[str, ...] = tuple(g.name for g in order)
        self._index = {name: i for i, name in enumerate(self.gate_names)}
        num_gates = len(order)
        self._sentinel = num_gates

        calculator = analyzer.calculator
        self._base_delay_ps = np.array(
            [calculator.gate_delay_ps(name) for name in self.gate_names])

        # Fanin driver indices and logic levels.  Sequential gates launch
        # at clk->Q, i.e. they are sources with no combinational fanin.
        fanins: list[list[int]] = []
        level_of = np.zeros(num_gates, dtype=np.intp)
        for i, gate in enumerate(order):
            drivers: list[int] = []
            if not gate.is_sequential:
                for net_name in gate.inputs:
                    driver = netlist.nets[net_name].driver
                    if driver is not None:
                        drivers.append(self._index[driver])
            fanins.append(drivers)
            level_of[i] = (1 + max(level_of[d] for d in drivers)
                           if drivers else 0)

        # One (gate-index vector, padded fanin block) pair per level.
        self._level_blocks: list[tuple[np.ndarray, np.ndarray]] = []
        num_levels = int(level_of.max()) + 1 if num_gates else 0
        for level in range(num_levels):
            members = np.nonzero(level_of == level)[0]
            width = max(max((len(fanins[i]) for i in members), default=0), 1)
            block = np.full((len(members), width), self._sentinel,
                            dtype=np.intp)
            for row, i in enumerate(members):
                block[row, :len(fanins[i])] = fanins[i]
            self._level_blocks.append((members, block))

        endpoints = analyzer.endpoints
        self.endpoints: tuple[Endpoint, ...] = tuple(endpoints)
        driver_indices = []
        for endpoint in endpoints:
            if endpoint.kind == "po":
                driver = netlist.nets[endpoint.name].driver
            else:
                data_net = netlist.gates[endpoint.name].inputs[0]
                driver = netlist.nets[data_net].driver
            driver_indices.append(self._index[driver]
                                  if driver is not None else self._sentinel)
        self._endpoint_driver = np.array(driver_indices, dtype=np.intp)
        self._endpoint_setup_ps = np.array(
            [endpoint.setup_ps for endpoint in endpoints])

    @classmethod
    def for_placed(cls, placed: PlacedDesign) -> "BatchedTimingAnalyzer":
        return cls(TimingAnalyzer.for_placed(placed))

    @property
    def num_gates(self) -> int:
        return len(self.gate_names)

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoints)

    # -- scale-matrix helpers ----------------------------------------------------

    def gate_index(self, gate_name: str) -> int:
        """Column index of a gate in the scale/arrival matrices."""
        try:
            return self._index[gate_name]
        except KeyError:
            raise TimingError(f"no gate named {gate_name!r}") from None

    def scales_row(self, mapping: Mapping[str, float] | None) -> np.ndarray:
        """One die's name->scale mapping as a (num_gates,) array."""
        row = np.ones(self.num_gates)
        if mapping is not None:
            for name, scale in mapping.items():
                row[self.gate_index(name)] = scale
        return row

    def scales_matrix(
            self,
            mappings: Sequence[Mapping[str, float] | None]) -> np.ndarray:
        """A population of mappings as a (num_dies, num_gates) matrix."""
        if not mappings:
            raise TimingError("need at least one die's scales")
        return np.stack([self.scales_row(m) for m in mappings])

    def mapping_of_row(self, row: np.ndarray) -> dict[str, float]:
        """Invert one matrix row back into the scalar engine's mapping."""
        row = np.asarray(row)
        if row.shape != (self.num_gates,):
            raise TimingError(
                f"scale row must have shape ({self.num_gates},), "
                f"got {row.shape}")
        return dict(zip(self.gate_names, row.tolist()))

    # -- core analysis -----------------------------------------------------------

    def _check_inputs(self, scales: np.ndarray | None,
                      derate: float | np.ndarray,
                      num_dies: int | None
                      ) -> tuple[np.ndarray | None, np.ndarray, int]:
        """Validate scales/derate and resolve the die count."""
        derate_arr = np.asarray(derate, dtype=float)
        if derate_arr.ndim > 1:
            raise TimingError("derate must be a scalar or a 1-D array")
        if np.any(derate_arr <= 0):
            raise TimingError(f"derate must be positive, got {derate}")

        implied: int | None = None
        if scales is not None:
            scales = np.asarray(scales, dtype=float)
            if scales.ndim == 1:
                scales = scales[None, :]
            if scales.ndim != 2 or scales.shape[1] != self.num_gates:
                raise TimingError(
                    f"scales must have shape (num_dies, {self.num_gates}), "
                    f"got {scales.shape}")
            implied = scales.shape[0]
        if derate_arr.ndim == 1:
            if implied is not None and implied != len(derate_arr):
                raise TimingError(
                    f"derate has {len(derate_arr)} dies but scales has "
                    f"{implied}")
            implied = implied if implied is not None else len(derate_arr)
        if num_dies is not None and implied is not None \
                and num_dies != implied:
            raise TimingError(
                f"num_dies={num_dies} conflicts with inputs for {implied}")
        dies = num_dies if num_dies is not None else (
            implied if implied is not None else 1)
        if dies < 1:
            raise TimingError("need at least one die")
        return scales, derate_arr, dies

    def _effective_delays(self, scales: np.ndarray | None,
                          derate_arr: np.ndarray, dies: int) -> np.ndarray:
        # Mirror the scalar engine's (base * derate) * scale ordering so
        # results stay bit-for-bit identical.
        if derate_arr.ndim == 0:
            derated = self._base_delay_ps * float(derate_arr)
            derated = np.broadcast_to(derated[None, :],
                                      (dies, self.num_gates))
        else:
            derated = self._base_delay_ps[None, :] * derate_arr[:, None]
        if scales is None:
            return np.ascontiguousarray(derated)
        return derated * scales

    def _propagate(self, effective: np.ndarray) -> np.ndarray:
        """Arrival matrix with the sentinel zero column appended."""
        dies, num_gates = effective.shape
        arrival = np.zeros((dies, num_gates + 1))
        for members, fanin_block in self._level_blocks:
            latest = arrival[:, fanin_block].max(axis=2)
            arrival[:, members] = latest + effective[:, members]
        return arrival

    def dirty_gate_mask(self, changed_gate_mask: np.ndarray) -> np.ndarray:
        """Fan-out closure of a set of changed gates.

        A gate is *dirty* when its own effective delay changed or any of
        its (transitive) fanin gates did — exactly the gates whose
        arrivals a re-propagation may move.  Computed with one gather
        per logic level over the same padded fanin blocks the propagate
        sweep uses (the sentinel column is never dirty, matching its
        pinned zero arrival).
        """
        mask = np.asarray(changed_gate_mask, dtype=bool)
        if mask.shape != (self.num_gates,):
            raise TimingError(
                f"changed_gate_mask must have shape ({self.num_gates},), "
                f"got {mask.shape}")
        dirty = np.zeros(self.num_gates + 1, dtype=bool)
        for members, fanin_block in self._level_blocks:
            dirty[members] = mask[members] | dirty[fanin_block].any(axis=1)
        return dirty[:self.num_gates]

    def refine(self, prev_arrival_ps: np.ndarray,
               changed_gate_mask: np.ndarray,
               scales: np.ndarray | None = None,
               derate: float | np.ndarray = 1.0,
               num_dies: int | None = None,
               fallback_fraction: float = DEFAULT_REFINE_FALLBACK
               ) -> BatchTimingReport:
        """Incremental STA: re-propagate only the dirty fan-out cones.

        ``prev_arrival_ps`` is the ``arrival_ps`` matrix of an earlier
        :meth:`analyze`/:meth:`refine` over the same dies, and
        ``changed_gate_mask`` is a (num_gates,) boolean marking every
        gate whose effective delay may differ between that call and this
        one (for bias tuning: the gates on rows whose bias moved).  Only
        the levels of the marked gates' fan-out closure are recomputed;
        clean gates keep their previous arrivals verbatim.

        Recomputed gates use the same gather + ``max`` + add the full
        sweep uses and clean gates' inputs are bit-for-bit the previous
        values, so the report is exactly ``analyze(scales, derate)`` —
        the dirty-cone invariant tested by ``tests/sta/test_incremental``.
        When the dirty closure covers more than ``fallback_fraction`` of
        the netlist the method falls back to a full propagation (same
        result, cheaper than many near-total sub-gathers).
        """
        if fallback_fraction < 0:
            raise TimingError("fallback_fraction cannot be negative")
        scales, derate_arr, dies = self._check_inputs(scales, derate,
                                                      num_dies)
        prev = np.asarray(prev_arrival_ps, dtype=float)
        if prev.shape != (dies, self.num_gates):
            raise TimingError(
                f"prev_arrival_ps must have shape "
                f"({dies}, {self.num_gates}), got {prev.shape}")
        effective = self._effective_delays(scales, derate_arr, dies)
        dirty = self.dirty_gate_mask(changed_gate_mask)
        num_dirty = int(dirty.sum())
        if num_dirty > fallback_fraction * self.num_gates:
            arrival = self._propagate(effective)
        else:
            # Start from the previous arrivals (sentinel column pinned
            # to 0) and resweep only the dirty members of each level.
            arrival = np.zeros((dies, self.num_gates + 1))
            arrival[:, :self.num_gates] = prev
            if num_dirty:
                for members, fanin_block in self._level_blocks:
                    selector = dirty[members]
                    if not selector.any():
                        continue
                    sub_members = members[selector]
                    latest = arrival[:, fanin_block[selector]].max(axis=2)
                    arrival[:, sub_members] = \
                        latest + effective[:, sub_members]
        endpoint = (arrival[:, self._endpoint_driver]
                    + self._endpoint_setup_ps[None, :])
        return BatchTimingReport(
            gate_names=self.gate_names,
            endpoints=self.endpoints,
            arrival_ps=arrival[:, :self.num_gates],
            gate_delay_ps=effective,
            endpoint_delay_ps=endpoint,
            critical_delay_ps=endpoint.max(axis=1),
        )

    def analyze(self, scales: np.ndarray | None = None,
                derate: float | np.ndarray = 1.0,
                num_dies: int | None = None) -> BatchTimingReport:
        """Run batched STA and return the full population report.

        ``scales`` is a (num_dies, num_gates) delay-multiplier matrix in
        :attr:`gate_names` column order (build one with
        :meth:`scales_matrix`); ``derate`` is the paper's ``1 + beta``,
        scalar or per-die.
        """
        scales, derate_arr, dies = self._check_inputs(scales, derate,
                                                      num_dies)
        effective = self._effective_delays(scales, derate_arr, dies)
        arrival = self._propagate(effective)
        endpoint = (arrival[:, self._endpoint_driver]
                    + self._endpoint_setup_ps[None, :])
        return BatchTimingReport(
            gate_names=self.gate_names,
            endpoints=self.endpoints,
            arrival_ps=arrival[:, :self.num_gates],
            gate_delay_ps=effective,
            endpoint_delay_ps=endpoint,
            critical_delay_ps=endpoint.max(axis=1),
        )

    def critical_delays(self, scales: np.ndarray | None = None,
                        derate: float | np.ndarray = 1.0,
                        num_dies: int | None = None,
                        chunk_dies: int = DEFAULT_CHUNK_DIES) -> np.ndarray:
        """Per-die Dcrit only, sweeping in chunks to bound peak memory.

        The effective-delay and arrival matrices are both built one
        chunk at a time, so peak extra memory is
        ``O(chunk_dies * num_gates)`` no matter the population size.
        """
        if chunk_dies < 1:
            raise TimingError("chunk_dies must be at least 1")
        scales, derate_arr, dies = self._check_inputs(scales, derate,
                                                      num_dies)
        critical = np.empty(dies)
        for start in range(0, dies, chunk_dies):
            stop = min(start + chunk_dies, dies)
            chunk_scales = None if scales is None else scales[start:stop]
            chunk_derate = (derate_arr if derate_arr.ndim == 0
                            else derate_arr[start:stop])
            effective = self._effective_delays(chunk_scales, chunk_derate,
                                               stop - start)
            arrival = self._propagate(effective)
            endpoint = (arrival[:, self._endpoint_driver]
                        + self._endpoint_setup_ps[None, :])
            critical[start:stop] = endpoint.max(axis=1)
        return critical

    def meets(self, required_ps: float,
              scales: np.ndarray | None = None,
              derate: float | np.ndarray = 1.0,
              num_dies: int | None = None) -> np.ndarray:
        """Per-die boolean: does each die meet the required time?"""
        return (self.critical_delays(scales, derate, num_dies)
                <= required_ps + 1e-9)
