"""Critical-path extraction: the longest path through each cell.

Path-based optimisation over *all* paths explodes combinatorially; the
paper (Sec. 4.1) adopts the heuristic of Ramalingam et al. [11]: extract,
for every cell, the single longest path passing through that cell, then
prune duplicates to obtain the constraint set ``Pi``.  A cell's longest
through-path is recovered in linear time from two DAG passes:

* forward — latest arrival into each gate (with arg-max predecessor);
* backward — longest suffix from each gate's output to any endpoint
  (with arg-max successor and the endpoint's setup contribution).

The path through gate g is then ``prefix(g) + delay(g) + suffix(g)``,
reconstructed by following the recorded arg-max links both ways.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimingError
from repro.sta.engine import TimingAnalyzer


@dataclass(frozen=True)
class TimingPath:
    """One extracted path: an ordered gate chain plus endpoint setup."""

    gates: tuple[str, ...]
    gate_delays_ps: tuple[float, ...]
    """Nominal delay contribution of each gate, same order as ``gates``."""
    setup_ps: float
    """Capture-flop setup if the path ends at a D pin, else 0."""
    endpoint_kind: str  # "po" | "dff"

    @property
    def delay_ps(self) -> float:
        """Nominal path delay: gate contributions plus capture setup."""
        return sum(self.gate_delays_ps) + self.setup_ps

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def __post_init__(self) -> None:
        if not self.gates:
            raise TimingError("a timing path needs at least one gate")
        if len(self.gates) != len(self.gate_delays_ps):
            raise TimingError("path gates/delays length mismatch")


def extract_paths(analyzer: TimingAnalyzer) -> list[TimingPath]:
    """Longest path through each cell, pruned to a unique set.

    Paths are returned sorted by decreasing nominal delay.  The first
    entry's delay equals the analyzer's ``Dcrit``.
    """
    netlist = analyzer.netlist
    delays = analyzer.effective_delays()
    topo = netlist.topological_order()

    # Forward pass: arrival into each gate + arg-max predecessor.
    arrival_in: dict[str, float] = {}
    best_pred: dict[str, str | None] = {}
    arrival_out: dict[str, float] = {}
    for gate in topo:
        if gate.is_sequential:
            arrival_in[gate.name] = 0.0
            best_pred[gate.name] = None
            arrival_out[gate.name] = delays[gate.name]
            continue
        best_value = 0.0
        best_driver: str | None = None
        for net_name in gate.inputs:
            driver = netlist.nets[net_name].driver
            if driver is not None and arrival_out[driver] > best_value + 1e-15:
                best_value = arrival_out[driver]
                best_driver = driver
        arrival_in[gate.name] = best_value
        best_pred[gate.name] = best_driver
        arrival_out[gate.name] = best_value + delays[gate.name]

    # Backward pass: longest suffix from each gate's output to an endpoint.
    suffix: dict[str, float] = {}
    best_succ: dict[str, str | None] = {}
    suffix_setup: dict[str, float] = {}
    suffix_kind: dict[str, str] = {}
    reaches_endpoint: dict[str, bool] = {}
    for gate in reversed(topo):
        best_value = None
        best_gate: str | None = None
        best_setup = 0.0
        best_kind = "po"
        net = netlist.nets[gate.output]
        if net.is_primary_output:
            best_value = 0.0
        for sink_name, _pin in net.sinks:
            sink = netlist.gates[sink_name]
            if sink.is_sequential:
                setup = analyzer.calculator.setup_ps(sink_name)
                if best_value is None or setup > best_value + 1e-15:
                    best_value = setup
                    best_gate = None
                    best_setup = setup
                    best_kind = "dff"
            elif reaches_endpoint[sink_name]:
                candidate = delays[sink_name] + suffix[sink_name]
                if best_value is None or candidate > best_value + 1e-15:
                    best_value = candidate
                    best_gate = sink_name
                    best_setup = suffix_setup[sink_name]
                    best_kind = suffix_kind[sink_name]
        reaches_endpoint[gate.name] = best_value is not None
        suffix[gate.name] = best_value if best_value is not None else 0.0
        best_succ[gate.name] = best_gate
        suffix_setup[gate.name] = best_setup
        suffix_kind[gate.name] = best_kind

    # Assemble one path per cell, then prune duplicates.  Gates whose
    # output cone never reaches an endpoint (dangling logic) constrain
    # nothing and are skipped.
    seen: set[tuple[str, ...]] = set()
    paths: list[TimingPath] = []
    for gate in topo:
        if not reaches_endpoint[gate.name]:
            continue
        chain_back: list[str] = []
        cursor: str | None = gate.name
        while cursor is not None:
            chain_back.append(cursor)
            cursor = best_pred[cursor]
        chain = list(reversed(chain_back))
        cursor = best_succ[gate.name]
        while cursor is not None:
            chain.append(cursor)
            cursor = best_succ[cursor]
        key = tuple(chain)
        if key in seen:
            continue
        seen.add(key)
        paths.append(TimingPath(
            gates=key,
            gate_delays_ps=tuple(delays[name] for name in key),
            setup_ps=suffix_setup[gate.name],
            endpoint_kind=suffix_kind[gate.name],
        ))
    paths.sort(key=lambda p: p.delay_ps, reverse=True)
    return paths


def violating_paths(paths: list[TimingPath], dcrit_ps: float,
                    beta: float) -> list[TimingPath]:
    """Paths whose degraded delay ``pd * (1 + beta)`` exceeds ``Dcrit``.

    This is the paper's constraint-set filter (Sec. 3.1): with slowdown
    coefficient beta, exactly these paths can violate timing and appear
    as ILP constraints — which is why Table 1's constraint counts grow
    with beta.
    """
    if beta < 0:
        raise TimingError(f"beta must be non-negative, got {beta}")
    return [path for path in paths
            if path.delay_ps * (1.0 + beta) > dcrit_ps + 1e-9]
