"""Static timing analysis engine.

A block-level STA in the PrimeTime mould, restricted to what the FBB
methodology needs:

* **Arrival propagation** over the combinational DAG.  Primary inputs
  arrive at t=0; a flip-flop launches its Q at its clk-to-Q delay.
* **Endpoints** are primary outputs (required time = the critical delay)
  and flip-flop D pins (which add the capture flop's setup time).
* **Path delay** of an endpoint = arrival + setup; the design's critical
  delay ``Dcrit`` is the maximum path delay (the paper's reference value
  for timing violations, Sec. 3.1).
* **Bias awareness**: every query accepts a per-gate delay-scale mapping
  (from the row bias assignment) and a global derate factor ``1 + beta``
  modelling the slowed-down die.

The engine is deliberately graph-based and allocation-free so the
heuristic's CheckTiming inner loop can instead use the incremental
coefficient form (Sec. 4.2) — this module provides the ground truth the
fast path is validated against.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.placement.placed_design import PlacedDesign
from repro.sta.delay import DelayCalculator
from repro.tech.cells import CellLibrary


@dataclass(frozen=True)
class Endpoint:
    """A timing endpoint: a primary output or a flop's D pin."""

    kind: str           # "po" | "dff"
    name: str           # net name for po, gate name for dff
    setup_ps: float


@dataclass
class TimingReport:
    """Result of one STA run."""

    arrival_ps: dict[str, float]
    """Latest arrival at each gate's output."""
    gate_delay_ps: dict[str, float]
    """Effective per-gate delay used in this run (derated + scaled)."""
    endpoint_delay_ps: dict[Endpoint, float]
    """Path delay (arrival + setup) at each endpoint."""
    critical_delay_ps: float
    """Dcrit: the maximum endpoint path delay."""

    def worst_endpoint(self) -> Endpoint:
        return max(self.endpoint_delay_ps,
                   key=lambda e: self.endpoint_delay_ps[e])

    def slack_ps(self, required_ps: float) -> dict[Endpoint, float]:
        """Endpoint slacks against a required time."""
        return {endpoint: required_ps - delay
                for endpoint, delay in self.endpoint_delay_ps.items()}


class TimingAnalyzer:
    """STA over a mapped netlist (placement optional, improves wire caps)."""

    def __init__(self, netlist: Netlist, library: CellLibrary,
                 placed: PlacedDesign | None = None) -> None:
        if netlist.num_gates == 0:
            raise TimingError(f"netlist {netlist.name!r} has no gates")
        self.netlist = netlist
        self.library = library
        self.calculator = DelayCalculator(netlist, library, placed)
        self._topo = netlist.topological_order()
        self._endpoints = self._find_endpoints()
        if not self._endpoints:
            raise TimingError(
                f"netlist {netlist.name!r} has no timing endpoints")

    @classmethod
    def for_placed(cls, placed: PlacedDesign) -> "TimingAnalyzer":
        return cls(placed.netlist, placed.library, placed)

    @property
    def endpoints(self) -> list[Endpoint]:
        return list(self._endpoints)

    def _find_endpoints(self) -> list[Endpoint]:
        endpoints = []
        for net_name in self.netlist.primary_outputs:
            endpoints.append(Endpoint("po", net_name, 0.0))
        for gate in self.netlist.sequential_gates():
            endpoints.append(Endpoint(
                "dff", gate.name, self.calculator.setup_ps(gate.name)))
        return endpoints

    # -- core analysis -----------------------------------------------------------

    def effective_delays(self, scales: Mapping[str, float] | None = None,
                         derate: float = 1.0) -> dict[str, float]:
        """Per-gate delay after global derate and per-gate bias scaling."""
        if derate <= 0:
            raise TimingError(f"derate must be positive, got {derate}")
        delays = {}
        for gate in self._topo:
            scale = 1.0 if scales is None else scales.get(gate.name, 1.0)
            delays[gate.name] = (
                self.calculator.gate_delay_ps(gate.name) * derate * scale)
        return delays

    def analyze(self, scales: Mapping[str, float] | None = None,
                derate: float = 1.0) -> TimingReport:
        """Run STA and return the full report.

        ``scales`` maps gate name to a delay multiplier (bias assignment);
        ``derate`` models die slowdown (the paper's ``1 + beta``).
        """
        delays = self.effective_delays(scales, derate)
        arrival: dict[str, float] = {}
        for gate in self._topo:
            if gate.is_sequential:
                arrival[gate.name] = delays[gate.name]  # clk->Q launch
                continue
            latest_input = 0.0
            for net_name in gate.inputs:
                driver = self.netlist.nets[net_name].driver
                if driver is not None:
                    latest_input = max(latest_input, arrival[driver])
            arrival[gate.name] = latest_input + delays[gate.name]

        endpoint_delay: dict[Endpoint, float] = {}
        for endpoint in self._endpoints:
            if endpoint.kind == "po":
                driver = self.netlist.nets[endpoint.name].driver
                base = arrival[driver] if driver is not None else 0.0
            else:
                dff = self.netlist.gates[endpoint.name]
                data_net = dff.inputs[0]
                driver = self.netlist.nets[data_net].driver
                base = arrival[driver] if driver is not None else 0.0
            endpoint_delay[endpoint] = base + endpoint.setup_ps

        critical = max(endpoint_delay.values())
        return TimingReport(
            arrival_ps=arrival,
            gate_delay_ps=delays,
            endpoint_delay_ps=endpoint_delay,
            critical_delay_ps=critical,
        )

    def critical_delay_ps(self, scales: Mapping[str, float] | None = None,
                          derate: float = 1.0) -> float:
        """Dcrit under the given bias assignment and derate."""
        return self.analyze(scales, derate).critical_delay_ps

    def meets(self, required_ps: float,
              scales: Mapping[str, float] | None = None,
              derate: float = 1.0) -> bool:
        """True iff every endpoint meets the required time."""
        return self.critical_delay_ps(scales, derate) <= required_ps + 1e-9
