"""Static timing analysis: delays, arrival propagation, path extraction."""

from repro.sta.delay import WIRE_CAP_PER_UM_FF, DelayCalculator
from repro.sta.engine import Endpoint, TimingAnalyzer, TimingReport
from repro.sta.paths import TimingPath, extract_paths, violating_paths

__all__ = [
    "DelayCalculator",
    "Endpoint",
    "TimingAnalyzer",
    "TimingPath",
    "TimingReport",
    "WIRE_CAP_PER_UM_FF",
    "extract_paths",
    "violating_paths",
]
