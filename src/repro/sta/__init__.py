"""Static timing analysis (the paper's PrimeTime stand-in, Sec. 5):
delays, arrival propagation, path extraction,
and the batched population engine."""

from repro.sta.batched import BatchedTimingAnalyzer, BatchTimingReport
from repro.sta.delay import WIRE_CAP_PER_UM_FF, DelayCalculator
from repro.sta.engine import Endpoint, TimingAnalyzer, TimingReport
from repro.sta.paths import TimingPath, extract_paths, violating_paths

__all__ = [
    "BatchTimingReport",
    "BatchedTimingAnalyzer",
    "DelayCalculator",
    "Endpoint",
    "TimingAnalyzer",
    "TimingPath",
    "TimingReport",
    "WIRE_CAP_PER_UM_FF",
    "extract_paths",
    "violating_paths",
]
