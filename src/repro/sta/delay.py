"""Bias- and load-aware cell delay calculation (the per-gate delays
behind the paper's Sec. 4.1 coefficients).

Each mapped gate's nominal delay is ``intrinsic + slope * C_load`` with
the load made of sink input pins, a per-fanout wire estimate and, when a
placement is available, a distance-dependent wire term from the net's
half-perimeter bounding box.  Body bias enters as a single multiplicative
scale factor per gate (see :mod:`repro.tech.mosfet`), which is how the
allocation algorithms change timing without re-running extraction.
"""

from __future__ import annotations

from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.placement.placed_design import PlacedDesign
from repro.synth.sizing import WIRE_CAP_PER_FANOUT_FF
from repro.tech.cells import CellLibrary

#: wire capacitance per micron of estimated net span, femtofarads
WIRE_CAP_PER_UM_FF = 0.08


class DelayCalculator:
    """Computes per-gate nominal delays for a mapped (optionally placed)
    netlist.  Delays are cached; bias scaling is applied by callers."""

    def __init__(self, netlist: Netlist, library: CellLibrary,
                 placed: PlacedDesign | None = None) -> None:
        self.netlist = netlist
        self.library = library
        self.placed = placed
        self._load_cache: dict[str, float] = {}
        self._delay_cache: dict[str, float] = {}

    def net_load_ff(self, net_name: str) -> float:
        """Capacitive load on a net: pins + fanout wire + span wire."""
        cached = self._load_cache.get(net_name)
        if cached is not None:
            return cached
        net = self.netlist.net(net_name)
        load = WIRE_CAP_PER_FANOUT_FF * max(len(net.sinks), 1)
        for gate_name, _pin in net.sinks:
            gate = self.netlist.gates[gate_name]
            if gate.cell_name is None:
                raise TimingError(
                    f"gate {gate_name!r} unmapped; run map_netlist first")
            load += self.library.cell(gate.cell_name).input_cap_ff
        if self.placed is not None:
            load += WIRE_CAP_PER_UM_FF * self._net_span_um(net_name)
        self._load_cache[net_name] = load
        return load

    def _net_span_um(self, net_name: str) -> float:
        net = self.netlist.net(net_name)
        points = []
        if net.driver is not None:
            points.append(self.placed.gate_position_um(net.driver))
        for sink, _pin in net.sinks:
            points.append(self.placed.gate_position_um(sink))
        if len(points) < 2:
            return 0.0
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def gate_delay_ps(self, gate_name: str) -> float:
        """Nominal (no-bias, no-derate) delay of a gate, picoseconds."""
        cached = self._delay_cache.get(gate_name)
        if cached is not None:
            return cached
        gate = self.netlist.gate(gate_name)
        if gate.cell_name is None:
            raise TimingError(
                f"gate {gate_name!r} unmapped; run map_netlist first")
        cell = self.library.cell(gate.cell_name)
        delay = cell.delay_ps(self.net_load_ff(gate.output))
        self._delay_cache[gate_name] = delay
        return delay

    def setup_ps(self, gate_name: str) -> float:
        """Setup time if the gate is a flop, else 0."""
        gate = self.netlist.gate(gate_name)
        if gate.cell_name is None:
            raise TimingError(f"gate {gate_name!r} unmapped")
        return self.library.cell(gate.cell_name).setup_ps

    def invalidate(self) -> None:
        """Drop caches (after resizing or re-placement)."""
        self._load_cache.clear()
        self._delay_cache.clear()
