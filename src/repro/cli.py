"""Command-line interface: ``repro-fbb``.

Subcommands (all experiment-shaped ones are thin wrappers over the
:mod:`repro.api` facade — a declarative RunSpec in, a RunResult out):

* ``table1 [designs...]`` — regenerate the paper's Table 1;
* ``fig1`` — the inverter delay/leakage sweep of Fig. 1;
* ``allocate DESIGN --beta B --clusters C`` — one allocation run via
  the solver registry (``--method`` names any registered solver;
  ``--grouping bands:8`` solves at 8 bias domains instead of per row —
  the flag exists on every allocation-shaped subcommand; ``--placer
  anneal:default`` implements the design with the annealing placer);
* ``place DESIGN --placer anneal:default`` — compare placement engines
  head to head: HPWL, well boundaries and recovered leakage of the
  named placer versus the bfs baseline through the same allocation
  flow;
* ``layout DESIGN --beta B`` — ASCII layout view with bias clusters;
* ``montecarlo DESIGN --dies N --seed S`` — sample a die population
  through the batched STA backend and report yield (``--tune`` runs the
  closed calibration loop on every slow die, ``--tuning-engine batched``
  switches it to the population-at-a-time engine with bit-identical
  results, ``--workers N`` shards it over a process pool; runs are
  reproducible from the seed);
* ``spatial DESIGN --dies N --regions R`` — the spatial-vs-uniform
  compensation study: calibrate one correlated die population twice,
  per-region clustered vs single-sensor uniform, and report both yields
  and the recovered-die leakage comparison (``--correlation-length``
  sets the intra-die field's feature size as a die-span fraction);
* ``lifetime DESIGN --epochs E --cadence K`` — the lifetime aging
  study: age a die population through per-row NBTI drift epochs,
  re-calibrate every K epochs and report the yield-vs-age curve
  (``--mode spatial`` re-tunes against the composed per-gate field
  through the sensor grid instead of the scalar die-wide model);
* ``sweep SPECS.json`` — the batch service interface: run a JSON list
  of RunSpecs (``--workers N`` fans them out over a process pool), emit
  one JSONL RunResult per line, and report artifact cache hit/miss
  counters.  A malformed or failing spec no longer aborts the batch:
  it becomes a JSONL error record (``{"error": ..., "message": ...,
  "spec": ...}``), the remaining specs still run, and the exit status
  is nonzero when any spec failed;
* ``serve`` — the always-on allocation service (:mod:`repro.serve`):
  accept RunSpec JSON over HTTP, answer RunResult JSON, collapse
  concurrent identical specs to one execution and drain gracefully on
  SIGTERM (``--port 0`` binds an ephemeral port, ``--port-file``
  writes it out for scripts; ``--backend process_pool --workers N``
  executes on a persistent warm pool);
* ``cache ACTION --cache-dir DIR`` — disk-tier maintenance:
  ``stats`` (tiered hit/miss table + per-kind inventory), ``clear``
  (drop every artifact) and ``migrate`` (rehome legacy flat-layout
  artifacts into the sharded ``<kind>/<aa>/`` directories); exit codes
  and ``--format json`` output shaped like ``lint``'s;
* ``lint [paths...]`` — the :mod:`repro.lint` static contract
  checkers (determinism, hash-stability, units-suffix,
  registry-docstring, paper-anchor, async-blocking) over the tree;
  exits nonzero on any finding (same engine as
  ``python -m repro.lint``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.circuits.catalog import (ALL_BENCHMARK_NAMES,
                                    BENCHMARK_NAMES)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run_many
    from repro.flow import format_table1
    designs = tuple(args.designs) if args.designs else BENCHMARK_NAMES[:6]
    specs = [RunSpec(kind="table1", design=name, beta=beta,
                     ilp_time_limit_s=args.ilp_time_limit,
                     skip_ilp_above_rows=args.skip_ilp_above_rows,
                     grouping=args.grouping)
             for name in designs for beta in (0.05, 0.10)]
    rows = [result.to_table1_row() for result in run_many(specs)]
    print(format_table1(rows))
    return 0


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.tech import sweep_inverter
    print(f"{'vbs (V)':>8} {'delay (ps)':>11} {'speedup %':>10} "
          f"{'leakage (nW)':>13} {'ratio':>7}")
    for point in sweep_inverter():
        print(f"{point.vbs:>8.2f} {point.delay_ps:>11.2f} "
              f"{point.speedup_fraction * 100:>10.2f} "
              f"{point.leakage_nw:>13.4f} {point.leakage_ratio:>7.2f}")
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run
    method = args.method or ("ilp:highs" if args.ilp
                             else "heuristic:row-descent")
    result = run(RunSpec(kind="allocate", design=args.design,
                         beta=args.beta, method=method,
                         clusters=args.clusters, grouping=args.grouping,
                         placer=args.placer))
    payload = result.payload
    print(f"{payload['design']} [{payload['method']}] "
          f"beta={payload['beta']:.0%}: baseline "
          f"{payload['baseline_uw']:.3f} uW -> {payload['leakage_uw']:.3f} "
          f"uW across {payload['num_clusters']} clusters, timing "
          f"{'OK' if payload['timing_ok'] else 'VIOLATED'}")
    if "num_groups" in payload:
        print(f"grouping {payload['grouping']}: {payload['num_groups']} "
              f"bias domains solved, {payload['num_domains']} physical "
              "domains used")
    print(f"savings vs single BB: {payload['savings_pct']:.2f}%")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    import time

    from repro.core import build_problem, solve, solve_single_bb
    from repro.flow import format_placer_sweep, implement
    from repro.layout import well_separation
    from repro.placement import total_hpwl
    placers = ["bfs"]
    if args.placer not in placers:
        placers.append(args.placer)
    rows = []
    for placer in placers:
        start = time.perf_counter()
        flow = implement(args.design, placer=placer)
        place_s = time.perf_counter() - start
        problem = build_problem(flow.placed, flow.clib, args.beta,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        baseline = solve_single_bb(problem)
        solution = solve(problem, args.method, args.clusters)
        wells = well_separation(flow.placed, solution.levels)
        rows.append({
            "placer": placer,
            "hpwl_um": total_hpwl(flow.placed),
            "boundaries": wells.num_boundaries,
            "leakage_uw": solution.leakage_uw,
            "savings_pct": solution.savings_vs(baseline.leakage_nw),
            "place_s": place_s,
        })
    print(format_placer_sweep(args.design, args.beta, rows))
    if len(rows) == 2:
        base, tuned = rows
        print(f"{args.placer} vs bfs: boundaries "
              f"{tuned['boundaries'] - base['boundaries']:+d}, "
              f"leakage {tuned['leakage_uw'] - base['leakage_uw']:+.3f} "
              f"uW, hpwl {tuned['hpwl_um'] - base['hpwl_um']:+.1f} um")
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    from repro.core import build_problem
    from repro.flow import implement
    from repro.grouping import solve_grouped
    from repro.layout import ascii_layout, route_bias_rails
    flow = implement(args.design)
    problem = build_problem(flow.placed, flow.clib, args.beta,
                            analyzer=flow.analyzer,
                            paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    solution = solve_grouped(problem, "heuristic:row-descent",
                             args.clusters, grouping=args.grouping,
                             placed=flow.placed)
    route = route_bias_rails(flow.placed, solution.levels_array,
                             problem.vbs_levels)
    print(ascii_layout(flow.placed, solution.levels, route=route))
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run
    from repro.flow import format_population
    result = run(RunSpec(
        kind="population", design=args.design, num_dies=args.dies,
        seed=args.seed, engine=args.engine, tune=args.tune,
        clusters=args.clusters, beta_budget=args.beta_budget,
        workers=args.workers, grouping=args.grouping,
        tuning_engine=args.tuning_engine))
    print(format_population([result.to_population_row()]))
    return 0


def _cmd_spatial(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run
    from repro.flow import format_spatial
    process = {}
    if args.correlation_length is not None:
        process["correlation_length_fraction"] = args.correlation_length
    if args.sigma_intra is not None:
        process["sigma_intra_v"] = args.sigma_intra
    result = run(RunSpec(
        kind="spatial", design=args.design, num_dies=args.dies,
        seed=args.seed, clusters=args.clusters,
        beta_budget=args.beta_budget, num_regions=args.regions,
        process=process, workers=args.workers, grouping=args.grouping))
    print(format_spatial([result.to_spatial_row()]))
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run
    from repro.flow import format_lifetime
    drift = {}
    if args.activity_sigma is not None:
        drift["activity_sigma_v"] = args.activity_sigma
    if args.epoch_years is not None:
        drift["epoch_years"] = args.epoch_years
    if args.nbti_prefactor is not None:
        drift["nbti"] = {"prefactor_v": args.nbti_prefactor}
    result = run(RunSpec(
        kind="lifetime", design=args.design, num_dies=args.dies,
        seed=args.seed, clusters=args.clusters,
        beta_budget=args.beta_budget, epochs=args.epochs,
        cadence=args.cadence, mode=args.mode,
        num_regions=args.regions, drift=drift, grouping=args.grouping))
    print(format_lifetime([result.to_lifetime_row()]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run_many
    from repro.flow import (ArtifactCache, SpecFailure, default_cache,
                            format_cache_stats, format_spec_failures)
    if args.specs == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.specs, encoding="utf-8") as handle:
            data = json.load(handle)
    if isinstance(data, dict):
        data = [data]

    # Per-spec error tolerance: a malformed entry becomes an error
    # record in its output slot instead of aborting the whole batch.
    records: list = [None] * len(data)
    specs, slots = [], []
    for index, entry in enumerate(data):
        try:
            specs.append(RunSpec.from_dict(entry))
            slots.append(index)
        except Exception as exc:
            # Catch broadly: a wrong-typed value raises TypeError from
            # RunSpec validation, not just SpecError, and either must
            # become an error record rather than abort the batch.
            records[index] = SpecFailure.from_exception(entry, exc)
    cache = (ArtifactCache(cache_dir=args.cache_dir)
             if args.cache_dir else default_cache())
    results = run_many(specs, cache=cache, workers=args.workers,
                       capture_errors=True)
    for slot, result in zip(slots, results):
        records[slot] = result

    lines = "\n".join(record.to_json() for record in records)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines + "\n")
    else:
        print(lines)
    print(format_cache_stats(cache.stats()), file=sys.stderr)
    failures = [record for record in records
                if isinstance(record, SpecFailure)]
    if failures:
        print(format_spec_failures(failures, len(records)),
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.flow import ArtifactCache, ExecutionEngine, default_cache
    from repro.serve import serve_forever
    if args.cache_dir or args.max_entries:
        cache = ArtifactCache(cache_dir=args.cache_dir,
                              max_entries=args.max_entries)
    else:
        cache = default_cache()
    engine = ExecutionEngine(cache=cache, backend=args.backend,
                             workers=args.workers)
    try:
        return asyncio.run(serve_forever(
            engine, host=args.host, port=args.port,
            port_file=args.port_file))
    except KeyboardInterrupt:
        return 0  # platforms without add_signal_handler: still graceful
    finally:
        engine.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.flow import (ArtifactCache, format_cache_inventory,
                            format_cache_stats)
    cache = ArtifactCache(cache_dir=args.cache_dir)
    if args.action == "stats":
        inventory = cache.disk_inventory()
        verified = None if args.no_verify else cache.verify_disk()
        if args.format == "json":
            document = {"command": "cache stats",
                        "cache_dir": args.cache_dir,
                        "inventory": inventory,
                        "stats": cache.stats()}
            if verified is not None:
                document["verified"] = verified
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(format_cache_inventory(inventory))
            if verified is not None:
                print(format_cache_stats(cache.stats()))
                corrupt = sum(row["corrupt"]
                              for row in verified.values())
                if corrupt:
                    print(f"warning: {corrupt} corrupt artifact(s)",
                          file=sys.stderr)
        return 0
    if args.action == "clear":
        removed = cache.clear_disk()
        if args.format == "json":
            print(json.dumps({"command": "cache clear",
                              "cache_dir": args.cache_dir,
                              "removed": removed}))
        else:
            print(f"removed {removed} artifact(s) from {args.cache_dir}")
        return 0
    # migrate: rehome legacy flat-layout artifacts into shards
    moved = cache.migrate_layout()
    total = sum(moved.values())
    if args.format == "json":
        print(json.dumps({"command": "cache migrate",
                          "cache_dir": args.cache_dir,
                          "migrated": moved, "total": total}))
    else:
        print(f"migrated {total} artifact(s) into sharded layout")
        for kind, count in sorted(moved.items()):
            print(f"  {kind:<12} {count:>6}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint_command
    return run_lint_command(args.paths, output_format=args.format,
                            rules=args.rule)


def _add_grouping_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--grouping", default="identity",
        help="bias-domain grouping spec: identity (per-row, default), "
             "bands:<k>, correlation:<k> or community:<k>")


def _add_placer_flag(parser: argparse.ArgumentParser,
                     default: str = "bfs") -> None:
    parser.add_argument(
        "--placer", default=default,
        help="placement engine: bfs (serpentine baseline) or "
             "anneal:<quick|default|deep> (bias-domain-aware "
             f"annealer; default: {default})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbb",
        description="Physically clustered FBB (DATE 2009 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("designs", nargs="*",
                        help=f"subset of {', '.join(BENCHMARK_NAMES)}")
    table1.add_argument("--ilp-time-limit", type=float, default=120.0)
    table1.add_argument("--skip-ilp-above-rows", type=int, default=None)
    _add_grouping_flag(table1)
    table1.set_defaults(func=_cmd_table1)

    fig1 = sub.add_parser("fig1", help="inverter bias sweep (Fig. 1)")
    fig1.set_defaults(func=_cmd_fig1)

    allocate = sub.add_parser("allocate", help="run one allocation")
    allocate.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    allocate.add_argument("--beta", type=float, default=0.05)
    allocate.add_argument("--clusters", type=int, default=3)
    allocate.add_argument("--ilp", action="store_true")
    allocate.add_argument("--method", default=None,
                          help="solver-registry method (e.g. ilp:simplex, "
                               "heuristic:level-sweep); overrides --ilp")
    _add_grouping_flag(allocate)
    _add_placer_flag(allocate)
    allocate.set_defaults(func=_cmd_allocate)

    place = sub.add_parser(
        "place", help="compare placement engines on one design")
    place.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    place.add_argument("--beta", type=float, default=0.05)
    place.add_argument("--clusters", type=int, default=3)
    place.add_argument("--method", default="heuristic:row-descent",
                       help="allocation solver scoring each placement")
    _add_placer_flag(place, default="anneal:default")
    place.set_defaults(func=_cmd_place)

    layout = sub.add_parser("layout", help="ASCII clustered layout")
    layout.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    layout.add_argument("--beta", type=float, default=0.05)
    layout.add_argument("--clusters", type=int, default=3)
    _add_grouping_flag(layout)
    layout.set_defaults(func=_cmd_layout)

    montecarlo = sub.add_parser(
        "montecarlo", help="batched Monte Carlo die-population study")
    montecarlo.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    montecarlo.add_argument("--dies", type=int, default=1000)
    montecarlo.add_argument("--seed", type=int, default=0,
                            help="sampling seed; identical seeds "
                                 "reproduce identical populations")
    montecarlo.add_argument("--engine", choices=("batched", "scalar"),
                            default="batched")
    montecarlo.add_argument("--tune", action="store_true",
                            help="closed-loop calibrate every slow die")
    montecarlo.add_argument("--clusters", type=int, default=3,
                            help="tuning cluster budget (only with --tune)")
    montecarlo.add_argument("--beta-budget", type=float, default=0.0,
                            help="slowdown margin defining timing yield "
                                 "and, with --tune, the tuning target")
    montecarlo.add_argument("--tuning-engine",
                            choices=("serial", "batched"),
                            default="serial",
                            help="calibration execution engine: per-die "
                                 "serial loop or the batched "
                                 "population-at-a-time engine "
                                 "(bit-identical results)")
    montecarlo.add_argument("--workers", type=int, default=1,
                            help="process-pool width for --tune: shard "
                                 "the slow dies across N workers "
                                 "(results identical to serial)")
    _add_grouping_flag(montecarlo)
    montecarlo.set_defaults(func=_cmd_montecarlo)

    spatial = sub.add_parser(
        "spatial", help="spatial-vs-uniform compensation study")
    spatial.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    spatial.add_argument("--dies", type=int, default=200)
    spatial.add_argument("--seed", type=int, default=0,
                         help="sampling seed; identical seeds reproduce "
                              "identical populations")
    spatial.add_argument("--regions", type=int, default=4,
                         help="sensor-grid regions of the spatial arm "
                              "(the uniform arm always senses 1)")
    spatial.add_argument("--clusters", type=int, default=3,
                         help="cluster budget of the spatial allocator")
    spatial.add_argument("--beta-budget", type=float, default=0.0,
                         help="slowdown margin defining timing yield "
                              "and the tuning target")
    spatial.add_argument("--correlation-length", type=float, default=None,
                         help="intra-die correlation length as a "
                              "fraction of the die span, in (0, 1]")
    spatial.add_argument("--sigma-intra", type=float, default=None,
                         help="intra-die Vth sigma override, volts")
    spatial.add_argument("--workers", type=int, default=1,
                         help="process-pool width for sharding each "
                              "arm's slow dies (results identical to "
                              "serial)")
    _add_grouping_flag(spatial)
    spatial.set_defaults(func=_cmd_spatial)

    lifetime = sub.add_parser(
        "lifetime", help="lifetime aging and re-calibration study")
    lifetime.add_argument("design", choices=ALL_BENCHMARK_NAMES)
    lifetime.add_argument("--dies", type=int, default=200)
    lifetime.add_argument("--seed", type=int, default=0,
                          help="sampling seed; also drives the drift "
                               "trajectory")
    lifetime.add_argument("--epochs", type=int, default=8,
                          help="service-life epochs to age through")
    lifetime.add_argument("--cadence", type=int, default=1,
                          help="re-calibrate every K epochs (1 = every "
                               "epoch; equal to --epochs = tune once "
                               "at time zero and coast)")
    lifetime.add_argument("--mode", choices=("model", "spatial"),
                          default="model",
                          help="re-calibration mode: scalar die-wide "
                               "model or per-region spatial sensing")
    lifetime.add_argument("--regions", type=int, default=4,
                          help="sensor-grid regions (--mode spatial)")
    lifetime.add_argument("--clusters", type=int, default=3,
                          help="tuning cluster budget")
    lifetime.add_argument("--beta-budget", type=float, default=0.0,
                          help="slowdown margin defining the epoch "
                               "yield and the tuning target")
    lifetime.add_argument("--activity-sigma", type=float, default=None,
                          help="per-epoch activity-skew sigma override, "
                               "volts")
    lifetime.add_argument("--epoch-years", type=float, default=None,
                          help="years of service per epoch (default 1)")
    lifetime.add_argument("--nbti-prefactor", type=float, default=None,
                          help="NBTI one-year dVth prefactor override, "
                               "volts")
    _add_grouping_flag(lifetime)
    lifetime.set_defaults(func=_cmd_lifetime)

    sweep = sub.add_parser(
        "sweep", help="run a JSON batch of RunSpecs, emit JSONL results")
    sweep.add_argument("specs",
                       help="path to a JSON list of RunSpec objects "
                            "('-' reads stdin)")
    sweep.add_argument("--output", "-o", default=None,
                       help="write JSONL here instead of stdout")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist the artifact cache on disk for "
                            "warm re-runs")
    sweep.add_argument("--workers", type=int, default=1,
                       help="fan the batch out over a process pool of "
                            "N workers (results identical to serial)")
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve", help="run the always-on allocation service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port; 0 binds an ephemeral port "
                            "(default: 8787)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here once listening "
                            "(for scripts using --port 0)")
    serve.add_argument("--backend", choices=("inline", "process_pool"),
                       default="inline",
                       help="execution backend: inline (in-process) or "
                            "a persistent warm process pool")
    serve.add_argument("--workers", type=int, default=1,
                       help="pool width for --backend process_pool")
    serve.add_argument("--cache-dir", default=None,
                       help="persist the artifact cache on disk "
                            "(shared with sweep runs)")
    serve.add_argument("--max-entries", type=int, default=None,
                       help="bound the memory tier (LRU eviction; "
                            "disk-tier artifacts stay retrievable)")
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect or maintain a disk artifact cache")
    cache.add_argument("action", choices=("stats", "clear", "migrate"),
                       help="stats: tiered hit/miss + inventory table; "
                            "clear: delete every artifact; migrate: "
                            "rehome legacy flat files into shards")
    cache.add_argument("--cache-dir", required=True,
                       help="the cache directory to operate on")
    cache.add_argument("--format", choices=("human", "json"),
                       default="human",
                       help="output format (default: human)")
    cache.add_argument("--no-verify", action="store_true",
                       help="stats: skip the read-through pass that "
                            "loads every artifact")
    cache.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint", help="run the repro.lint static contract checkers")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: "
                           "src, tests, benchmarks, examples)")
    lint.add_argument("--format", choices=("human", "json"),
                      default="human",
                      help="output format (default: human)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="RULE",
                      help="run only this rule (repeatable; see "
                           "'python -m repro.lint --help' for the "
                           "catalogue)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
