"""Command-line interface: ``repro-fbb``.

Subcommands:

* ``table1 [designs...]`` — regenerate the paper's Table 1;
* ``fig1`` — the inverter delay/leakage sweep of Fig. 1;
* ``allocate DESIGN --beta B --clusters C`` — one allocation run;
* ``layout DESIGN --beta B`` — ASCII layout view with bias clusters;
* ``montecarlo DESIGN --dies N`` — sample a die population through the
  batched STA backend and report yield (``--tune`` runs the closed
  calibration loop on every slow die).
"""

from __future__ import annotations

import argparse
import sys

from repro.circuits.catalog import BENCHMARK_NAMES


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.flow import ExperimentConfig, format_table1, run_table1
    designs = tuple(args.designs) if args.designs else BENCHMARK_NAMES[:6]
    config = ExperimentConfig(
        ilp_time_limit_s=args.ilp_time_limit,
        skip_ilp_above_rows=args.skip_ilp_above_rows)
    rows = run_table1(designs, config)
    print(format_table1(rows))
    return 0


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.tech import sweep_inverter
    print(f"{'vbs (V)':>8} {'delay (ps)':>11} {'speedup %':>10} "
          f"{'leakage (nW)':>13} {'ratio':>7}")
    for point in sweep_inverter():
        print(f"{point.vbs:>8.2f} {point.delay_ps:>11.2f} "
              f"{point.speedup_fraction * 100:>10.2f} "
              f"{point.leakage_nw:>13.4f} {point.leakage_ratio:>7.2f}")
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.core import build_problem, solve_heuristic, solve_ilp, \
        solve_single_bb
    from repro.flow import implement
    flow = implement(args.design)
    problem = build_problem(flow.placed, flow.clib, args.beta,
                            analyzer=flow.analyzer,
                            paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    baseline = solve_single_bb(problem)
    print(baseline.describe())
    if args.ilp:
        solution = solve_ilp(problem, args.clusters)
    else:
        solution = solve_heuristic(problem, args.clusters)
    print(solution.describe())
    print(f"savings vs single BB: "
          f"{solution.savings_vs(baseline.leakage_nw):.2f}%")
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    from repro.core import build_problem, solve_heuristic
    from repro.flow import implement
    from repro.layout import ascii_layout, route_bias_rails
    flow = implement(args.design)
    problem = build_problem(flow.placed, flow.clib, args.beta,
                            analyzer=flow.analyzer,
                            paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    solution = solve_heuristic(problem, args.clusters)
    route = route_bias_rails(flow.placed, solution.levels_array,
                             problem.vbs_levels)
    print(ascii_layout(flow.placed, solution.levels, route=route))
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.flow import (PopulationConfig, format_population, implement,
                            run_population)
    flow = implement(args.design)
    config = PopulationConfig(
        num_dies=args.dies, seed=args.seed, sta_engine=args.engine,
        tune=args.tune, max_clusters=args.clusters,
        beta_budget=args.beta_budget)
    row = run_population(flow, config)
    print(format_population([row]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbb",
        description="Physically clustered FBB (DATE 2009 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("designs", nargs="*",
                        help=f"subset of {', '.join(BENCHMARK_NAMES)}")
    table1.add_argument("--ilp-time-limit", type=float, default=120.0)
    table1.add_argument("--skip-ilp-above-rows", type=int, default=None)
    table1.set_defaults(func=_cmd_table1)

    fig1 = sub.add_parser("fig1", help="inverter bias sweep (Fig. 1)")
    fig1.set_defaults(func=_cmd_fig1)

    allocate = sub.add_parser("allocate", help="run one allocation")
    allocate.add_argument("design", choices=BENCHMARK_NAMES)
    allocate.add_argument("--beta", type=float, default=0.05)
    allocate.add_argument("--clusters", type=int, default=3)
    allocate.add_argument("--ilp", action="store_true")
    allocate.set_defaults(func=_cmd_allocate)

    layout = sub.add_parser("layout", help="ASCII clustered layout")
    layout.add_argument("design", choices=BENCHMARK_NAMES)
    layout.add_argument("--beta", type=float, default=0.05)
    layout.add_argument("--clusters", type=int, default=3)
    layout.set_defaults(func=_cmd_layout)

    montecarlo = sub.add_parser(
        "montecarlo", help="batched Monte Carlo die-population study")
    montecarlo.add_argument("design", choices=BENCHMARK_NAMES)
    montecarlo.add_argument("--dies", type=int, default=1000)
    montecarlo.add_argument("--seed", type=int, default=0)
    montecarlo.add_argument("--engine", choices=("batched", "scalar"),
                            default="batched")
    montecarlo.add_argument("--tune", action="store_true",
                            help="closed-loop calibrate every slow die")
    montecarlo.add_argument("--clusters", type=int, default=3,
                            help="tuning cluster budget (only with --tune)")
    montecarlo.add_argument("--beta-budget", type=float, default=0.0,
                            help="slowdown margin defining timing yield "
                                 "and, with --tune, the tuning target")
    montecarlo.set_defaults(func=_cmd_montecarlo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
