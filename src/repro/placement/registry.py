"""Placer registry: every placement engine behind one ``place()`` call.

Placement started as a single deterministic BFS/serpentine fold; the
annealing placer (Sec. 2-3.3: make critical-gate clustering an
*optimized* property, not an accident of netlist order) adds a second
engine family with tunable presets.  Mirroring
:mod:`repro.core.registry`, this module puts the engines behind one
dispatch table so the flow layer, ``repro.api`` specs and the CLI name
placers declaratively and new engines plug in without touching callers:

    from repro.placement.registry import place
    design = place(netlist, library, method="anneal:quick")

Registered entries (aliases in parentheses):

* ``bfs`` — the BFS/serpentine baseline (the default everywhere);
* ``anneal:quick`` — short anneal for smoke tests and CI;
* ``anneal:default`` (``anneal``) — the standard quality preset;
* ``anneal:deep`` — long cooling schedule for benchmark frontiers.

Every entry must carry a docstring — registration fails without one,
matching the solver-registry contract that ``make lint`` enforces.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import PlacementError, RegistryError
from repro.netlist.core import Netlist
from repro.placement.anneal import AnnealConfig, anneal_place
from repro.placement.floorplan import DEFAULT_UTILIZATION
from repro.placement.placed_design import PlacedDesign
from repro.placement.placer import _place_bfs
from repro.tech.cells import CellLibrary

PlacerFunc = Callable[..., PlacedDesign]


@dataclasses.dataclass(frozen=True)
class PlacerEntry:
    """One registered placement engine."""

    name: str
    func: PlacerFunc
    summary: str
    """First docstring line, shown in CLI/API listings."""


class PlacerRegistry:
    """Name -> placer dispatch table with alias support.

    Entries are callables ``func(netlist, library, *, utilization,
    aspect_ratio, num_rows, refine_passes, **opts) -> PlacedDesign``.
    Registration enforces a non-empty docstring so the registry doubles
    as user-facing documentation of the engine space.
    """

    def __init__(self) -> None:
        self._entries: dict[str, PlacerEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(self, name: str,
                 func: PlacerFunc | None = None) -> PlacerFunc:
        """Register a placement engine (usable as a decorator)."""
        if func is None:
            return lambda f: self.register(name, f)
        if name in self._entries or name in self._aliases:
            raise RegistryError(f"placer {name!r} is already registered")
        doc = (func.__doc__ or "").strip()
        if not doc:
            raise RegistryError(
                f"placer {name!r} has no docstring; every registry entry "
                "must document its engine")
        summary = doc.splitlines()[0].strip()
        self._entries[name] = PlacerEntry(name=name, func=func,
                                          summary=summary)
        return func

    def alias(self, alias: str, target: str) -> None:
        """Register ``alias`` as another name for entry ``target``."""
        if alias in self._entries or alias in self._aliases:
            raise RegistryError(f"placer {alias!r} is already registered")
        if target not in self._entries:
            raise RegistryError(
                f"alias target {target!r} is not a registered placer")
        self._aliases[alias] = target

    def get(self, method: str) -> PlacerEntry:
        """Resolve a placer name (or alias) to its entry."""
        name = self._aliases.get(method, method)
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown placer {method!r}; registered placers: "
                f"{', '.join(self.names())}") from None

    def names(self, include_aliases: bool = False) -> tuple[str, ...]:
        """Registered placer names, sorted."""
        names = set(self._entries)
        if include_aliases:
            names |= set(self._aliases)
        return tuple(sorted(names))

    def entries(self) -> tuple[PlacerEntry, ...]:
        """All registered entries, sorted by name."""
        return tuple(self._entries[name] for name in sorted(self._entries))

    def place(self, netlist: Netlist, library: CellLibrary,
              method: str = "bfs", *,
              utilization: float = DEFAULT_UTILIZATION,
              aspect_ratio: float = 1.0,
              num_rows: int | None = None,
              refine_passes: int = 1, **opts) -> PlacedDesign:
        """Dispatch one placement run to the named engine."""
        return self.get(method).func(
            netlist, library, utilization=utilization,
            aspect_ratio=aspect_ratio, num_rows=num_rows,
            refine_passes=refine_passes, **opts)


place_registry = PlacerRegistry()
"""The process-wide default registry, pre-loaded with the engines
below."""


def place(netlist: Netlist, library: CellLibrary, method: str = "bfs",
          **kwargs) -> PlacedDesign:
    """Place a netlist via the default registry."""
    return place_registry.place(netlist, library, method, **kwargs)


def placer_names(include_aliases: bool = True) -> tuple[str, ...]:
    """Registered placer names (the valid ``RunSpec.placer`` values)."""
    return place_registry.names(include_aliases=include_aliases)


def validate_placer_spec(placer: str) -> None:
    """Raise :class:`RegistryError` unless ``placer`` names an engine."""
    if not isinstance(placer, str) or not placer:
        raise RegistryError(
            f"placer spec must be a non-empty string, got {placer!r}")
    place_registry.get(placer)


@place_registry.register("bfs")
def _bfs_entry(netlist: Netlist, library: CellLibrary, *,
               utilization: float = DEFAULT_UTILIZATION,
               aspect_ratio: float = 1.0,
               num_rows: int | None = None,
               refine_passes: int = 1, **opts) -> PlacedDesign:
    """BFS/serpentine baseline: deterministic connectivity-order fold.

    Takes no engine options; passing any raises
    :class:`PlacementError`.
    """
    if opts:
        raise PlacementError(
            f"the bfs placer takes no options, got {sorted(opts)}")
    return _place_bfs(netlist, library, utilization=utilization,
                      aspect_ratio=aspect_ratio, num_rows=num_rows,
                      refine_passes=refine_passes)


#: preset cooling schedules for the annealing engine
ANNEAL_PRESETS: dict[str, AnnealConfig] = {
    "quick": AnnealConfig(iterations=64, moves_per_step=64),
    "default": AnnealConfig(iterations=256, moves_per_step=128),
    "deep": AnnealConfig(iterations=768, moves_per_step=256),
}


def _make_anneal_entry(preset: str) -> PlacerFunc:
    def entry(netlist: Netlist, library: CellLibrary, *,
              utilization: float = DEFAULT_UTILIZATION,
              aspect_ratio: float = 1.0,
              num_rows: int | None = None,
              refine_passes: int = 1, **opts) -> PlacedDesign:
        try:
            config = dataclasses.replace(ANNEAL_PRESETS[preset], **opts)
        except TypeError as exc:
            raise PlacementError(
                f"bad anneal option for preset {preset!r}: {exc}"
            ) from exc
        return anneal_place(netlist, library, utilization=utilization,
                            aspect_ratio=aspect_ratio, num_rows=num_rows,
                            refine_passes=refine_passes, config=config)
    entry.__name__ = f"anneal_{preset}"
    entry.__doc__ = (
        f"Simulated-annealing placer, {preset!r} preset "
        f"({ANNEAL_PRESETS[preset].iterations} steps x "
        f"{ANNEAL_PRESETS[preset].moves_per_step} moves).\n\n"
        "Accepts AnnealConfig field overrides as keyword options "
        "(``seed``, ``iterations``, ``lambda_scale``, ...); see "
        ":class:`repro.placement.anneal.AnnealConfig`.")
    return entry


for _preset in ANNEAL_PRESETS:
    place_registry.register(f"anneal:{_preset}",
                            _make_anneal_entry(_preset))

place_registry.alias("anneal", "anneal:default")
