"""Core floorplan: the row/site structure body biasing operates on.

The paper's method is defined entirely in terms of standard-cell rows:
each row is the atomic unit of body-bias assignment (Sec. 3.3, Sec. 4).
A :class:`Floorplan` describes the core area as ``num_rows`` horizontal
rows of placement sites.  Row counts follow from a square-ish aspect
ratio and a utilization target, as in the paper's Physical Compiler runs
(their Table 1 row counts scale with the square root of the gate count;
so do ours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.tech.technology import Technology

#: default placement utilization target (fraction of row sites occupied)
DEFAULT_UTILIZATION = 0.75


@dataclass(frozen=True)
class Row:
    """One standard-cell row: a horizontal strip of placement sites."""

    index: int
    y_um: float
    num_sites: int
    site_width_um: float

    @property
    def width_um(self) -> float:
        return self.num_sites * self.site_width_um

    def site_x_um(self, site: int) -> float:
        """X coordinate of a site's left edge."""
        if not 0 <= site < self.num_sites:
            raise PlacementError(
                f"site {site} outside row {self.index} "
                f"(0..{self.num_sites - 1})")
        return site * self.site_width_um


@dataclass(frozen=True)
class Floorplan:
    """A core area made of equal-width standard-cell rows."""

    tech: Technology
    rows: tuple[Row, ...]
    utilization_target: float

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def core_width_um(self) -> float:
        return self.rows[0].width_um

    @property
    def core_height_um(self) -> float:
        return self.num_rows * self.tech.row_height_um

    @property
    def core_area_um2(self) -> float:
        return self.core_width_um * self.core_height_um

    @property
    def sites_per_row(self) -> int:
        return self.rows[0].num_sites

    def row(self, index: int) -> Row:
        if not 0 <= index < self.num_rows:
            raise PlacementError(
                f"row {index} outside floorplan (0..{self.num_rows - 1})")
        return self.rows[index]

    def total_sites(self) -> int:
        return sum(row.num_sites for row in self.rows)


def make_floorplan(tech: Technology, total_cell_sites: int,
                   utilization: float = DEFAULT_UTILIZATION,
                   aspect_ratio: float = 1.0,
                   num_rows: int | None = None) -> Floorplan:
    """Size a floorplan for a design of ``total_cell_sites`` site-widths.

    ``aspect_ratio`` is height/width.  If ``num_rows`` is given it wins
    and the row width is derived from the utilization target; otherwise
    the row count follows from a square-ish core:
    ``height = aspect * width`` with ``rows * width * util >= total``.
    """
    if total_cell_sites <= 0:
        raise PlacementError("design has no placeable area")
    if not 0 < utilization <= 1:
        raise PlacementError(
            f"utilization must be in (0, 1], got {utilization}")
    if aspect_ratio <= 0:
        raise PlacementError("aspect ratio must be positive")

    total_width_um = total_cell_sites * tech.site_width_um
    if num_rows is None:
        # width such that aspect*width of rows at `utilization` fits all cells
        core_width = math.sqrt(
            total_width_um * tech.row_height_um / (utilization * aspect_ratio))
        num_rows = max(1, round(aspect_ratio * core_width /
                                tech.row_height_um))
    if num_rows <= 0:
        raise PlacementError("num_rows must be positive")

    sites_per_row = math.ceil(total_cell_sites / (utilization * num_rows))
    rows = tuple(
        Row(index=i, y_um=i * tech.row_height_um,
            num_sites=sites_per_row, site_width_um=tech.site_width_um)
        for i in range(num_rows))
    return Floorplan(tech=tech, rows=rows, utilization_target=utilization)
