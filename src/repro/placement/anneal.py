"""Seeded simulated-annealing placer with a bias-domain-aware cost.

The paper's physical premise (Sec. 1-3.3) is that timing-critical gates
cluster spatially, which is what keeps row-level FBB wells cheap
(< 5 % area, Sec. 5).  The BFS/serpentine placer merely *inherits*
whatever clustering the netlist order produces; this annealer actively
optimizes for it.  Starting from the BFS result it minimizes

    cost = HPWL + lambda * (boundaries + kappa * sum_r sqrt(c_r))

where ``c_r`` counts timing-critical gates on row ``r`` (criticality =
membership of a Sec. 3.1 violating path at ``critical_beta``),
``boundaries`` counts adjacent rows that disagree on holding critical
gates — exactly the :mod:`repro.layout.wells` well-separation semantics
against the induced critical/non-critical row map — and the
Schur-concave ``sqrt`` term rewards *concentrating* critical gates into
few rows even while the integer boundary count sits on a plateau.

Per temperature step a whole batch of K candidate moves (equal-width
swaps, relocates to a row frontier, and targeted relocates of critical
gates toward already-critical rows) is scored in one vectorized
:meth:`~repro.placement.hpwl.HpwlKernel.delta_hpwl` call, thinned to a
conflict-free subset and committed.  Cooling is geometric.

Determinism contract: all randomness flows from one
``np.random.default_rng(config.seed)`` with a fixed per-step draw
order, so the same seed reproduces a bit-identical
:class:`~repro.placement.placed_design.PlacedDesign`, and
``iterations=0`` returns exactly the BFS seed placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlacementError
from repro.netlist.core import Netlist
from repro.placement.floorplan import DEFAULT_UTILIZATION
from repro.placement.hpwl import HpwlKernel, MoveBatch, refine_design
from repro.placement.placed_design import PlacedDesign
from repro.tech.cells import CellLibrary

#: rows with critical weight above this count as biased wells
BIAS_EPS = 1e-12


@dataclass(frozen=True)
class AnnealConfig:
    """Knobs of one annealing run (all defaults give the CI preset)."""

    iterations: int = 256
    """Temperature steps; 0 disables annealing (BFS result returned)."""
    moves_per_step: int = 128
    """Candidate moves scored per step in one vectorized batch."""
    t0_scale: float = 1.0
    """Initial temperature as a multiple of the seed's mean net span."""
    cool_to: float = 0.02
    """Final temperature as a fraction of the initial one."""
    lambda_scale: float = 1.0
    """Well-penalty weight as a multiple of the auto weight (1 % of the
    seed HPWL per boundary unit)."""
    kappa: float = 0.25
    """Weight of the sqrt concentration surrogate inside the penalty."""
    swap_frac: float = 0.5
    """Fraction of proposals that are equal-width two-gate swaps."""
    targeted_frac: float = 0.25
    """Fraction of proposals relocating a critical gate toward an
    already-critical row (the rest are uniform relocates)."""
    critical_beta: float = 0.05
    """Slowdown coefficient defining the violating-path gate set."""
    seed: int = 0
    """RNG seed; same seed => bit-identical placement."""

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise PlacementError(
                f"iterations must be >= 0, got {self.iterations}")
        if self.moves_per_step < 1:
            raise PlacementError(
                f"moves_per_step must be >= 1, got {self.moves_per_step}")
        if not 0.0 < self.cool_to <= 1.0:
            raise PlacementError(
                f"cool_to must be in (0, 1], got {self.cool_to}")
        if self.t0_scale <= 0 or self.lambda_scale < 0 or self.kappa < 0:
            raise PlacementError(
                "t0_scale must be positive; lambda_scale and kappa "
                "non-negative")
        if not (0.0 <= self.swap_frac <= 1.0
                and 0.0 <= self.targeted_frac <= 1.0
                and self.swap_frac + self.targeted_frac <= 1.0):
            raise PlacementError(
                "swap_frac and targeted_frac must be fractions summing "
                "to at most 1")
        if self.critical_beta < 0:
            raise PlacementError(
                f"critical_beta must be >= 0, got {self.critical_beta}")


class WellField:
    """Row criticality counts and the bias-domain penalty terms."""

    def __init__(self, num_rows: int, weights: np.ndarray,
                 rows: np.ndarray, kappa: float) -> None:
        self.num_rows = num_rows
        self.weights = weights
        self.kappa = kappa
        self.counts = np.zeros(num_rows)
        self.rebuild(rows)

    def rebuild(self, rows: np.ndarray) -> None:
        """Exact recount of per-row critical weight from the state."""
        self.counts = np.bincount(rows, weights=self.weights,
                                  minlength=self.num_rows)

    def biased_rows(self) -> np.ndarray:
        """Row indices currently holding critical weight."""
        return np.nonzero(self.counts > BIAS_EPS)[0]

    def total(self) -> float:
        """boundaries + kappa * sum sqrt(c_r), in penalty units."""
        biased = self.counts > BIAS_EPS
        boundaries = int(np.count_nonzero(biased[:-1] != biased[1:]))
        concentration = float(np.sqrt(
            np.maximum(self.counts, 0.0)).sum())
        return boundaries + self.kappa * concentration

    def delta(self, batch: MoveBatch, rows_now: np.ndarray) -> np.ndarray:
        """Per-move penalty change for K moves, vectorized.

        Builds the (move, row, weight-change) triples each move
        induces, folds duplicates, and evaluates the boundary and
        concentration terms only on the touched rows/edges.
        """
        num_moves = len(batch)
        if num_moves == 0:
            return np.zeros(0)
        weight0 = self.weights[batch.gate0]
        has_partner = batch.gate1 >= 0
        gate1 = np.where(has_partner, batch.gate1, 0)
        weight1 = np.where(has_partner, self.weights[gate1], 0.0)
        old_row0 = rows_now[batch.gate0]
        old_row1 = np.where(has_partner, rows_now[gate1], old_row0)
        new_row1 = np.where(has_partner, batch.row1, old_row0)
        move_rows = np.stack(
            [old_row0, batch.row0, old_row1, new_row1], axis=1)
        changes = np.stack(
            [-weight0, weight0, -weight1,
             np.where(has_partner, weight1, 0.0)], axis=1)
        keys = (np.arange(num_moves)[:, None] * self.num_rows
                + move_rows).ravel()
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        row_change = np.zeros(len(unique_keys))
        np.add.at(row_change, inverse, changes.ravel())
        pair_move = unique_keys // self.num_rows
        pair_row = unique_keys % self.num_rows
        old_counts = self.counts[pair_row]
        new_counts = np.maximum(old_counts + row_change, 0.0)

        delta = np.zeros(num_moves)
        concentration_change = (np.sqrt(new_counts)
                                - np.sqrt(np.maximum(old_counts, 0.0)))
        np.add.at(delta, pair_move, self.kappa * concentration_change)

        # Boundary term: only edges adjacent to a touched row can flip.
        biased = self.counts > BIAS_EPS
        new_biased = new_counts > BIAS_EPS
        edges = np.concatenate([pair_row - 1, pair_row])
        edge_move = np.concatenate([pair_move, pair_move])
        in_range = (edges >= 0) & (edges < self.num_rows - 1)
        edge_keys = np.unique(
            edge_move[in_range] * self.num_rows + edges[in_range])
        edge_pm = edge_keys // self.num_rows
        edge_row = edge_keys % self.num_rows

        def lookup(move_ids: np.ndarray,
                   row_ids: np.ndarray) -> np.ndarray:
            """Post-move biased status of (move, row), falling back to
            the current status for untouched rows."""
            targets = move_ids * self.num_rows + row_ids
            pos = np.searchsorted(unique_keys, targets)
            pos_clipped = np.minimum(pos, len(unique_keys) - 1)
            hit = unique_keys[pos_clipped] == targets
            return np.where(hit, new_biased[pos_clipped],
                            biased[row_ids])

        below = lookup(edge_pm, edge_row)
        above = lookup(edge_pm, edge_row + 1)
        was_boundary = biased[edge_row] != biased[edge_row + 1]
        now_boundary = below != above
        np.add.at(delta, edge_pm,
                  now_boundary.astype(float) - was_boundary.astype(float))
        return delta


def critical_gate_weights(design: PlacedDesign,
                          critical_beta: float) -> np.ndarray:
    """Per-gate criticality (1.0 = on a violating path) in netlist order.

    Runs one STA on the seed placement and marks every gate of every
    Sec. 3.1 violating path at slowdown ``critical_beta`` — the gate
    set whose rows the allocator will have to bias.
    """
    from repro.sta.engine import TimingAnalyzer
    from repro.sta.paths import extract_paths, violating_paths
    analyzer = TimingAnalyzer.for_placed(design)
    paths = extract_paths(analyzer)
    weights = np.zeros(len(design.netlist.gates))
    if not paths:
        return weights
    index = {name: i for i, name in enumerate(design.netlist.gates)}
    dcrit_ps = paths[0].delay_ps
    for path in violating_paths(paths, dcrit_ps, critical_beta):
        for name in path.gates:
            weights[index[name]] = 1.0
    return weights


def _propose(kernel: HpwlKernel, field: WellField,
             rng: np.random.Generator, config: AnnealConfig,
             critical_ids: np.ndarray
             ) -> tuple[MoveBatch, np.ndarray]:
    """Draw one step's move batch; returns (batch, feasible mask).

    The draw order and count per step are fixed by ``config``, so the
    RNG stream — and with it the whole anneal — replays exactly for a
    given seed.
    """
    num_moves = config.moves_per_step
    num_gates = len(kernel.rows)
    kind_u = rng.random(num_moves)
    gate_a = rng.integers(0, num_gates, num_moves)
    gate_b = rng.integers(0, num_gates, num_moves)
    target_rows = rng.integers(0, kernel.num_rows, num_moves)
    critical_pick = rng.integers(0, max(len(critical_ids), 1), num_moves)
    biased = field.biased_rows()
    biased_pick = rng.integers(0, max(len(biased), 1), num_moves)

    is_swap = kind_u < config.swap_frac
    is_targeted = (kind_u >= 1.0 - config.targeted_frac) \
        & (len(critical_ids) > 0)
    gate0 = np.where(is_targeted, critical_ids[critical_pick]
                     if len(critical_ids) else gate_a, gate_a)
    target = np.where(is_targeted & (len(biased) > 0),
                      biased[biased_pick] if len(biased) else target_rows,
                      target_rows)

    row_ends = kernel.row_ends()
    # Swap slots: exchange (row, site); relocate: append at frontier.
    new_row0 = np.where(is_swap, kernel.rows[gate_b], target)
    new_site0 = np.where(is_swap, kernel.sites[gate_b],
                         row_ends[target])
    gate1 = np.where(is_swap, gate_b, -1)
    new_row1 = np.where(is_swap, kernel.rows[gate0], 0)
    new_site1 = np.where(is_swap, kernel.sites[gate0], 0)
    batch = MoveBatch(gate0=gate0, row0=new_row0, site0=new_site0,
                      gate1=gate1, row1=new_row1, site1=new_site1)
    swap_ok = (kernel.widths[gate0] == kernel.widths[gate_b]) \
        & (gate0 != gate_b)
    relocate_ok = (row_ends[target] + kernel.widths[gate0]
                   <= kernel.num_sites)
    feasible = np.where(is_swap, swap_ok, relocate_ok)
    return batch, feasible


def anneal_place(netlist: Netlist, library: CellLibrary, *,
                 utilization: float = DEFAULT_UTILIZATION,
                 aspect_ratio: float = 1.0,
                 num_rows: int | None = None,
                 refine_passes: int = 1,
                 config: AnnealConfig | None = None) -> PlacedDesign:
    """Anneal a design from the BFS seed; returns a validated design.

    With ``config.iterations == 0`` the BFS seed is returned untouched
    (bit-identical to ``place_design(..., placer="bfs")``).  Otherwise
    the best-cost snapshot seen during cooling is restored, greedily
    refined (intra-row swaps keep the well penalty invariant) and
    validated.
    """
    from repro.placement.placer import _place_bfs
    if config is None:
        config = AnnealConfig()
    seed_design = _place_bfs(netlist, library, utilization=utilization,
                             aspect_ratio=aspect_ratio, num_rows=num_rows,
                             refine_passes=refine_passes)
    if config.iterations == 0:
        return seed_design

    rng = np.random.default_rng(config.seed)
    kernel = HpwlKernel(seed_design)
    weights = critical_gate_weights(seed_design, config.critical_beta)
    field = WellField(kernel.num_rows, weights, kernel.rows, config.kappa)
    critical_ids = np.nonzero(weights > 0)[0]

    seed_hpwl_um = kernel.total_hpwl_um()
    lambda_um = config.lambda_scale * 0.01 * seed_hpwl_um
    mean_span_um = seed_hpwl_um / max(kernel.num_nets, 1)
    t0_um = config.t0_scale * max(mean_span_um, 1e-9)
    t_end_um = config.cool_to * t0_um

    best_cost = kernel.total_hpwl_um() + lambda_um * field.total()
    best_rows = kernel.rows.copy()
    best_sites = kernel.sites.copy()
    steps = config.iterations
    for step in range(steps):
        temperature = t0_um * (t_end_um / t0_um) ** (
            step / max(steps - 1, 1))
        batch, feasible = _propose(kernel, field, rng, config,
                                   critical_ids)
        delta_um = kernel.delta_hpwl(batch) \
            + lambda_um * field.delta(batch, kernel.rows)
        delta_um = np.where(feasible, delta_um, np.inf)
        uniform = rng.random(len(delta_um))
        accept_p = np.exp(-np.maximum(delta_um, 0.0) / temperature)
        accepted = feasible & ((delta_um <= 0.0) | (uniform < accept_p))
        keep = kernel.first_claim(batch, accepted)
        if kernel.apply(batch, keep):
            field.rebuild(kernel.rows)
        cost = kernel.total_hpwl_um() + lambda_um * field.total()
        if cost < best_cost - 1e-9:
            best_cost = cost
            best_rows = kernel.rows.copy()
            best_sites = kernel.sites.copy()

    kernel.set_state(best_rows, best_sites)
    design = kernel.to_placed_design()
    if refine_passes > 0:
        refine_design(design, refine_passes)
    design.validate()
    return design
