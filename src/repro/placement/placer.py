"""Row-based standard-cell placer.

A lightweight stand-in for Synopsys Physical Compiler's placement step.
What the FBB methodology needs from placement is *row locality*: gates on
the same combinational paths should concentrate in few rows, because the
whole premise of physically clustered FBB is that timing-critical gates
cluster spatially (Sec. 1-2).  The placer achieves this the way real
netlist-driven placers do, just more simply:

1. **Linear ordering** — a breadth-first traversal over the netlist from
   the primary inputs/flops interleaves each gate with its fanin cone,
   producing a 1-D ordering in which connected gates sit close together.
2. **Serpentine folding** — the ordering is folded row by row
   (alternating direction) onto the floorplan, turning 1-D locality into
   2-D locality.
3. **Greedy refinement** — optional pairwise-swap passes reduce
   half-perimeter wirelength further (batched through the vectorized
   :mod:`repro.placement.hpwl` kernel).

The result is deterministic for a given netlist.  ``place_design``
also fronts the placer registry: ``placer="anneal:<preset>"`` hands
the BFS result to the simulated annealer of
:mod:`repro.placement.anneal` as its starting point.
"""

from __future__ import annotations

from collections import deque

from repro.errors import PlacementError
from repro.netlist.core import Netlist
from repro.placement.floorplan import (DEFAULT_UTILIZATION, Floorplan,
                                       make_floorplan)
from repro.placement.hpwl import refine_design
from repro.placement.placed_design import PlacedDesign, Placement
from repro.tech.cells import CellLibrary


def _component_labels(netlist: Netlist) -> dict[str, int]:
    """Weakly-connected-component label per gate (union-find over nets).

    Labels are normalized to the component's first gate in netlist
    (insertion) order, so the numbering is deterministic.
    """
    parent: dict[str, str] = {name: name for name in netlist.gates}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    for net in netlist.nets.values():
        members = ([net.driver] if net.driver is not None else []) \
            + [sink for sink, _pin in net.sinks]
        for left, right in zip(members, members[1:]):
            parent[find(left)] = find(right)

    labels: dict[str, int] = {}
    next_label: dict[str, int] = {}
    for name in netlist.gates:
        root = find(name)
        if root not in next_label:
            next_label[root] = len(next_label)
        labels[name] = next_label[root]
    return labels


def connectivity_order(netlist: Netlist) -> list[str]:
    """BFS linear ordering that keeps connected gates adjacent.

    Disconnected components (independent blocks of a multi-block SoC
    module) are laid out one after another — each component's BFS runs
    to completion before the next begins — so the serpentine fold gives
    every block its own contiguous band of rows.  This is what makes
    block locality, and with it the spatial-compensation experiments,
    physical: a block's critical paths stay inside its band.  For the
    common single-component netlist the ordering is identical to a
    plain global BFS.
    """
    labels = _component_labels(netlist)

    # Seed gates exactly as the global BFS would: gates fed by primary
    # inputs (in netlist order), then flops (they start paths).
    seeds: list[str] = []
    seeded: set[str] = set()
    for net_name in netlist.primary_inputs:
        for gate in netlist.fanout_gates(net_name):
            if gate.name not in seeded:
                seeded.add(gate.name)
                seeds.append(gate.name)
    for gate in netlist.gates.values():
        if gate.is_sequential and gate.name not in seeded:
            seeded.add(gate.name)
            seeds.append(gate.name)

    # Bucket seeds and gates by component once (keeps the walk linear
    # for many-island netlists), in deterministic order: components
    # first by seed appearance, then (seedless ones) by first gate in
    # netlist order.
    seeds_of: dict[int, list[str]] = {}
    for name in seeds:
        seeds_of.setdefault(labels[name], []).append(name)
    gates_of: dict[int, list[str]] = {}
    for name in netlist.gates:
        gates_of.setdefault(labels[name], []).append(name)
    component_order = list(seeds_of)
    component_order += [label for label in gates_of
                        if label not in seeds_of]

    order: list[str] = []
    visited: set[str] = set()
    for component in component_order:
        queue: deque[str] = deque(seeds_of.get(component, ()))
        visited.update(queue)
        while queue:
            name = queue.popleft()
            order.append(name)
            gate = netlist.gates[name]
            for fanout in netlist.fanout_gates(gate.output):
                if fanout.name not in visited:
                    visited.add(fanout.name)
                    queue.append(fanout.name)
        # Leftovers of this component (unreachable from its seeds).
        for name in gates_of[component]:
            if name not in visited:
                order.append(name)
                visited.add(name)
    return order


def _fold_into_rows(order: list[str], netlist: Netlist,
                    library: CellLibrary, floorplan: Floorplan,
                    total_sites: int) -> dict[str, Placement]:
    """Serpentine-pack the ordering into rows; returns placements.

    Each row's site budget is the remaining design size spread evenly
    over the remaining rows, so packing waste in early rows is absorbed
    by later ones and the fold provably fits (row capacity carries
    ``1/utilization`` headroom over the even split).
    """
    placements: dict[str, Placement] = {}
    num_rows = floorplan.num_rows
    capacity = floorplan.sites_per_row
    row = 0
    used = 0
    remaining = total_sites
    direction_ltr = True
    row_members: list[tuple[str, int]] = []

    def row_budget() -> int:
        rows_left = num_rows - row
        if rows_left <= 1:
            return capacity
        return min(capacity, -(-remaining // rows_left))

    def flush_row() -> None:
        nonlocal row_members
        position = 0
        members = row_members if direction_ltr else list(reversed(row_members))
        for name, width in members:
            placements[name] = Placement(row=row, site=position,
                                         width_sites=width)
            position += width
        row_members = []

    budget = row_budget()
    for name in order:
        gate = netlist.gates[name]
        if gate.cell_name is None:
            raise PlacementError(f"gate {name!r} is unmapped; map first")
        width = library.cell(gate.cell_name).width_sites
        if used + width > max(budget, width) and row_members:
            flush_row()
            row += 1
            direction_ltr = not direction_ltr
            used = 0
            if row >= num_rows:
                raise PlacementError(
                    f"floorplan overflow: {num_rows} rows cannot "
                    "hold the design at this utilization")
            budget = row_budget()
        placements[name] = Placement(row, 0, width)  # placeholder
        row_members.append((name, width))
        used += width
        remaining -= width
    if row_members:
        flush_row()
    return placements


def _local_wirelength(design: PlacedDesign, gate_names: tuple[str, ...]) -> float:
    """HPWL restricted to nets touching the given gates."""
    nets: set[str] = set()
    for name in gate_names:
        gate = design.netlist.gates[name]
        nets.add(gate.output)
        nets.update(gate.inputs)
    total = 0.0
    for net_name in nets:
        net = design.netlist.nets[net_name]
        points = []
        if net.driver is not None:
            points.append(design.gate_position_um(net.driver))
        for sink, _pin in net.sinks:
            points.append(design.gate_position_um(sink))
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def _place_bfs(netlist: Netlist, library: CellLibrary,
               utilization: float = DEFAULT_UTILIZATION,
               aspect_ratio: float = 1.0,
               num_rows: int | None = None,
               refine_passes: int = 1) -> PlacedDesign:
    """The BFS/serpentine engine behind ``placer="bfs"``.

    Returns a validated :class:`PlacedDesign`.  Raises
    :class:`PlacementError` for unmapped netlists or overfull floorplans.
    """
    if netlist.num_gates == 0:
        raise PlacementError(f"netlist {netlist.name!r} has no gates")
    total_sites = 0
    for gate in netlist.gates.values():
        if gate.cell_name is None:
            raise PlacementError(
                f"gate {gate.name!r} is unmapped; run map_netlist first")
        total_sites += library.cell(gate.cell_name).width_sites

    floorplan = make_floorplan(library.tech, total_sites,
                               utilization=utilization,
                               aspect_ratio=aspect_ratio,
                               num_rows=num_rows)
    order = connectivity_order(netlist)
    placements = _fold_into_rows(order, netlist, library, floorplan,
                                 total_sites)
    design = PlacedDesign(netlist=netlist, library=library,
                          floorplan=floorplan, placements=placements)
    if refine_passes > 0:
        refine_design(design, refine_passes)
    design.validate()
    return design


def place_design(netlist: Netlist, library: CellLibrary,
                 utilization: float = DEFAULT_UTILIZATION,
                 aspect_ratio: float = 1.0,
                 num_rows: int | None = None,
                 refine_passes: int = 1,
                 placer: str = "bfs",
                 **placer_opts) -> PlacedDesign:
    """Place a mapped netlist onto a freshly sized floorplan.

    ``placer`` names an engine in the placer registry (``"bfs"`` — the
    deterministic default — or ``"anneal:<preset>"``); extra keyword
    options are forwarded to the engine (e.g. ``seed=1`` for the
    annealer).  Returns a validated :class:`PlacedDesign`.  Raises
    :class:`PlacementError` for unmapped netlists or overfull
    floorplans and :class:`~repro.errors.RegistryError` for unknown
    placer names.
    """
    if placer == "bfs" and not placer_opts:
        return _place_bfs(netlist, library, utilization=utilization,
                          aspect_ratio=aspect_ratio, num_rows=num_rows,
                          refine_passes=refine_passes)
    # Lazy import: the registry imports this module for the bfs entry.
    from repro.placement.registry import place_registry
    return place_registry.place(
        netlist, library, placer, utilization=utilization,
        aspect_ratio=aspect_ratio, num_rows=num_rows,
        refine_passes=refine_passes, **placer_opts)
