"""Row-based placement: floorplan, placer engines, placed-design
container (rows are the paper's Sec. 3.3 clustering granularity).

Two engines live behind :func:`place_design`: the deterministic
BFS/serpentine fold (default) and the simulated annealer of
:mod:`repro.placement.anneal`, dispatched through
:mod:`repro.placement.registry` (``placer="anneal:<preset>"``).
"""

from repro.placement.floorplan import (DEFAULT_UTILIZATION, Floorplan, Row,
                                       make_floorplan)
from repro.placement.hpwl import (HpwlKernel, MoveBatch, refine_design,
                                  total_hpwl)
from repro.placement.placed_design import PlacedDesign, Placement
from repro.placement.placer import connectivity_order, place_design

__all__ = [
    "DEFAULT_UTILIZATION",
    "Floorplan",
    "HpwlKernel",
    "MoveBatch",
    "PlacedDesign",
    "Placement",
    "Row",
    "connectivity_order",
    "make_floorplan",
    "place_design",
    "refine_design",
    "total_hpwl",
]
