"""Row-based placement: floorplan, placer, placed-design container
(rows are the paper's Sec. 3.3 clustering granularity)."""

from repro.placement.floorplan import (DEFAULT_UTILIZATION, Floorplan, Row,
                                       make_floorplan)
from repro.placement.placed_design import PlacedDesign, Placement
from repro.placement.placer import connectivity_order, place_design

__all__ = [
    "DEFAULT_UTILIZATION",
    "Floorplan",
    "PlacedDesign",
    "Placement",
    "Row",
    "connectivity_order",
    "make_floorplan",
    "place_design",
]
