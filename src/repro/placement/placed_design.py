"""PlacedDesign: a mapped netlist bound to floorplan rows.

This is the object the FBB allocation algorithms consume: it knows which
gates live on which row (the paper's clustering granularity), the
physical coordinates of every cell, per-row utilization (needed for the
contact-cell insertion rule of Sec. 3.3), and wirelength estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlacementError
from repro.netlist.core import Netlist
from repro.placement.floorplan import Floorplan
from repro.tech.cells import CellLibrary


@dataclass(frozen=True)
class Placement:
    """Physical location of one gate: row index plus site offset."""

    row: int
    site: int
    width_sites: int

    @property
    def end_site(self) -> int:
        """First site *after* this cell."""
        return self.site + self.width_sites


@dataclass
class PlacedDesign:
    """A mapped netlist with a legal row placement."""

    netlist: Netlist
    library: CellLibrary
    floorplan: Floorplan
    placements: dict[str, Placement] = field(default_factory=dict)

    # -- queries ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.floorplan.num_rows

    def placement(self, gate_name: str) -> Placement:
        try:
            return self.placements[gate_name]
        except KeyError:
            raise PlacementError(
                f"gate {gate_name!r} is not placed") from None

    def gates_in_row(self, row: int) -> list[str]:
        """Gate names on a row, ordered left to right."""
        self.floorplan.row(row)
        members = [(p.site, name) for name, p in self.placements.items()
                   if p.row == row]
        return [name for _site, name in sorted(members)]

    def row_of(self, gate_name: str) -> int:
        return self.placement(gate_name).row

    def rows_to_gates(self) -> list[list[str]]:
        """All rows as ordered gate-name lists (the allocator's view)."""
        table: list[list[str]] = [[] for _ in range(self.num_rows)]
        for name, placement in self.placements.items():
            table[placement.row].append(name)
        for row, members in enumerate(table):
            members.sort(key=lambda n: self.placements[n].site)
        return table

    def row_used_sites(self, row: int) -> int:
        return sum(p.width_sites for p in self.placements.values()
                   if p.row == row)

    def row_utilization(self, row: int) -> float:
        """Fraction of a row's sites occupied by placed cells."""
        return self.row_used_sites(row) / self.floorplan.row(row).num_sites

    def gate_position_um(self, gate_name: str) -> tuple[float, float]:
        """(x, y) of a gate's lower-left corner in micrometres."""
        placement = self.placement(gate_name)
        row = self.floorplan.row(placement.row)
        return row.site_x_um(placement.site), row.y_um

    # -- metrics -----------------------------------------------------------------

    def half_perimeter_wirelength_um(self) -> float:
        """Total HPWL over all nets (cell-origin approximation)."""
        total = 0.0
        for net in self.netlist.nets.values():
            points: list[tuple[float, float]] = []
            if net.driver is not None:
                points.append(self.gate_position_um(net.driver))
            for gate_name, _pin in net.sinks:
                points.append(self.gate_position_um(gate_name))
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check the placement is complete and legal.

        Rules: every gate placed exactly once, inside the floorplan, no
        two cells overlapping on a row.
        """
        missing = [name for name in self.netlist.gates
                   if name not in self.placements]
        if missing:
            raise PlacementError(
                f"{len(missing)} gates unplaced, e.g. {missing[:3]}")
        extra = [name for name in self.placements
                 if name not in self.netlist.gates]
        if extra:
            raise PlacementError(
                f"placements for unknown gates: {extra[:3]}")

        occupancy: dict[int, list[tuple[int, int, str]]] = {}
        for name, placement in self.placements.items():
            gate = self.netlist.gates[name]
            if gate.cell_name is None:
                raise PlacementError(f"gate {name!r} has no cell binding")
            expected = self.library.cell(gate.cell_name).width_sites
            if placement.width_sites != expected:
                raise PlacementError(
                    f"gate {name!r}: placed width {placement.width_sites} "
                    f"!= cell width {expected}")
            row = self.floorplan.row(placement.row)
            if placement.site < 0 or placement.end_site > row.num_sites:
                raise PlacementError(
                    f"gate {name!r} overflows row {placement.row}")
            occupancy.setdefault(placement.row, []).append(
                (placement.site, placement.end_site, name))

        for row, spans in occupancy.items():
            spans.sort()
            for (_, end_a, name_a), (start_b, _, name_b) in zip(
                    spans, spans[1:]):
                if start_b < end_a:
                    raise PlacementError(
                        f"row {row}: {name_a!r} overlaps {name_b!r}")
