"""Vectorized HPWL kernel: batched delta-wirelength for placement moves.

The annealing placer (Sec. 2-3.3 premise: timing-critical gates must
*cluster spatially* for row-level FBB to stay cheap) needs to score
thousands of candidate moves per temperature step.  Doing that with the
scalar per-net python loop of
:meth:`~repro.placement.placed_design.PlacedDesign.half_perimeter_wirelength_um`
would dominate runtime, so this module compiles the netlist **once**
into per-net gate-index arrays — the same trick
:mod:`repro.sta.batched` plays with level blocks — and keeps per-net
bounding boxes as numpy state:

* :class:`HpwlKernel` — netlist compiled to a padded member matrix plus
  a CSR gate→net incidence; placement state as ``rows``/``sites``
  arrays with derived coordinates.
* :meth:`HpwlKernel.delta_hpwl` — one vectorized evaluation of a whole
  :class:`MoveBatch` (K swap/relocate candidates): gather the affected
  (move, net) pairs, rebuild their boxes with the moved coordinates
  overridden, reduce per move with ``np.bincount``.  Bit-identical to
  the scalar oracle :meth:`HpwlKernel.delta_hpwl_scalar` because both
  traverse the same float64 operands in the same net order.
* :func:`total_hpwl` — the public full-design wirelength metric.
* :func:`refine_design` — greedy same-width adjacent-swap refinement
  expressed as batched kernel moves (the T→0 limit of the annealer).

Everything here is deterministic: no RNG, no dict-order dependence
beyond netlist insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlacementError
from repro.placement.placed_design import PlacedDesign, Placement

#: swap-acceptance threshold shared with the legacy scalar refinement
IMPROVE_EPS_UM = 1e-12


@dataclass(frozen=True)
class MoveBatch:
    """K candidate moves, encoded as target slots per touched gate.

    ``gate0`` always moves to ``(row0, site0)``.  For a swap, ``gate1``
    is the partner gate moving to ``(row1, site1)``; for a single-gate
    relocate ``gate1`` is ``-1`` and the ``row1``/``site1`` entries are
    ignored.
    """

    gate0: np.ndarray
    row0: np.ndarray
    site0: np.ndarray
    gate1: np.ndarray
    row1: np.ndarray
    site1: np.ndarray

    def __len__(self) -> int:
        return len(self.gate0)


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` for each (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(starts - (ends - counts), counts)
    return np.arange(total, dtype=np.int64) + offsets


class HpwlKernel:
    """Netlist compiled to numpy arrays + incremental per-net boxes.

    The compile step walks python objects once; every hot-path method
    afterwards is pure array code.  Placement state lives in the
    ``rows``/``sites``/``widths`` int arrays (gate order = netlist
    insertion order); per-net bounding boxes are maintained
    incrementally by :meth:`apply`.
    """

    def __init__(self, design: PlacedDesign) -> None:
        self.design = design
        netlist = design.netlist
        self.gate_names: list[str] = list(netlist.gates)
        index = {name: i for i, name in enumerate(self.gate_names)}
        num_gates = len(self.gate_names)

        floorplan = design.floorplan
        self.num_rows = floorplan.num_rows
        self.num_sites = floorplan.sites_per_row
        self._site_width_um = float(floorplan.rows[0].site_width_um)
        self._row_y_um = np.array([row.y_um for row in floorplan.rows])

        # Distinct member gates per net, nets with >= 2 members only
        # (single-gate and floating nets contribute zero span).
        members_list: list[list[int]] = []
        for net in netlist.nets.values():
            seen: list[int] = []
            seen_set: set[int] = set()
            gates = ([net.driver] if net.driver is not None else []) \
                + [sink for sink, _pin in net.sinks]
            for gate_name in gates:
                gate_index = index[gate_name]
                if gate_index not in seen_set:
                    seen_set.add(gate_index)
                    seen.append(gate_index)
            if len(seen) >= 2:
                members_list.append(seen)
        self.num_nets = len(members_list)
        max_degree = max((len(m) for m in members_list), default=1)
        members = np.full((self.num_nets, max_degree), -1, dtype=np.int64)
        for net_index, net_members in enumerate(members_list):
            members[net_index, :len(net_members)] = net_members
        self._members = members
        self._member_mask = members >= 0
        # Flat CSR of net members (net-major): the delta path iterates
        # only real pins instead of the padded matrix, which matters
        # when one high-fanout net would otherwise pad every row.
        self._net_deg = self._member_mask.sum(axis=1).astype(np.int64)
        self._net_members_flat = members[self._member_mask]
        self._net_start = np.zeros(self.num_nets + 1, dtype=np.int64)
        np.cumsum(self._net_deg, out=self._net_start[1:])

        # CSR gate -> incident net ids.
        flat_gates = members[self._member_mask]
        flat_nets = np.repeat(
            np.arange(self.num_nets, dtype=np.int64),
            self._member_mask.sum(axis=1))
        order = np.argsort(flat_gates, kind="stable")
        self._inc_nets = flat_nets[order]
        counts = np.bincount(flat_gates, minlength=num_gates)
        self._inc_start = np.zeros(num_gates + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inc_start[1:])

        # Placement state.
        rows = np.empty(num_gates, dtype=np.int64)
        sites = np.empty(num_gates, dtype=np.int64)
        widths = np.empty(num_gates, dtype=np.int64)
        for gate_index, name in enumerate(self.gate_names):
            placement = design.placement(name)
            rows[gate_index] = placement.row
            sites[gate_index] = placement.site
            widths[gate_index] = placement.width_sites
        self.rows = rows
        self.sites = sites
        self.widths = widths

        self._min_x = np.zeros(self.num_nets)
        self._max_x = np.zeros(self.num_nets)
        self._min_y = np.zeros(self.num_nets)
        self._max_y = np.zeros(self.num_nets)
        self._span = np.zeros(self.num_nets)
        self._refresh_positions(np.arange(num_gates))
        self._recompute_boxes(np.arange(self.num_nets))

    # -- state maintenance ------------------------------------------------

    def _refresh_positions(self, gate_ids: np.ndarray) -> None:
        if not hasattr(self, "_x"):
            self._x = np.zeros(len(self.rows))
            self._y = np.zeros(len(self.rows))
        self._x[gate_ids] = self.sites[gate_ids] * self._site_width_um
        self._y[gate_ids] = self._row_y_um[self.rows[gate_ids]]

    def _recompute_boxes(self, net_ids: np.ndarray) -> None:
        if len(net_ids) == 0:
            return
        mask = self._member_mask[net_ids]
        gate_ids = np.where(mask, self._members[net_ids], 0)
        x = self._x[gate_ids]
        y = self._y[gate_ids]
        self._min_x[net_ids] = np.where(mask, x, np.inf).min(axis=1)
        self._max_x[net_ids] = np.where(mask, x, -np.inf).max(axis=1)
        self._min_y[net_ids] = np.where(mask, y, np.inf).min(axis=1)
        self._max_y[net_ids] = np.where(mask, y, -np.inf).max(axis=1)
        self._span[net_ids] = \
            (self._max_x[net_ids] - self._min_x[net_ids]) \
            + (self._max_y[net_ids] - self._min_y[net_ids])

    def set_state(self, rows: np.ndarray, sites: np.ndarray) -> None:
        """Load a full placement state (e.g. a best-cost snapshot)."""
        self.rows = rows.astype(np.int64, copy=True)
        self.sites = sites.astype(np.int64, copy=True)
        all_gates = np.arange(len(self.rows))
        self._refresh_positions(all_gates)
        self._recompute_boxes(np.arange(self.num_nets))

    def row_ends(self) -> np.ndarray:
        """Per-row frontier: first site after the rightmost placed cell.

        Recomputed exactly from the current state, so space vacated by
        earlier relocates is reusable; appending a cell at
        ``row_ends()[r]`` can never overlap (every cell in row ``r``
        ends at or before it).
        """
        ends = np.zeros(self.num_rows, dtype=np.int64)
        np.maximum.at(ends, self.rows, self.sites + self.widths)
        return ends

    # -- metrics ----------------------------------------------------------

    def total_hpwl_um(self) -> float:
        """Full-design HPWL from the maintained per-net boxes."""
        return float(self._span.sum())

    def incident_nets(self, gate_index: int) -> np.ndarray:
        """Net ids incident to one gate (ascending)."""
        start = self._inc_start[gate_index]
        stop = self._inc_start[gate_index + 1]
        return self._inc_nets[start:stop]

    # -- batched move evaluation ------------------------------------------

    def _pair_list(self, batch: MoveBatch) -> tuple[np.ndarray, np.ndarray]:
        """Deduplicated (move, net) pairs affected by the batch,
        sorted by move then net id."""
        num_moves = len(batch)
        start0 = self._inc_start[batch.gate0]
        count0 = self._inc_start[batch.gate0 + 1] - start0
        has_partner = batch.gate1 >= 0
        gate1 = np.where(has_partner, batch.gate1, 0)
        start1 = self._inc_start[gate1]
        count1 = np.where(has_partner,
                          self._inc_start[gate1 + 1] - start1, 0)
        move_ids = np.concatenate([
            np.repeat(np.arange(num_moves), count0),
            np.repeat(np.arange(num_moves), count1)])
        net_ids = np.concatenate([
            self._inc_nets[_ragged_ranges(start0, count0)],
            self._inc_nets[_ragged_ranges(start1, count1)]])
        keys = np.unique(move_ids * self.num_nets + net_ids)
        return keys // self.num_nets, keys % self.num_nets

    def delta_hpwl(self, batch: MoveBatch) -> np.ndarray:
        """Per-move HPWL change for K moves, one vectorized pass.

        Exactly equal (bit-for-bit) to looping
        :meth:`delta_hpwl_scalar` over the batch: both recompute each
        affected net's box from the same float64 coordinates and
        accumulate per-net deltas in ascending net order
        (``np.bincount`` adds its weights sequentially in input order,
        and the pair list is sorted by move then net).
        """
        num_moves = len(batch)
        if num_moves == 0:
            return np.zeros(0)
        pair_move, pair_net = self._pair_list(batch)
        if len(pair_net) == 0:
            return np.zeros(num_moves)
        # Flat pin list of the affected nets (no padding): segment
        # boundaries for reduceat are the per-pair degree offsets.
        deg = self._net_deg[pair_net]
        pins = self._net_members_flat[
            _ragged_ranges(self._net_start[pair_net], deg)]
        seg_pair = np.repeat(np.arange(len(pair_net)), deg)
        x = self._x[pins]
        y = self._y[pins]
        new_x0 = batch.site0 * self._site_width_um
        new_y0 = self._row_y_um[batch.row0]
        new_x1 = batch.site1 * self._site_width_um
        new_y1 = self._row_y_um[np.where(batch.gate1 >= 0, batch.row1, 0)]
        pin_move = pair_move[seg_pair]
        moved0 = pins == batch.gate0[pin_move]
        x = np.where(moved0, new_x0[pin_move], x)
        y = np.where(moved0, new_y0[pin_move], y)
        # gate1 == -1 never equals a real pin id, so no spurious match.
        moved1 = pins == batch.gate1[pin_move]
        x = np.where(moved1, new_x1[pin_move], x)
        y = np.where(moved1, new_y1[pin_move], y)
        starts = np.zeros(len(pair_net), dtype=np.int64)
        np.cumsum(deg[:-1], out=starts[1:])
        new_span = \
            (np.maximum.reduceat(x, starts)
             - np.minimum.reduceat(x, starts)) \
            + (np.maximum.reduceat(y, starts)
               - np.minimum.reduceat(y, starts))
        deltas = new_span - self._span[pair_net]
        return np.bincount(pair_move, weights=deltas, minlength=num_moves)

    def delta_hpwl_scalar(self, batch: MoveBatch, move: int) -> float:
        """Scalar per-net oracle for one move of the batch.

        Kept deliberately loop-based (the pre-kernel
        ``_local_wirelength`` evaluation strategy) as the equivalence
        oracle for :meth:`delta_hpwl` in tests and benchmarks.
        """
        gate0 = int(batch.gate0[move])
        gate1 = int(batch.gate1[move])
        nets = set(self.incident_nets(gate0).tolist())
        if gate1 >= 0:
            nets |= set(self.incident_nets(gate1).tolist())
        overrides = {gate0: (batch.site0[move] * self._site_width_um,
                             self._row_y_um[batch.row0[move]])}
        if gate1 >= 0:
            overrides[gate1] = (batch.site1[move] * self._site_width_um,
                                self._row_y_um[batch.row1[move]])
        delta = 0.0
        for net_id in sorted(nets):
            xs, ys = [], []
            for gate_id in self._members[net_id]:
                if gate_id < 0:
                    continue
                if gate_id in overrides:
                    x, y = overrides[gate_id]
                else:
                    x, y = self._x[gate_id], self._y[gate_id]
                xs.append(x)
                ys.append(y)
            new_span = (max(xs) - min(xs)) + (max(ys) - min(ys))
            delta += new_span - self._span[net_id]
        return delta

    # -- conflict resolution and state updates ----------------------------

    def first_claim(self, batch: MoveBatch,
                    accepted: np.ndarray) -> np.ndarray:
        """Thin accepted moves to a conflict-free subset.

        Resources are the nets a move perturbs, the moved gates
        themselves, and (for relocates) the target row's frontier; the
        lowest-index accepted move claims each resource and any other
        claimant is dropped.  Kept moves are pairwise disjoint, so
        their batched deltas compose exactly.
        """
        keep = accepted.copy()
        ids = np.nonzero(keep)[0]
        if len(ids) <= 1:
            return keep
        gate0 = batch.gate0[ids]
        gate1 = batch.gate1[ids]
        has_partner = gate1 >= 0
        start0 = self._inc_start[gate0]
        count0 = self._inc_start[gate0 + 1] - start0
        gate1c = np.where(has_partner, gate1, 0)
        start1 = self._inc_start[gate1c]
        count1 = np.where(has_partner,
                          self._inc_start[gate1c + 1] - start1, 0)
        net_base, row_base = 0, self.num_nets
        gate_base = row_base + self.num_rows
        resources = [
            net_base + self._inc_nets[_ragged_ranges(start0, count0)],
            net_base + self._inc_nets[_ragged_ranges(start1, count1)],
            gate_base + gate0,
            gate_base + gate1[has_partner],
            row_base + batch.row0[ids][~has_partner],
        ]
        claimants = [
            np.repeat(ids, count0),
            np.repeat(ids, count1),
            ids,
            ids[has_partner],
            ids[~has_partner],
        ]
        resource = np.concatenate(resources)
        claimant = np.concatenate(claimants)
        total = gate_base + len(self.rows)
        claim = np.full(total, len(batch), dtype=np.int64)
        np.minimum.at(claim, resource, claimant)
        lost = claim[resource] != claimant
        keep[claimant[lost]] = False
        return keep

    def apply(self, batch: MoveBatch, keep: np.ndarray) -> int:
        """Commit the kept moves; returns how many were applied.

        Scatters the new slots into the state arrays, refreshes the
        moved coordinates and recomputes exactly the affected nets'
        boxes.  ``keep`` must be conflict-free (see
        :meth:`first_claim`).
        """
        ids = np.nonzero(keep)[0]
        if len(ids) == 0:
            return 0
        gate0 = batch.gate0[ids]
        self.rows[gate0] = batch.row0[ids]
        self.sites[gate0] = batch.site0[ids]
        has_partner = batch.gate1[ids] >= 0
        gate1 = batch.gate1[ids][has_partner]
        self.rows[gate1] = batch.row1[ids][has_partner]
        self.sites[gate1] = batch.site1[ids][has_partner]
        moved = np.concatenate([gate0, gate1])
        self._refresh_positions(moved)
        starts = self._inc_start[moved]
        counts = self._inc_start[moved + 1] - starts
        nets = np.unique(self._inc_nets[_ragged_ranges(starts, counts)])
        self._recompute_boxes(nets)
        return int(len(ids))

    # -- export -----------------------------------------------------------

    def write_back(self) -> None:
        """Write the current state into the source design in place."""
        placements = self.design.placements
        for gate_index, name in enumerate(self.gate_names):
            placements[name] = Placement(
                row=int(self.rows[gate_index]),
                site=int(self.sites[gate_index]),
                width_sites=int(self.widths[gate_index]))

    def to_placed_design(self) -> PlacedDesign:
        """A fresh :class:`PlacedDesign` of the current state."""
        placements = {
            name: Placement(row=int(self.rows[gate_index]),
                            site=int(self.sites[gate_index]),
                            width_sites=int(self.widths[gate_index]))
            for gate_index, name in enumerate(self.gate_names)}
        return PlacedDesign(netlist=self.design.netlist,
                            library=self.design.library,
                            floorplan=self.design.floorplan,
                            placements=placements)


def total_hpwl(design: PlacedDesign) -> float:
    """Vectorized full-design half-perimeter wirelength in µm.

    The public wirelength metric for reports and stats; agrees with the
    scalar
    :meth:`~repro.placement.placed_design.PlacedDesign.half_perimeter_wirelength_um`
    up to float summation order.
    """
    if not design.placements:
        raise PlacementError(
            f"design {design.netlist.name!r} has no placements")
    return HpwlKernel(design).total_hpwl_um()


def _adjacent_swap_batch(kernel: HpwlKernel) -> MoveBatch:
    """All equal-width horizontally adjacent pairs as swap candidates."""
    order = np.lexsort((kernel.sites, kernel.rows))
    same_row = kernel.rows[order][:-1] == kernel.rows[order][1:]
    left = order[:-1][same_row]
    right = order[1:][same_row]
    same_width = kernel.widths[left] == kernel.widths[right]
    left, right = left[same_width], right[same_width]
    return MoveBatch(
        gate0=left,
        row0=kernel.rows[right], site0=kernel.sites[right],
        gate1=right,
        row1=kernel.rows[left], site1=kernel.sites[left])


def refine_design(design: PlacedDesign, passes: int = 1) -> int:
    """Greedy same-width adjacent-swap refinement, batched.

    The T→0 limit of the annealer: each round evaluates every adjacent
    equal-width pair in one :meth:`HpwlKernel.delta_hpwl` call and
    commits the non-conflicting strictly improving swaps.  Mutates
    ``design`` in place; returns the number of swaps applied.
    """
    if passes <= 0 or not design.placements:
        return 0
    kernel = HpwlKernel(design)
    swaps = 0
    for _ in range(passes):
        batch = _adjacent_swap_batch(kernel)
        if len(batch) == 0:
            break
        improving = kernel.delta_hpwl(batch) < -IMPROVE_EPS_UM
        keep = kernel.first_claim(batch, improving)
        applied = kernel.apply(batch, keep)
        swaps += applied
        if applied == 0:
            break
    if swaps:
        kernel.write_back()
    return swaps
