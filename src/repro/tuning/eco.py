"""ECO incremental re-solve: patch a bias solution after drift.

The paper's allocation (Sec. 4) is a one-shot solve against one frozen
slowdown field.  Over a lifetime the field moves — NBTI drift between
epochs (:mod:`repro.variation.drift`), or a placement/netlist delta —
and re-running the whole Sec. 4 pre-processing plus solver per epoch
wastes work on the rows that did not move.  :class:`EcoSolver` is the
incremental path:

* the sensed per-row betas are **quantised** to a step (the same
  estimate grid :class:`~repro.tuning.controller.TuningController`
  programs), so sub-step wobble never invalidates anything;
* allocation is decomposed per **bias domain**
  (:class:`~repro.grouping.RowGrouping`, resolved once at construction
  — domains are physical wells, they do not move with the field); each
  domain must *undo its own damage*: for every extracted path it
  touches, recover the delay excess its own rows contribute.  The
  per-domain sub-solution is therefore a pure function of the domain's
  own quantised betas and the static path structure — the
  **dirty-domain invariant** (DESIGN.md, "Temporal scenarios");
* every sub-solve is memoised in an :class:`~repro.flow.cache.ArtifactCache`
  keyed by (design, tech, method, domain rows, quantised betas), so an
  epoch only pays for its **dirty domains** — rows whose quantised beta
  actually moved.  A zero-drift epoch collapses to pure cache hits.
  "Full re-solve" is the same code path against a cold cache, which is
  what makes incremental==full *bit-identical by construction* (the
  property :mod:`tests.tuning.test_eco_equivalence` drives);
* the spliced per-row assignment is repaired to the cluster budget
  (merge-up: the lowest non-zero rail joins the next one above, which
  only adds speed) and checked against the epoch's *joint* violating
  constraints — ``check_timing`` safety net — falling back to a cached
  global grouped solve on the (never-observed) failure path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.problem import FBBProblem
from repro.core.solution import BiasSolution
from repro.errors import InfeasibleError, TuningError
from repro.flow.cache import ArtifactCache, content_hash, tech_content
from repro.grouping.domains import RowGrouping
from repro.grouping.reduce import solve_grouped
from repro.grouping.registry import GroupingContext, make_grouping
from repro.placement.placed_design import PlacedDesign
from repro.power.leakage import leakage_matrix
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import extract_paths
from repro.tech.characterize import CharacterizedLibrary

#: default beta quantisation step — matches TuningController.beta_step,
#: the coarsest slowdown difference the tuning loop acts on.
DEFAULT_QUANT_STEP = 0.01

#: cache kind of the per-domain sub-solves (tier counters key on it)
DOMAIN_KIND = "eco-domain"

#: cache kind of the global fallback solves
GLOBAL_KIND = "eco-global"


def quantise_betas(row_betas: np.ndarray,
                   step: float = DEFAULT_QUANT_STEP) -> np.ndarray:
    """Floor per-row betas onto the estimate grid (9-decimal rounded,
    the controller's hash-stable float discipline)."""
    if step <= 0:
        raise TuningError(f"quantisation step must be positive, got {step}")
    betas = np.maximum(np.asarray(row_betas, dtype=float), 0.0)
    return np.round(np.floor(betas / step) * step, 9)


@dataclass(frozen=True)
class EcoResult:
    """One epoch's incremental re-solve: the spliced solution plus the
    dirty-domain bookkeeping the reports and benchmarks read."""

    solution: BiasSolution
    dirty_domains: tuple[int, ...]
    """Domains whose quantised beta field moved since the previous
    resolve (all of them on the first call)."""
    num_domains: int
    num_violating_paths: int
    repaired: bool
    """True when the spliced assignment exceeded the cluster budget and
    was merged up."""
    fallback: bool
    """True when the safety net had to re-solve globally."""
    runtime_s: float

    @property
    def levels(self) -> tuple[int, ...]:
        return self.solution.levels

    @property
    def leakage_nw(self) -> float:
        return self.solution.leakage_nw


@dataclass
class EcoSolver:
    """Incremental per-domain re-solver over a fixed placed design.

    Construction runs STA and path extraction once and freezes the
    domain map; :meth:`resolve` is then called once per drift epoch (or
    ECO event) with the sensed per-row beta field.  ``cache`` persists
    across calls — that persistence *is* the incremental mode; pass a
    fresh cold cache per call to get the reference full re-solve.
    """

    placed: PlacedDesign
    clib: CharacterizedLibrary
    method: str = "heuristic"
    clusters: int = 3
    grouping: str | RowGrouping | None = None
    quant_step: float = DEFAULT_QUANT_STEP
    dcrit_ps: float | None = None
    initial_betas: np.ndarray | None = None
    """Field the field-driven groupings (``correlation:k``) resolve
    against; domains are frozen wells, so this is consulted once."""
    cache: ArtifactCache = field(default_factory=ArtifactCache)

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise TuningError(
                f"cluster budget must be >= 1, got {self.clusters}")
        placed = self.placed
        analyzer = TimingAnalyzer.for_placed(placed)
        paths = extract_paths(analyzer)
        if self.dcrit_ps is None:
            self.dcrit_ps = max(path.delay_ps for path in paths)
        self._paths = tuple(paths)
        row_of = {name: placed.row_of(name)
                  for name in placed.netlist.gates}

        # Static per-path per-row structure over ALL extracted paths:
        # d0[k, i] — undegraded gate delay of path k on row i — is the
        # only matrix any epoch needs; degraded quantities are
        # column-scalings of it (build_problem's vector semantics).
        data, rows_idx, cols_idx, counts = [], [], [], []
        for k, path in enumerate(paths):
            per_row: dict[int, float] = {}
            per_count: dict[int, int] = {}
            for gate_name, delay in zip(path.gates, path.gate_delays_ps):
                row = row_of[gate_name]
                per_row[row] = per_row.get(row, 0.0) + delay
                per_count[row] = per_count.get(row, 0) + 1
            for row, delay in per_row.items():
                rows_idx.append(k)
                cols_idx.append(row)
                data.append(delay)
                counts.append(per_count[row])
        shape = (len(paths), placed.num_rows)
        self._d0 = csr_matrix((data, (rows_idx, cols_idx)), shape=shape)
        self._q0 = csr_matrix((counts, (rows_idx, cols_idx)), shape=shape)
        self._gate_totals = np.asarray(
            self._d0 @ np.ones(placed.num_rows)).ravel()
        self._setup = np.array([path.setup_ps for path in paths])
        #: per-path factor turning a row's beta-delay product into its
        #: excess contribution (gate derate plus setup-derate share)
        self._excess_factor = 1.0 + self._setup / np.maximum(
            self._gate_totals, 1e-12)

        self._leakage = leakage_matrix(placed, self.clib)
        self._speedups = np.array(
            [1.0 - scale for scale in self.clib.delay_scales])
        self._grouping = self._resolve_grouping()
        self._domain_rows = self._grouping.rows_of_groups()
        self._signature = content_hash({
            "artifact": "eco-solver",
            "design": placed.netlist.name,
            "tech": tech_content(placed.library.tech),
            "vbs_levels": list(self.clib.vbs_levels),
            "delay_scales": list(self.clib.delay_scales),
            "method": self.method,
            "clusters": self.clusters,
            "grouping": list(self._grouping.group_of_row),
            "quant_step": self.quant_step,
            "dcrit_ps": self.dcrit_ps,
        })
        self._previous_qbeta: np.ndarray | None = None

    # -- domain map -------------------------------------------------------

    def _resolve_grouping(self) -> RowGrouping:
        grouping = self.grouping
        if grouping is None or grouping == "identity":
            return RowGrouping.identity(self.placed.num_rows)
        if isinstance(grouping, RowGrouping):
            return grouping
        betas = (np.zeros(self.placed.num_rows)
                 if self.initial_betas is None
                 else np.asarray(self.initial_betas, dtype=float))
        context = GroupingContext(num_rows=self.placed.num_rows,
                                  row_betas=betas, placed=self.placed)
        return make_grouping(grouping, context)

    @property
    def num_domains(self) -> int:
        return self._grouping.num_groups

    def dirty_domains(self, row_betas: np.ndarray) -> tuple[int, ...]:
        """Domains whose quantised betas differ from the previous
        resolve (every domain before the first resolve)."""
        qbeta = quantise_betas(row_betas, self.quant_step)
        if self._previous_qbeta is None:
            return tuple(range(self.num_domains))
        changed = qbeta != self._previous_qbeta
        return tuple(sorted({
            domain for domain in range(self.num_domains)
            if changed[list(self._domain_rows[domain])].any()}))

    # -- the per-epoch entry point ----------------------------------------

    def resolve(self, row_betas: np.ndarray, *,
                cache: ArtifactCache | None = None) -> EcoResult:
        """Splice a bias solution for one epoch's sensed beta field.

        ``cache=None`` uses the solver's persistent cache (incremental
        mode); a fresh :class:`ArtifactCache` makes this the reference
        full re-solve — same code path, so the two are bit-identical.
        """
        start = time.perf_counter()
        cache = self.cache if cache is None else cache
        qbeta = quantise_betas(np.asarray(row_betas, dtype=float),
                               self.quant_step)
        if qbeta.shape != (self.placed.num_rows,):
            raise TuningError(
                f"row_betas needs shape ({self.placed.num_rows},), got "
                f"{qbeta.shape}")
        dirty = self.dirty_domains(qbeta)

        levels = np.zeros(self.placed.num_rows, dtype=int)
        fallback = False
        for domain in range(self.num_domains):
            rows = list(self._domain_rows[domain])
            local = qbeta[rows]
            if not local.any():
                continue  # undegraded domain: no excess, stays unbiased
            material = {"artifact": DOMAIN_KIND,
                        "solver": self._signature,
                        "rows": rows,
                        "qbetas": [float(value) for value in local]}
            payload = cache.get_or_create(
                DOMAIN_KIND, material,
                lambda rows=rows, local=local:
                    self._solve_domain(rows, local))
            if payload.get("infeasible"):
                fallback = True
                break
            levels[rows] = payload["levels"]

        problem = self._joint_problem(qbeta)
        repaired = False
        if not fallback:
            repaired = self._repair_clusters(problem, levels)
            if not problem.check_timing(levels):
                fallback = True  # safety net: splice failed CheckTiming
        if fallback:
            levels = self._solve_global(problem, qbeta, cache)
            repaired = False

        solution = BiasSolution(
            problem=problem,
            levels=tuple(int(level) for level in levels),
            method=f"eco:{self.method}",
            extras={"grouping": self._grouping.name,
                    "num_groups": self.num_domains,
                    "dirty_domains": [int(d) for d in dirty]})
        self._previous_qbeta = qbeta
        return EcoResult(
            solution=solution,
            dirty_domains=dirty,
            num_domains=self.num_domains,
            num_violating_paths=problem.num_constraints,
            repaired=repaired,
            fallback=fallback,
            runtime_s=time.perf_counter() - start)

    # -- internals --------------------------------------------------------

    def _solve_domain(self, rows: list[int],
                      local_qbeta: np.ndarray) -> dict:
        """One domain's undo-your-own-damage sub-solve (pure function of
        ``(rows, local_qbeta)`` given the frozen design — the cacheable
        unit).  Returns a JSON-plain payload so memory and disk tiers
        round-trip identically."""
        d0_sub = self._d0[:, rows]
        excess = np.asarray(
            d0_sub @ local_qbeta).ravel() * self._excess_factor
        touching = np.flatnonzero(excess > 1e-12)
        if touching.size == 0:
            return {"levels": [0] * len(rows), "leakage_nw": 0.0}
        derate = 1.0 + local_qbeta
        recovery = d0_sub[touching].multiply(derate[None, :]).tocsr()
        gate_counts = self._q0[touching][:, rows].tocsr()
        problem = FBBProblem(
            design_name=self.placed.netlist.name,
            beta=float(local_qbeta.max()),
            dcrit_ps=self.dcrit_ps,
            num_rows=len(rows),
            vbs_levels=self.clib.vbs_levels,
            speedups=self._speedups,
            leakage_nw=self._leakage[rows],
            recovery=recovery,
            gate_counts=gate_counts,
            required_ps=excess[touching],
            paths=tuple(self._paths[k] for k in touching),
            row_betas=local_qbeta)
        one_domain = RowGrouping(name="eco-domain",
                                 group_of_row=(0,) * len(rows))
        try:
            solution = solve_grouped(problem, self.method, self.clusters,
                                     grouping=one_domain)
        except InfeasibleError:
            return {"infeasible": True}
        return {"levels": [int(level) for level in solution.levels],
                "leakage_nw": float(solution.leakage_nw)}

    def _joint_problem(self, qbeta: np.ndarray) -> FBBProblem:
        """The epoch's true joint constraint set (every path whose
        degraded delay violates Dcrit), for the safety net and the
        returned solution's bookkeeping."""
        dot = np.asarray(self._d0 @ qbeta).ravel()
        degraded = (self._gate_totals + dot + self._setup
                    * (1.0 + dot / np.maximum(self._gate_totals, 1e-12)))
        violating = np.flatnonzero(degraded > self.dcrit_ps + 1e-9)
        derate = 1.0 + qbeta
        recovery = self._d0[violating].multiply(derate[None, :]).tocsr()
        return FBBProblem(
            design_name=self.placed.netlist.name,
            beta=float(qbeta.max(initial=0.0)),
            dcrit_ps=self.dcrit_ps,
            num_rows=self.placed.num_rows,
            vbs_levels=self.clib.vbs_levels,
            speedups=self._speedups,
            leakage_nw=self._leakage,
            recovery=recovery,
            gate_counts=self._q0[violating].tocsr(),
            required_ps=degraded[violating] - self.dcrit_ps,
            paths=tuple(self._paths[k] for k in violating),
            row_betas=qbeta)

    def _repair_clusters(self, problem: FBBProblem,
                         levels: np.ndarray) -> bool:
        """Merge-up rail repair: independently solved domains may use
        more distinct voltages than the budget; raising the lowest
        non-zero rail onto the next one above only adds speedup (the
        level grid is monotone), so feasibility is preserved."""
        repaired = False
        while problem.num_clusters(levels) > self.clusters:
            nonzero = np.unique(levels[levels > 0])
            if len(nonzero) < 2:
                break  # cannot merge further; safety net will catch it
            levels[levels == nonzero[0]] = nonzero[1]
            repaired = True
        return repaired

    def _solve_global(self, problem: FBBProblem, qbeta: np.ndarray,
                      cache: ArtifactCache) -> np.ndarray:
        """Cached whole-problem grouped solve — the fallback when a
        domain sub-solve is infeasible or the splice fails CheckTiming."""
        material = {"artifact": GLOBAL_KIND,
                    "solver": self._signature,
                    "qbetas": [float(value) for value in qbeta]}

        def factory() -> dict:
            solution = solve_grouped(problem, self.method, self.clusters,
                                     grouping=self._grouping)
            return {"levels": [int(level) for level in solution.levels]}

        payload = cache.get_or_create(GLOBAL_KIND, material, factory)
        return np.asarray(payload["levels"], dtype=int)
