"""Central body-bias generator model (paper Sec. 3.2, Fig. 2).

The paper assumes one central generator with 50 mV resolution feeding at
most two distributed vbs rails per block ([8] reports 2-3 % die-area
cost for generation, buffering and routing).  The model enforces the
grid, the 0..0.5 V usable range and the rail budget, and accounts for a
settling latency per voltage update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TuningError
from repro.tech.technology import Technology


@dataclass
class BodyBiasGenerator:
    """A rail-limited, grid-quantised bias voltage source."""

    tech: Technology
    settle_time_us: float = 5.0  # repro-lint: ignore[units-suffix] -- generator settle spec is O(us); ps base unit would read 5e6
    rail_voltages: dict[str, float] = field(default_factory=dict)
    updates_issued: int = field(default=0, init=False)

    @property
    def max_rails(self) -> int:
        return self.tech.bias_rules.max_bias_rails

    def quantize(self, vbs: float) -> float:
        """Snap a requested voltage up onto the generator grid."""
        return self.tech.quantize_vbs(vbs)

    def program(self, rail: str, vbs: float) -> float:
        """Program one rail; returns the actually applied voltage.

        Raises :class:`TuningError` when a new rail would exceed the
        distribution budget (Sec. 3.3 limits it to two).
        """
        if vbs < 0 or vbs > self.tech.vbs_max + 1e-9:
            raise TuningError(
                f"requested vbs {vbs} outside usable range "
                f"[0, {self.tech.vbs_max}]")
        if rail not in self.rail_voltages and \
                len(self.rail_voltages) >= self.max_rails:
            raise TuningError(
                f"cannot allocate rail {rail!r}: all {self.max_rails} "
                "rails in use")
        applied = self.quantize(vbs)
        self.rail_voltages[rail] = applied
        self.updates_issued += 1
        return applied

    def release(self, rail: str) -> None:
        """Free a rail (its rows fall back to no body bias)."""
        if rail not in self.rail_voltages:
            raise TuningError(f"rail {rail!r} is not programmed")
        del self.rail_voltages[rail]

    def settle_latency_us(self, num_updates: int | None = None) -> float:  # repro-lint: ignore[units-suffix] -- reported in the settle spec's native us
        """Total settling latency for a batch of updates, microseconds."""
        count = self.updates_issued if num_updates is None else num_updates
        return count * self.settle_time_us

    def program_solution(self, vbs_values: list[float]) -> dict[float, str]:
        """Program rails for a clustered solution's distributed voltages.

        ``vbs_values`` are the distinct non-zero voltages; returns the
        voltage -> rail-name mapping.
        """
        distributed = sorted({v for v in vbs_values if v > 0})
        if len(distributed) > self.max_rails:
            raise TuningError(
                f"solution needs {len(distributed)} rails, generator has "
                f"{self.max_rails}")
        for rail in list(self.rail_voltages):
            self.release(rail)
        mapping = {}
        for index, vbs in enumerate(distributed, start=1):
            rail = f"vbs{index}"
            self.program(rail, vbs)
            mapping[vbs] = rail
        return mapping
