"""Wafer-scale tuning: run the closed calibration loop over a die
population.

The paper tunes one die at a time (Fig. 2); a production test floor
tunes *populations*.  This module takes a Monte Carlo population
(whose betas were measured in one batched-STA sweep), sends every
out-of-budget die through :class:`TuningController.calibrate`, and
aggregates the yield and leakage economics — the numbers behind the
process/thermal/aging example scripts.

Each die's calibration is independent, so ``tune_population`` can shard
a population across a process pool (``workers > 1``, engine in
``repro/flow/parallel.py``) with results bit-identical to the serial
loop; see DESIGN.md, "Parallel execution".

Three calibration modes mirror the controller's:

* ``mode="model"`` (default) — each slow die is modelled by its scalar
  measured beta (the paper's die-wide derate);
* ``mode="spatial"`` — each slow die is calibrated against its sampled
  per-gate delay-scale field through a per-region sensor grid
  (``num_regions``; 1 = the die-uniform sensing baseline), which is the
  paper's physically-clustered compensation closed over the correlated
  intra-die field (DESIGN.md, "Spatial compensation");
* ``mode="batched"`` — model-mode semantics executed population-at-a-
  time by :mod:`repro.tuning.batched` (one allocation per distinct
  quantised estimate, one matrix-STA verify per pass).  An execution
  engine, not an experiment input: the summary is bit-identical to
  ``mode="model"`` and records ``mode="model"`` (DESIGN.md, "Batched
  calibration").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import TuningError
from repro.tuning.controller import (DEFAULT_SENSOR_REGIONS,
                                     TuningController)
from repro.tuning.sensors import SpatialSensorGrid
from repro.variation.montecarlo import MonteCarloResult

#: supported population calibration modes
TUNING_MODES = ("model", "spatial", "batched")

#: per-die outcome labels used in :class:`DieTuningRecord.status`
DIE_STATUSES = ("ok-unbiased", "recovered", "not-converged", "yield-loss")


@dataclass(frozen=True)
class DieTuningRecord:
    """One die's trip through the calibration loop."""

    index: int
    beta: float
    status: str
    iterations: int
    leakage_nw: float


@dataclass(frozen=True)
class PopulationTuningSummary:
    """Aggregate outcome of tuning a whole population."""

    records: tuple[DieTuningRecord, ...]
    yield_before: float
    yield_after: float
    unbiased_leakage_nw: float
    method: str = "heuristic:row-descent"
    """Solver-registry method the controller allocated with."""
    mode: str = "model"
    """Calibration mode: "model" (scalar beta) or "spatial" (field)."""
    num_regions: int | None = None
    """Sensor-grid resolution of a spatial run (None for model mode)."""

    @property
    def num_dies(self) -> int:
        return len(self.records)

    def count(self, status: str) -> int:
        if status not in DIE_STATUSES:
            raise TuningError(f"unknown die status {status!r}")
        return sum(1 for record in self.records if record.status == status)

    @property
    def recovered(self) -> int:
        return self.count("recovered")

    @property
    def lost(self) -> int:
        """Dies FBB cannot save: beyond range or not converged."""
        return self.count("yield-loss") + self.count("not-converged")

    def mean_recovered_leakage_nw(self) -> float:
        """Average leakage paid on the recovered dies (0 if none)."""
        values = [record.leakage_nw for record in self.records
                  if record.status == "recovered"]
        return float(np.mean(values)) if values else 0.0


def calibrate_die(controller: TuningController, index: int, beta: float,
                  beta_budget: float,
                  unbiased_leakage_nw: float) -> DieTuningRecord:
    """One die's trip through the calibration loop, as a pure function.

    This is the unit of work both the serial reference loop and the
    per-worker chunks of the parallel path execute: the record depends
    only on ``(beta, beta_budget)`` and the controller's configuration,
    never on which dies were calibrated before it, which is what makes
    sharding a population across processes bit-identical to the serial
    sweep.
    """
    if beta <= beta_budget:
        return DieTuningRecord(
            index=index, beta=beta, status="ok-unbiased",
            iterations=0, leakage_nw=unbiased_leakage_nw)
    effective_beta = (1.0 + beta) / (1.0 + beta_budget) - 1.0
    try:
        outcome = controller.calibrate(effective_beta)
    except TuningError:
        return DieTuningRecord(
            index=index, beta=beta, status="yield-loss",
            iterations=0, leakage_nw=unbiased_leakage_nw)
    status = "recovered" if outcome.converged else "not-converged"
    return DieTuningRecord(
        index=index, beta=beta, status=status,
        iterations=outcome.iterations, leakage_nw=outcome.leakage_nw)


def calibrate_die_spatial(controller: TuningController, index: int,
                          beta: float, scale_row: np.ndarray,
                          gate_names: Sequence[str], beta_budget: float,
                          unbiased_leakage_nw: float,
                          grid: SpatialSensorGrid) -> DieTuningRecord:
    """One die's spatial calibration, as a pure function.

    ``scale_row`` is the die's sampled per-gate delay-scale field in
    ``gate_names`` order (the population's batched-STA column order);
    the budget relaxation divides the field by ``1 + budget`` — the same
    multiplicative identity the model-mode path uses, expressed on the
    field instead of the scalar.  Pure in the same sense as
    :func:`calibrate_die`: the record depends only on the die's field
    and the controller/grid configuration, which is what keeps the
    parallel sharding bit-identical to the serial sweep.
    """
    if beta <= beta_budget:
        return DieTuningRecord(
            index=index, beta=beta, status="ok-unbiased",
            iterations=0, leakage_nw=unbiased_leakage_nw)
    relaxed = np.asarray(scale_row, dtype=float) / (1.0 + beta_budget)
    field = dict(zip(gate_names, relaxed.tolist()))
    try:
        outcome = controller.calibrate_spatial(field, grid=grid)
    except TuningError:
        return DieTuningRecord(
            index=index, beta=beta, status="yield-loss",
            iterations=0, leakage_nw=unbiased_leakage_nw)
    status = "recovered" if outcome.converged else "not-converged"
    return DieTuningRecord(
        index=index, beta=beta, status=status,
        iterations=outcome.iterations, leakage_nw=outcome.leakage_nw)


def tune_population(controller: TuningController,
                    population: MonteCarloResult,
                    beta_budget: float = 0.0,
                    workers: int = 1,
                    mode: str = "model",
                    num_regions: int = DEFAULT_SENSOR_REGIONS,
                    replica_sensor: bool = False
                    ) -> PopulationTuningSummary:
    """Calibrate every die of a population that misses the beta budget.

    Dies within budget are recorded as ``"ok-unbiased"``; the rest run
    the full sense/allocate/apply/verify loop, landing in
    ``"recovered"``, ``"not-converged"``, or ``"yield-loss"`` (beyond
    the FBB recovery range).

    A positive ``beta_budget`` relaxes the tuning target to the same
    budgeted Dcrit that defines ``yield_before``: since bias and derate
    scale every path delay multiplicatively, meeting
    ``Dcrit * (1 + budget)`` at slowdown ``beta`` is exactly meeting
    ``Dcrit`` at the effective slowdown
    ``(1 + beta) / (1 + budget) - 1``, which is what the controller is
    asked to recover.

    ``workers > 1`` shards the out-of-budget dies into contiguous
    per-process chunks (via ``repro.flow.parallel``); records are
    reassembled in die order, so the summary is bit-identical to the
    serial ``workers=1`` reference path — in every mode.

    ``mode="batched"`` keeps model-mode semantics but advances all slow
    dies one sense/allocate/verify step per matrix pass
    (:func:`repro.tuning.batched.calibrate_dies_batched`): the summary
    — including its recorded ``mode="model"`` — is bit-identical to the
    per-die path, only faster.  Populations with no out-of-budget dies
    short-circuit to zero matrix passes (and zero allocations) in both
    engines.

    ``mode="spatial"`` calibrates each slow die against its sampled
    per-gate field through a ``num_regions``-monitor sensor grid; the
    population must have been sampled with its scale matrix retained
    (``sample_dies`` keeps it by default).  ``replica_sensor=True``
    swaps the grid for the classic uniform-sensing baseline — a single
    replica monitor in the die's central ``1/num_regions`` band, its
    reading applied die-wide (the comparison arm of the spatial
    experiments).

    An empty population is a well-defined no-op: zero records and a
    yield of 1.0 on both sides (regression for the old
    ``ZeroDivisionError`` at the ``good_after / len(records)`` step).
    """
    if beta_budget < 0:
        raise TuningError("beta budget cannot be negative")
    if workers < 1:
        raise TuningError(f"workers must be >= 1, got {workers}")
    if mode not in TUNING_MODES:
        raise TuningError(
            f"unknown tuning mode {mode!r}; choose from {TUNING_MODES}")
    spatial = mode == "spatial"
    batched = mode == "batched"
    if spatial and population.scale_matrix is None:
        raise TuningError(
            "spatial tuning needs the population's scale matrix "
            "(sample with store_scales or the default sample_dies path)")
    unbiased = controller.clib_leakage_unbiased()
    method = controller.method or "heuristic:row-descent"
    # "batched" is an execution engine for model-mode semantics: the
    # summary records "model" so it compares equal to the per-die path.
    summary_mode = "model" if batched else mode

    slow_dies = [(die.index, die.beta) for die in population.samples
                 if die.beta > beta_budget]
    grid = None
    regions = None
    if spatial:
        if num_regions < 1:
            raise TuningError(
                f"need at least one sensor region, got {num_regions}")
        # The summary's resolution, clamped exactly as the grid clamps
        # it — computed up front so an all-converged or empty population
        # never pays for grid construction (its path/incidence matrices)
        # it will not use.
        regions = (1 if replica_sensor
                   else min(num_regions, controller.placed.num_rows))
        if slow_dies:
            grid = (controller.replica_sensor_grid(num_regions)
                    if replica_sensor
                    else controller.sensor_grid(num_regions))
    if not population.samples:
        return PopulationTuningSummary(
            records=(), yield_before=1.0, yield_after=1.0,
            unbiased_leakage_nw=unbiased, method=method, mode=summary_mode,
            num_regions=regions)

    def _calibrate(index: int, beta: float) -> DieTuningRecord:
        if spatial:
            return calibrate_die_spatial(
                controller, index, beta, population.scale_matrix[index],
                population.gate_names, beta_budget, unbiased, grid)
        return calibrate_die(controller, index, beta, beta_budget,
                             unbiased)

    if batched:
        if workers == 1 or len(slow_dies) < 2:
            # Lazy import: calibrate_dies_batched imports this module's
            # record types, so the downward reference stays lazy here.
            from repro.tuning.batched import calibrate_dies_batched
            tuned = calibrate_dies_batched(controller, slow_dies,
                                           beta_budget, unbiased)
        else:
            from repro.flow.parallel import tune_dies_batched_parallel
            tuned = tune_dies_batched_parallel(controller, slow_dies,
                                               beta_budget, workers)
        by_index = {record.index: record for record in tuned}
        records = [by_index[die.index] if die.beta > beta_budget
                   else _calibrate(die.index, die.beta)
                   for die in population.samples]
    elif workers == 1 or len(slow_dies) < 2:
        records = [_calibrate(die.index, die.beta)
                   for die in population.samples]
    else:
        # Lazy import: the flow layer sits above tuning in the module
        # graph, so the upward reference stays out of import time.
        from repro.flow.parallel import (tune_dies_parallel,
                                         tune_dies_spatial_parallel)
        if spatial:
            shard = [(index, beta, population.scale_matrix[index])
                     for index, beta in slow_dies]
            tuned = tune_dies_spatial_parallel(
                controller, shard, population.gate_names, beta_budget,
                workers, num_regions, replica_sensor)
        else:
            tuned = tune_dies_parallel(controller, slow_dies, beta_budget,
                                       workers)
        by_index = {record.index: record for record in tuned}
        records = [by_index[die.index] if die.beta > beta_budget
                   else _calibrate(die.index, die.beta)
                   for die in population.samples]

    good_after = sum(1 for record in records
                     if record.status in ("ok-unbiased", "recovered"))
    return PopulationTuningSummary(
        records=tuple(records),
        yield_before=population.timing_yield(beta_budget),
        yield_after=good_after / len(records),
        unbiased_leakage_nw=unbiased,
        method=method,
        mode=summary_mode,
        num_regions=regions,
    )
