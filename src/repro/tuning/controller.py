"""Closed-loop post-silicon tuning controller (paper Sec. 3.1, Fig. 2).

The calibration loop for one circuit block:

1. **Sense** — the block's timing sensor measures the die and produces a
   slowdown estimate (static process shift, or periodic re-measurement
   for temperature/aging drift).
2. **Allocate** — the design-time clustering machinery (PassOne/PassTwo
   or the ILP) computes the minimum-leakage row assignment for that
   slowdown, quantised to the generator grid.
3. **Apply** — the central body-bias generator programs the (at most
   two) rails; rows fall into their clusters.
4. **Verify** — the in-situ monitors re-check; if an alarm persists
   (estimate was low), the estimate is bumped one resolution step and
   the loop repeats.

Two sensing modes drive the loop:

* :meth:`TuningController.calibrate` — the paper's die-wide mode: one
  scalar slowdown models the whole die, allocation derates every row
  uniformly, an alarm bumps the single estimate.
* :meth:`TuningController.calibrate_spatial` — the spatial compensation
  engine: a :class:`~repro.tuning.sensors.SpatialSensorGrid` senses the
  die's actual per-gate delay-scale field per region, allocation runs
  against the heterogeneous per-row slowdown vector, and a persisting
  alarm bumps only the regions whose monitored paths still violate.

The controller is deliberately conservative: it only ever raises the
estimate, and it fails loudly when even maximum bias cannot recover the
die (a yield loss, not a tuning bug).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import FBBProblem, build_problem
from repro.core.registry import registry
from repro.core.solution import BiasSolution
from repro.errors import GroupingError, InfeasibleError, TuningError
from repro.grouping import (GroupingContext, RowGrouping, is_field_driven,
                            make_grouping, reduce_problem,
                            validate_grouping_spec)
from repro.placement.placed_design import PlacedDesign
from repro.sta.batched import BatchedTimingAnalyzer
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import extract_paths
from repro.tech.characterize import CharacterizedLibrary
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.sensors import InSituMonitor, SpatialSensorGrid

#: default monitor-grid resolution for spatial calibration
DEFAULT_SENSOR_REGIONS = 4


@dataclass
class TuningOutcome:
    """Result of one closed-loop calibration."""

    converged: bool
    iterations: int
    estimated_beta: float
    solution: BiasSolution | None
    leakage_nw: float
    settle_latency_us: float  # repro-lint: ignore[units-suffix] -- mirrors BodyBiasGenerator.settle_latency_us (native us)
    history: list[str] = field(default_factory=list)
    region_betas: tuple[float, ...] | None = None
    """Final per-region slowdown estimates (spatial calibration only)."""


@dataclass
class TuningController:
    """Binds a placed design, its sensors and a bias generator."""

    placed: PlacedDesign
    clib: CharacterizedLibrary
    max_clusters: int = 3
    use_ilp: bool = False
    max_iterations: int = 6
    beta_step: float = 0.01
    method: str | None = None
    """Solver-registry method for the allocate step; ``None`` derives it
    from the legacy ``use_ilp`` flag."""
    sense_guard: float = 0.0
    """Guard band added to every spatial sensing estimate (slowdown
    units): monitors read delay-weighted *means*, while timing is set by
    the *worst* path through a region, so production flows over-bias by
    a small margin instead of paying one verify iteration per
    resolution step.  Applied identically to the per-region grid and
    the single-replica baseline — it shifts both arms, not the
    comparison."""
    grouping: str | None = None
    """Bias-domain grouping spec for the allocate step (DESIGN.md,
    "Bias-domain grouping"): ``None`` or ``"identity"`` allocates per
    row exactly as before; ``"bands:<k>"`` / ``"correlation:<k>"`` /
    ``"community:<k>"`` solve the reduced domain problem and expand the
    assignment back to rows before it is applied."""

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise TuningError("need at least one tuning iteration")
        if self.sense_guard < 0:
            raise TuningError("sense guard cannot be negative")
        if self.grouping is not None:
            try:
                validate_grouping_spec(self.grouping)
            except GroupingError as exc:
                raise TuningError(
                    f"bad grouping spec {self.grouping!r}: {exc}") from exc
        if self.method is None:
            self.method = "ilp:highs" if self.use_ilp else \
                "heuristic:row-descent"
        self._solver = registry.get(self.method)
        self.analyzer = TimingAnalyzer.for_placed(self.placed)
        self.dcrit_ps = self.analyzer.critical_delay_ps()
        self.generator = BodyBiasGenerator(self.clib.tech)
        self.monitor = InSituMonitor(self.analyzer, self.dcrit_ps * 1.0001)
        # Paths are beta-independent: extract once so population-scale
        # calibration does not redo path enumeration per die/iteration.
        self._paths = list(extract_paths(self.analyzer))
        self._grids: dict[tuple, SpatialSensorGrid] = {}
        self._groupings: dict[str, RowGrouping] = {}
        self._batched = None
        self._gate_rows: np.ndarray | None = None

    # -- bias-domain grouping ---------------------------------------------

    def _resolve_grouping(self,
                          row_betas: np.ndarray) -> RowGrouping | None:
        """The controller's grouping for the current sensed field.

        ``None``/"identity" (and any spec that resolves to per-row
        granularity) return None — the allocate step then runs exactly
        the pre-grouping path.  Field-independent strategies (bands,
        community) are resolved once and cached; field-driven ones
        (correlation) are rebuilt against every sensed field, so
        domain boundaries track what the monitors actually read.
        """
        spec = self.grouping
        if spec in (None, "identity"):
            return None
        if not is_field_driven(spec) and spec in self._groupings:
            resolved = self._groupings[spec]
        else:
            context = GroupingContext(
                num_rows=self.placed.num_rows,
                row_betas=np.asarray(row_betas, dtype=float),
                placed=self.placed)
            resolved = make_grouping(spec, context)
            if not is_field_driven(spec):
                self._groupings[spec] = resolved
        return None if resolved.is_identity else resolved

    def _allocate(self, problem: FBBProblem,
                  grouping: RowGrouping | None) -> BiasSolution:
        """One allocate step, at domain granularity when grouped."""
        if grouping is None:
            return self._solver.func(problem, self.max_clusters)
        reduced = reduce_problem(problem, grouping)
        solution = self._solver.func(reduced, self.max_clusters)
        return solution.expand_to(problem, grouping)

    def _base_delays(self) -> dict[str, float]:
        return {name: self.analyzer.calculator.gate_delay_ps(name)
                for name in self.placed.netlist.gates}

    def sensor_grid(self, num_regions: int = DEFAULT_SENSOR_REGIONS
                    ) -> SpatialSensorGrid:
        """The (cached) per-region monitor grid for spatial sensing."""
        key = ("grid", num_regions)
        if key not in self._grids:
            self._grids[key] = SpatialSensorGrid(
                self.placed, num_regions, self._base_delays(), self._paths)
        return self._grids[key]

    def replica_sensor_grid(self, num_regions: int = DEFAULT_SENSOR_REGIONS
                            ) -> SpatialSensorGrid:
        """The classic uniform-sensing baseline: one replica sensor.

        A single monitor physically occupying the die's central
        ``1/num_regions`` row band (the same silicon one monitor of the
        ``num_regions``-grid would get), its local reading applied
        die-wide.  This is the Sec. 3.1 single path-replica
        architecture the spatial experiments compare against: with long
        spatial correlation the centre of the die speaks for all of it,
        with short correlation the replica's blind spots grow.
        """
        key = ("replica", num_regions)
        if key not in self._grids:
            num_rows = self.placed.num_rows
            band = max(num_rows // max(min(num_regions, num_rows), 1), 1)
            lo = (num_rows - band) // 2
            self._grids[key] = SpatialSensorGrid(
                self.placed, 1, self._base_delays(), self._paths,
                sense_rows=(lo, lo + band))
        return self._grids[key]

    def _gate_scales(self, solution: BiasSolution) -> dict[str, float]:
        scales = {}
        for row, members in enumerate(self.placed.rows_to_gates()):
            scale = self.clib.delay_scales[solution.levels[row]]
            for name in members:
                scales[name] = scale
        return scales

    # -- batched-calibration surface (engine in repro.tuning.batched) -----

    def batched_analyzer(self) -> BatchedTimingAnalyzer:
        """The (cached) array STA engine compiled from this controller's
        scalar analyzer — the verify backend of batched calibration."""
        if self._batched is None:
            self._batched = BatchedTimingAnalyzer(self.analyzer)
        return self._batched

    def scale_row_of(self, solution: BiasSolution) -> np.ndarray:
        """A solution's per-gate delay scales as one batched-STA row.

        The array twin of :meth:`_gate_scales`: element ``i`` is
        ``delay_scales[levels[row_of(gate_names[i])]]``, so a verify
        through the batched engine prices exactly the mapping the
        scalar monitor would check.
        """
        if self._gate_rows is None:
            row_of = {}
            for row, members in enumerate(self.placed.rows_to_gates()):
                for name in members:
                    row_of[name] = row
            self._gate_rows = np.array(
                [row_of[name]
                 for name in self.batched_analyzer().gate_names],
                dtype=np.intp)
        scales = np.asarray(self.clib.delay_scales, dtype=float)
        return scales[solution.levels_array[self._gate_rows]]

    def initial_sensor_estimate(self, true_beta: float) -> float:
        """The sensor's quantised reading of a die's slowdown.

        The truth floored to the ``beta_step`` resolution grid (never
        below one step): sensors report in resolution ticks, so two dies
        with nearby slowdowns read identically.  Population-scale
        calibration leans on exactly this collision — distinct estimates
        across a wafer number ~``beta_max / beta_step``, so the batched
        engine solves each allocation subproblem once per estimate
        instead of once per die (DESIGN.md, "Batched calibration").
        """
        steps = math.floor(true_beta / self.beta_step)
        return max(round(steps * self.beta_step, 9), self.beta_step)

    def allocate_for_estimate(self, estimate: float) -> BiasSolution:
        """One die-wide allocate step at a scalar slowdown estimate.

        Builds the uniformly derated problem and solves it at the
        controller's grouping granularity — the exact build/allocate
        pair of one :meth:`calibrate` iteration, exposed so the batched
        population engine can share (and dedup) it.  Raises
        :class:`~repro.errors.TuningError` when even maximum bias cannot
        meet timing at this estimate.
        """
        try:
            problem = build_problem(self.placed, self.clib, estimate,
                                    analyzer=self.analyzer,
                                    paths=self._paths,
                                    dcrit_ps=self.dcrit_ps)
            return self._allocate(
                problem, self._resolve_grouping(problem.row_betas))
        except InfeasibleError as exc:
            raise TuningError(
                f"die beyond FBB recovery range: {exc}") from exc

    def calibrate(self, true_beta: float,
                  initial_estimate: float | None = None) -> TuningOutcome:
        """Run the sense/allocate/apply/verify loop against a real die.

        ``true_beta`` is the die's actual slowdown (hidden from the
        controller except through the sensors); ``initial_estimate``
        overrides the sensor reading, which defaults to
        :meth:`initial_sensor_estimate` — the truth floored to the
        ``beta_step`` grid, modelling sensor quantisation error and
        forcing a verify-driven bump whenever the floor undershoots.
        """
        if true_beta < 0:
            raise TuningError("die slowdown cannot be negative")
        history: list[str] = []

        if true_beta == 0 or not self.monitor.check(true_beta):
            history.append("no timing alarm: die meets spec unbiased")
            return TuningOutcome(
                converged=True, iterations=0, estimated_beta=0.0,
                solution=None,
                leakage_nw=float(
                    self.clib_leakage_unbiased()), settle_latency_us=0.0,
                history=history)

        estimate = (initial_estimate if initial_estimate is not None
                    else self.initial_sensor_estimate(true_beta))
        solution: BiasSolution | None = None
        for iteration in range(1, self.max_iterations + 1):
            solution = self.allocate_for_estimate(estimate)
            self.generator.program_solution(
                [solution.vbs_of_row(r)
                 for r in range(self.placed.num_rows)])
            scales = self._gate_scales(solution)
            alarm = self.monitor.check(true_beta, scales)
            history.append(
                f"iter {iteration}: estimate beta={estimate:.3f}, "
                f"leakage {solution.leakage_nw / 1e3:.3f} uW, "
                f"{'ALARM' if alarm else 'clean'}")
            if not alarm:
                return TuningOutcome(
                    converged=True, iterations=iteration,
                    estimated_beta=estimate, solution=solution,
                    leakage_nw=solution.leakage_nw,
                    settle_latency_us=self.generator.settle_latency_us(),
                    history=history)
            estimate = round(estimate + self.beta_step, 9)
        return TuningOutcome(
            converged=False, iterations=self.max_iterations,
            estimated_beta=estimate,
            solution=solution,
            leakage_nw=solution.leakage_nw if solution else 0.0,
            settle_latency_us=self.generator.settle_latency_us(),
            history=history)

    def calibrate_spatial(self, gate_scales: Mapping[str, float] | np.ndarray,
                          grid: SpatialSensorGrid | None = None,
                          num_regions: int = DEFAULT_SENSOR_REGIONS
                          ) -> TuningOutcome:
        """Run the closed loop against a die's actual delay-scale field.

        ``gate_scales`` is the die's per-gate delay-multiplier field (a
        mapping, or an array in the grid's ``gate_names`` order) — the
        sampled reality the sensors measure and the verify step checks
        against.  Each iteration senses per-region slowdowns, builds the
        heterogeneous per-row problem, allocates clustered biases, and
        verifies by full STA of the *combined* (die x bias) field; on a
        persisting alarm only the regions whose monitored paths still
        violate get their estimates bumped.  Raises
        :class:`~repro.errors.TuningError` when the die is beyond FBB
        recovery (allocation infeasible even at the current estimates).
        """
        if grid is None:
            grid = self.sensor_grid(num_regions)
        die_row = grid.as_row(gate_scales)
        if die_row.size and die_row.min() < 0:
            raise TuningError("gate delay scales cannot be negative")
        die_field = dict(zip(grid.gate_names, die_row.tolist()))
        history: list[str] = []

        if not self.monitor.check(0.0, die_field):
            history.append("no timing alarm: die meets spec unbiased")
            return TuningOutcome(
                converged=True, iterations=0, estimated_beta=0.0,
                solution=None, leakage_nw=self.clib_leakage_unbiased(),
                settle_latency_us=0.0, history=history,
                region_betas=tuple([0.0] * grid.num_regions))

        estimates = np.maximum(
            grid.estimate_region_betas(die_row), 0.0) + self.sense_guard
        solution: BiasSolution | None = None
        for iteration in range(1, self.max_iterations + 1):
            try:
                row_estimates = grid.row_betas(estimates)
                grouping = self._resolve_grouping(row_estimates)
                if grouping is not None:
                    # Sensing at domain granularity: map the monitor
                    # regions onto the bias domains, each domain reading
                    # the worst estimate over the rows it spans.
                    row_estimates = grouping.expand(
                        grid.group_betas(estimates, grouping))
                problem = build_problem(
                    self.placed, self.clib, row_estimates,
                    analyzer=self.analyzer, paths=self._paths,
                    dcrit_ps=self.dcrit_ps)
                solution = self._allocate(problem, grouping)
            except InfeasibleError as exc:
                raise TuningError(
                    f"die beyond FBB recovery range: {exc}") from exc
            self.generator.program_solution(
                [solution.vbs_of_row(r)
                 for r in range(self.placed.num_rows)])
            bias = self._gate_scales(solution)
            combined = {name: die_field[name] * bias[name]
                        for name in grid.gate_names}
            alarm = self.monitor.check(0.0, combined)
            history.append(
                f"iter {iteration}: region betas "
                f"[{', '.join(f'{b:.3f}' for b in estimates)}], "
                f"leakage {solution.leakage_nw / 1e3:.3f} uW, "
                f"{'ALARM' if alarm else 'clean'}")
            if not alarm:
                return TuningOutcome(
                    converged=True, iterations=iteration,
                    estimated_beta=float(estimates.max()),
                    solution=solution, leakage_nw=solution.leakage_nw,
                    settle_latency_us=self.generator.settle_latency_us(),
                    history=history,
                    region_betas=tuple(float(b) for b in estimates))
            # Localize the persisting alarm: bump only the regions whose
            # monitored paths still violate (all regions if the full-STA
            # alarm cannot be pinned to an extracted path).
            mask = grid.alarm_regions(
                np.array([combined[name] for name in grid.gate_names]),
                self.monitor.tcrit_ps)
            if not mask.any():
                mask = np.ones(grid.num_regions, dtype=bool)
            estimates = np.where(
                mask, np.round(estimates + self.beta_step, 9), estimates)
        return TuningOutcome(
            converged=False, iterations=self.max_iterations,
            estimated_beta=float(estimates.max()),
            solution=solution,
            leakage_nw=solution.leakage_nw if solution else 0.0,
            settle_latency_us=self.generator.settle_latency_us(),
            history=history,
            region_betas=tuple(float(b) for b in estimates))

    def calibrate_population(self, population, beta_budget: float = 0.0,
                             workers: int = 1, mode: str = "model",
                             num_regions: int = DEFAULT_SENSOR_REGIONS):
        """Tune every out-of-budget die of a Monte Carlo population.

        Thin wrapper over :func:`repro.tuning.population.tune_population`
        (imported lazily to keep the module graph acyclic); returns its
        :class:`PopulationTuningSummary`.  ``workers > 1`` shards the
        slow dies over a process pool with bit-identical results;
        ``mode="spatial"`` runs :meth:`calibrate_spatial` against each
        slow die's sampled field instead of the uniform-derate model;
        ``mode="batched"`` runs the model-mode loop population-at-a-time
        through :func:`repro.tuning.batched.calibrate_dies_batched`,
        bit-identical to the per-die sweep.
        """
        from repro.tuning.population import tune_population
        return tune_population(self, population, beta_budget,
                               workers=workers, mode=mode,
                               num_regions=num_regions)

    def clib_leakage_unbiased(self) -> float:
        """Design leakage with no body bias applied, nanowatts."""
        from repro.power.leakage import uniform_leakage_nw
        return uniform_leakage_nw(self.placed, self.clib, 0)
