"""Closed-loop post-silicon tuning controller (paper Sec. 3.1, Fig. 2).

The calibration loop for one circuit block:

1. **Sense** — the block's timing sensor measures the die and produces a
   slowdown estimate (static process shift, or periodic re-measurement
   for temperature/aging drift).
2. **Allocate** — the design-time clustering machinery (PassOne/PassTwo
   or the ILP) computes the minimum-leakage row assignment for that
   slowdown, quantised to the generator grid.
3. **Apply** — the central body-bias generator programs the (at most
   two) rails; rows fall into their clusters.
4. **Verify** — the in-situ monitors re-check; if an alarm persists
   (estimate was low), the estimate is bumped one resolution step and
   the loop repeats.

The controller is deliberately conservative: it only ever raises the
estimate, and it fails loudly when even maximum bias cannot recover the
die (a yield loss, not a tuning bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.problem import build_problem
from repro.core.registry import registry
from repro.core.solution import BiasSolution
from repro.errors import InfeasibleError, TuningError
from repro.placement.placed_design import PlacedDesign
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import extract_paths
from repro.tech.characterize import CharacterizedLibrary
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.sensors import InSituMonitor


@dataclass
class TuningOutcome:
    """Result of one closed-loop calibration."""

    converged: bool
    iterations: int
    estimated_beta: float
    solution: BiasSolution | None
    leakage_nw: float
    settle_latency_us: float
    history: list[str] = field(default_factory=list)


@dataclass
class TuningController:
    """Binds a placed design, its sensors and a bias generator."""

    placed: PlacedDesign
    clib: CharacterizedLibrary
    max_clusters: int = 3
    use_ilp: bool = False
    max_iterations: int = 6
    beta_step: float = 0.01
    method: str | None = None
    """Solver-registry method for the allocate step; ``None`` derives it
    from the legacy ``use_ilp`` flag."""

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise TuningError("need at least one tuning iteration")
        if self.method is None:
            self.method = "ilp:highs" if self.use_ilp else \
                "heuristic:row-descent"
        self._solver = registry.get(self.method)
        self.analyzer = TimingAnalyzer.for_placed(self.placed)
        self.dcrit_ps = self.analyzer.critical_delay_ps()
        self.generator = BodyBiasGenerator(self.clib.tech)
        self.monitor = InSituMonitor(self.analyzer, self.dcrit_ps * 1.0001)
        # Paths are beta-independent: extract once so population-scale
        # calibration does not redo path enumeration per die/iteration.
        self._paths = list(extract_paths(self.analyzer))

    def _gate_scales(self, solution: BiasSolution) -> dict[str, float]:
        scales = {}
        for row, members in enumerate(self.placed.rows_to_gates()):
            scale = self.clib.delay_scales[solution.levels[row]]
            for name in members:
                scales[name] = scale
        return scales

    def calibrate(self, true_beta: float,
                  initial_estimate: float | None = None) -> TuningOutcome:
        """Run the sense/allocate/apply/verify loop against a real die.

        ``true_beta`` is the die's actual slowdown (hidden from the
        controller except through the sensors); ``initial_estimate``
        models sensor quantisation error (defaults to the truth rounded
        *down* one step, forcing at least one verify-driven bump in the
        common case).
        """
        if true_beta < 0:
            raise TuningError("die slowdown cannot be negative")
        history: list[str] = []

        if true_beta == 0 or not self.monitor.check(true_beta):
            history.append("no timing alarm: die meets spec unbiased")
            return TuningOutcome(
                converged=True, iterations=0, estimated_beta=0.0,
                solution=None,
                leakage_nw=float(
                    self.clib_leakage_unbiased()), settle_latency_us=0.0,
                history=history)

        estimate = (initial_estimate if initial_estimate is not None
                    else max(true_beta - self.beta_step, self.beta_step))
        solution: BiasSolution | None = None
        for iteration in range(1, self.max_iterations + 1):
            try:
                problem = build_problem(self.placed, self.clib, estimate,
                                        analyzer=self.analyzer,
                                        paths=self._paths,
                                        dcrit_ps=self.dcrit_ps)
                solution = self._solver.func(problem, self.max_clusters)
            except InfeasibleError as exc:
                raise TuningError(
                    f"die beyond FBB recovery range: {exc}") from exc
            self.generator.program_solution(
                [solution.vbs_of_row(r)
                 for r in range(self.placed.num_rows)])
            scales = self._gate_scales(solution)
            alarm = self.monitor.check(true_beta, scales)
            history.append(
                f"iter {iteration}: estimate beta={estimate:.3f}, "
                f"leakage {solution.leakage_nw / 1e3:.3f} uW, "
                f"{'ALARM' if alarm else 'clean'}")
            if not alarm:
                return TuningOutcome(
                    converged=True, iterations=iteration,
                    estimated_beta=estimate, solution=solution,
                    leakage_nw=solution.leakage_nw,
                    settle_latency_us=self.generator.settle_latency_us(),
                    history=history)
            estimate = round(estimate + self.beta_step, 9)
        return TuningOutcome(
            converged=False, iterations=self.max_iterations,
            estimated_beta=estimate,
            solution=solution,
            leakage_nw=solution.leakage_nw if solution else 0.0,
            settle_latency_us=self.generator.settle_latency_us(),
            history=history)

    def calibrate_population(self, population, beta_budget: float = 0.0,
                             workers: int = 1):
        """Tune every out-of-budget die of a Monte Carlo population.

        Thin wrapper over :func:`repro.tuning.population.tune_population`
        (imported lazily to keep the module graph acyclic); returns its
        :class:`PopulationTuningSummary`.  ``workers > 1`` shards the
        slow dies over a process pool with bit-identical results.
        """
        from repro.tuning.population import tune_population
        return tune_population(self, population, beta_budget,
                               workers=workers)

    def clib_leakage_unbiased(self) -> float:
        """Design leakage with no body bias applied, nanowatts."""
        from repro.power.leakage import uniform_leakage_nw
        return uniform_leakage_nw(self.placed, self.clib, 0)
