"""On-die timing sensors (paper Sec. 3.1).

Two sensing styles from the literature the paper builds on:

* :class:`PathReplicaSensor` — a replica of the critical path placed in
  the block (Teodorescu et al. [5]); it reports the replica's measured
  delay under the die's actual slowdown and the currently applied bias,
  and raises a timing alarm when the delay exceeds ``Tcrit``.
* :class:`InSituMonitor` — flip-flop-embedded transition detectors
  (Mitra [3]); modelled as a full-STA check that flags any endpoint
  whose degraded arrival lands inside the detection window before
  ``Tcrit``.

Both are simulation models: they answer the question the silicon sensor
would answer, given a die state (slowdown + bias assignment).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TuningError
from repro.sta.batched import BatchedTimingAnalyzer
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import TimingPath


@dataclass
class PathReplicaSensor:
    """Critical-path replica with a delay comparator."""

    replica: TimingPath
    tcrit_ps: float
    guard_band: float = 0.0
    """Comparator margin: alarm when delay > Tcrit * (1 - guard_band).

    Zero by default: the replica *is* the critical path, so its nominal
    delay sits exactly at Tcrit and any positive guard band would alarm
    on a perfectly good die.  Set a small positive value when the
    replica is a shorter calibration path.
    """

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if not 0 <= self.guard_band < 1:
            raise TuningError("guard band must be in [0, 1)")

    def measured_delay_ps(self, die_slowdown: float,
                          bias_scale: float = 1.0) -> float:
        """Replica delay under a die slowdown and an applied bias scale."""
        if die_slowdown < 0:
            raise TuningError("die slowdown cannot be negative")
        gates = sum(self.replica.gate_delays_ps)
        return (gates * (1.0 + die_slowdown) * bias_scale
                + self.replica.setup_ps)

    def alarm(self, die_slowdown: float, bias_scale: float = 1.0) -> bool:
        """True when the replica fails the guard-banded comparator."""
        threshold = self.tcrit_ps * (1.0 - self.guard_band)
        return self.measured_delay_ps(die_slowdown, bias_scale) > threshold

    def estimate_slowdown(self, measured_ps: float) -> float:
        """Invert a measurement into a slowdown estimate (no bias)."""
        gates = sum(self.replica.gate_delays_ps)
        if gates <= 0:
            raise TuningError("replica has no gate delay")
        return max((measured_ps - self.replica.setup_ps) / gates - 1.0, 0.0)


@dataclass
class InSituMonitor:
    """Flip-flop transition detectors across a block (STA-backed model)."""

    analyzer: TimingAnalyzer
    tcrit_ps: float
    detection_window_ps: float = 0.0
    alarms_raised: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if self.detection_window_ps < 0:
            raise TuningError("detection window cannot be negative")

    def check(self, die_slowdown: float,
              scales: Mapping[str, float] | None = None) -> bool:
        """Run the monitors; returns True (and counts) on a timing alarm."""
        critical = self.analyzer.critical_delay_ps(
            scales, derate=1.0 + die_slowdown)
        alarm = critical > self.tcrit_ps - self.detection_window_ps
        if alarm:
            self.alarms_raised += 1
        return alarm

    def failing_endpoints(self, die_slowdown: float,
                          scales: Mapping[str, float] | None = None
                          ) -> list[str]:
        """Names of endpoints inside the alarm window (for diagnostics)."""
        report = self.analyzer.analyze(scales, derate=1.0 + die_slowdown)
        threshold = self.tcrit_ps - self.detection_window_ps
        return [endpoint.name
                for endpoint, delay in report.endpoint_delay_ps.items()
                if delay > threshold]


@dataclass
class PopulationMonitor:
    """In-situ monitors over a whole die population (batched-STA model).

    The wafer-scale view of :class:`InSituMonitor`: one vectorized STA
    sweep answers, for every die at once, "would this die's monitors
    alarm?".  This is the sense step the tuning loops use on Monte
    Carlo populations (see DESIGN.md, "Scaling to die populations").
    """

    batched: BatchedTimingAnalyzer
    tcrit_ps: float
    detection_window_ps: float = 0.0
    alarms_raised: int = field(default=0, init=False)
    _nominal_ps: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if self.detection_window_ps < 0:
            raise TuningError("detection window cannot be negative")

    def check_population(self, die_slowdowns: np.ndarray,
                         scale_matrix: np.ndarray | None = None
                         ) -> np.ndarray:
        """Per-die alarm flags for a population in one batched STA pass.

        ``die_slowdowns`` is the per-die beta vector; ``scale_matrix``
        the applied bias scales, (num_dies, num_gates) in the batched
        engine's gate order (None = unbiased dies).
        """
        betas = np.asarray(die_slowdowns, dtype=float)
        if betas.ndim != 1:
            raise TuningError("die_slowdowns must be a 1-D beta vector")
        if np.any(betas < 0):
            raise TuningError("die slowdown cannot be negative")
        criticals = self.batched.critical_delays(scale_matrix,
                                                 derate=1.0 + betas)
        alarms = criticals > self.tcrit_ps - self.detection_window_ps
        self.alarms_raised += int(alarms.sum())
        return alarms

    def measured_betas(self, scale_matrix: np.ndarray,
                       nominal_delay_ps: float | None = None) -> np.ndarray:
        """Per-die slowdown estimates from one batched measurement."""
        criticals = self.batched.critical_delays(scale_matrix)
        if nominal_delay_ps is None:
            if self._nominal_ps is None:
                # nominal Dcrit is a design constant: measure it once
                self._nominal_ps = self.batched.analyzer.critical_delay_ps()
            nominal_delay_ps = self._nominal_ps
        return criticals / nominal_delay_ps - 1.0
