"""On-die timing sensors (paper Sec. 3.1).

Three sensing styles from the literature the paper builds on:

* :class:`PathReplicaSensor` — a replica of the critical path placed in
  the block (Teodorescu et al. [5]); it reports the replica's measured
  delay under the die's actual slowdown and the currently applied bias,
  and raises a timing alarm when the delay exceeds ``Tcrit``.
* :class:`InSituMonitor` — flip-flop-embedded transition detectors
  (Mitra [3]); modelled as a full-STA check that flags any endpoint
  whose degraded arrival lands inside the detection window before
  ``Tcrit``.
* :class:`SpatialSensorGrid` — a grid of per-region monitors over
  contiguous row bands.  The paper's central argument is that intra-die
  variation is spatially *correlated*, so a monitor per physical
  cluster senses its neighbourhood's slowdown; the grid turns one
  sampled per-gate delay-scale field into per-region (and per-row)
  slowdown estimates, and localizes timing alarms back to regions.
  ``num_regions=1`` degenerates to the classic single die-wide sensor —
  the uniform-biasing baseline the spatial experiments compare against.

All are simulation models: they answer the question the silicon sensor
would answer, given a die state (slowdown + bias assignment).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import TuningError
from repro.placement.placed_design import PlacedDesign
from repro.sta.batched import BatchedTimingAnalyzer
from repro.sta.engine import TimingAnalyzer
from repro.sta.paths import TimingPath

if TYPE_CHECKING:  # grouping sits above the sensor layer: no runtime dep
    from repro.grouping.domains import RowGrouping


@dataclass
class PathReplicaSensor:
    """Critical-path replica with a delay comparator."""

    replica: TimingPath
    tcrit_ps: float
    guard_band: float = 0.0
    """Comparator margin: alarm when delay > Tcrit * (1 - guard_band).

    Zero by default: the replica *is* the critical path, so its nominal
    delay sits exactly at Tcrit and any positive guard band would alarm
    on a perfectly good die.  Set a small positive value when the
    replica is a shorter calibration path.
    """

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if not 0 <= self.guard_band < 1:
            raise TuningError("guard band must be in [0, 1)")

    def measured_delay_ps(self, die_slowdown: float,
                          bias_scale: float = 1.0) -> float:
        """Replica delay under a die slowdown and an applied bias scale."""
        if die_slowdown < 0:
            raise TuningError("die slowdown cannot be negative")
        gates = sum(self.replica.gate_delays_ps)
        return (gates * (1.0 + die_slowdown) * bias_scale
                + self.replica.setup_ps)

    def alarm(self, die_slowdown: float, bias_scale: float = 1.0) -> bool:
        """True when the replica fails the guard-banded comparator."""
        threshold = self.tcrit_ps * (1.0 - self.guard_band)
        return self.measured_delay_ps(die_slowdown, bias_scale) > threshold

    def estimate_slowdown(self, measured_ps: float) -> float:
        """Invert a measurement into a slowdown estimate (no bias)."""
        gates = sum(self.replica.gate_delays_ps)
        if gates <= 0:
            raise TuningError("replica has no gate delay")
        return max((measured_ps - self.replica.setup_ps) / gates - 1.0, 0.0)


@dataclass
class InSituMonitor:
    """Flip-flop transition detectors across a block (STA-backed model)."""

    analyzer: TimingAnalyzer
    tcrit_ps: float
    detection_window_ps: float = 0.0
    alarms_raised: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if self.detection_window_ps < 0:
            raise TuningError("detection window cannot be negative")

    def check(self, die_slowdown: float,
              scales: Mapping[str, float] | None = None) -> bool:
        """Run the monitors; returns True (and counts) on a timing alarm."""
        critical = self.analyzer.critical_delay_ps(
            scales, derate=1.0 + die_slowdown)
        alarm = critical > self.tcrit_ps - self.detection_window_ps
        if alarm:
            self.alarms_raised += 1
        return alarm

    def failing_endpoints(self, die_slowdown: float,
                          scales: Mapping[str, float] | None = None
                          ) -> list[str]:
        """Names of endpoints inside the alarm window (for diagnostics)."""
        report = self.analyzer.analyze(scales, derate=1.0 + die_slowdown)
        threshold = self.tcrit_ps - self.detection_window_ps
        return [endpoint.name
                for endpoint, delay in report.endpoint_delay_ps.items()
                if delay > threshold]


@dataclass
class PopulationMonitor:
    """In-situ monitors over a whole die population (batched-STA model).

    The wafer-scale view of :class:`InSituMonitor`: one vectorized STA
    sweep answers, for every die at once, "would this die's monitors
    alarm?".  This is the sense step the tuning loops use on Monte
    Carlo populations (see DESIGN.md, "Scaling to die populations").
    """

    batched: BatchedTimingAnalyzer
    tcrit_ps: float
    detection_window_ps: float = 0.0
    alarms_raised: int = field(default=0, init=False)
    _nominal_ps: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.tcrit_ps <= 0:
            raise TuningError("Tcrit must be positive")
        if self.detection_window_ps < 0:
            raise TuningError("detection window cannot be negative")

    def check_population(self, die_slowdowns: np.ndarray,
                         scale_matrix: np.ndarray | None = None
                         ) -> np.ndarray:
        """Per-die alarm flags for a population in one batched STA pass.

        ``die_slowdowns`` is the per-die beta vector; ``scale_matrix``
        the applied bias scales, (num_dies, num_gates) in the batched
        engine's gate order (None = unbiased dies).
        """
        betas = np.asarray(die_slowdowns, dtype=float)
        if betas.ndim != 1:
            raise TuningError("die_slowdowns must be a 1-D beta vector")
        if np.any(betas < 0):
            raise TuningError("die slowdown cannot be negative")
        criticals = self.batched.critical_delays(scale_matrix,
                                                 derate=1.0 + betas)
        alarms = criticals > self.tcrit_ps - self.detection_window_ps
        self.alarms_raised += int(alarms.sum())
        return alarms

    def measured_betas(self, scale_matrix: np.ndarray,
                       nominal_delay_ps: float | None = None) -> np.ndarray:
        """Per-die slowdown estimates from one batched measurement."""
        criticals = self.batched.critical_delays(scale_matrix)
        if nominal_delay_ps is None:
            if self._nominal_ps is None:
                # nominal Dcrit is a design constant: measure it once
                self._nominal_ps = self.batched.analyzer.critical_delay_ps()
            nominal_delay_ps = self._nominal_ps
        return criticals / nominal_delay_ps - 1.0


class SpatialSensorGrid:
    """Per-region monitor grid over contiguous row bands (Sec. 3.1
    sensing, clustered per the paper's physical-locality argument).

    The die's rows are split into ``num_regions`` contiguous bands; each
    band hosts one monitor.  A monitor is modelled as a delay-weighted
    replica of its band's gates: given a per-gate delay-scale field it
    reports the band's effective slowdown
    ``sum(d_g * s_g) / sum(d_g) - 1`` — exactly what a local replica
    path threading the region would measure.  The grid also carries the
    region-resolved view of the in-situ monitors: per-path nominal
    delay/region incidence matrices that localize a timing alarm under
    any combined (die x bias) scale field to the regions whose paths
    violate, which is what lets the spatial tuning loop bump only the
    under-estimated regions.

    ``num_regions=1`` is the die-uniform baseline: one monitor, one
    estimate, every row biased against the same number.  Pass
    ``sense_rows`` to bound the monitors' *physical* extent: a 1-region
    grid sensing only the die's central band models the classic single
    path-replica sensor — a circuit at one location whose local reading
    stands in for the whole die, and whose blind spots are exactly what
    the spatial experiments measure.
    """

    def __init__(self, placed: PlacedDesign, num_regions: int,
                 base_delays_ps: Mapping[str, float],
                 paths: Sequence[TimingPath] = (),
                 sense_rows: tuple[int, int] | None = None) -> None:
        if num_regions < 1:
            raise TuningError(
                f"need at least one sensor region, got {num_regions}")
        num_rows = placed.num_rows
        if sense_rows is not None:
            lo, hi = sense_rows
            if not 0 <= lo < hi <= num_rows:
                raise TuningError(
                    f"sense_rows {sense_rows} outside [0, {num_rows})")
        self.sense_rows = sense_rows
        """Physical extent of the monitors, as a row range: a monitor
        only measures gates inside it (None = each monitor covers its
        whole band).  A 1-region grid with a narrow ``sense_rows`` is
        the classic single path-replica sensor — one circuit at one
        location whose reading stands in for the whole die."""
        self.num_rows = num_rows
        self.num_regions = min(num_regions, num_rows)
        self.gate_names: tuple[str, ...] = tuple(placed.netlist.gates)
        self._index = {name: i for i, name in enumerate(self.gate_names)}

        # Contiguous row bands, sizes as equal as possible (the same
        # deterministic split the parallel engine uses for die chunks).
        base, extra = divmod(num_rows, self.num_regions)
        bands: list[tuple[int, int]] = []
        start = 0
        for region in range(self.num_regions):
            size = base + (1 if region < extra else 0)
            bands.append((start, start + size))
            start += size
        self.row_bands: tuple[tuple[int, int], ...] = tuple(bands)
        self.region_of_row = np.empty(num_rows, dtype=np.intp)
        for region, (lo, hi) in enumerate(self.row_bands):
            self.region_of_row[lo:hi] = region

        gate_rows = np.array([placed.row_of(name)
                              for name in self.gate_names], dtype=np.intp)
        self.gate_region = self.region_of_row[gate_rows]
        self.gate_weight_ps = np.array(
            [base_delays_ps[name] for name in self.gate_names])
        if sense_rows is not None:
            lo, hi = sense_rows
            self._sense_weight = np.where(
                (gate_rows >= lo) & (gate_rows < hi),
                self.gate_weight_ps, 0.0)
        else:
            self._sense_weight = self.gate_weight_ps
        # Per-region weight normalizers; a band of empty rows (or one
        # entirely outside the monitors' physical extent) senses 0.
        self._region_weight = np.zeros(self.num_regions)
        np.add.at(self._region_weight, self.gate_region,
                  self._sense_weight)

        # Region-resolved in-situ monitors: nominal path-delay matrix
        # (paths x gates) and path->region incidence (paths x regions).
        self.paths: tuple[TimingPath, ...] = tuple(paths)
        data, rows_idx, cols_idx = [], [], []
        inc_rows, inc_cols = [], []
        for k, path in enumerate(self.paths):
            regions_hit: set[int] = set()
            for gate_name, delay in zip(path.gates, path.gate_delays_ps):
                gate = self._index[gate_name]
                rows_idx.append(k)
                cols_idx.append(gate)
                data.append(delay)
                regions_hit.add(int(self.gate_region[gate]))
            for region in sorted(regions_hit):
                inc_rows.append(k)
                inc_cols.append(region)
        num_paths = len(self.paths)
        self._path_delay = csr_matrix(
            (data, (rows_idx, cols_idx)),
            shape=(num_paths, len(self.gate_names)))
        self._path_region = csr_matrix(
            (np.ones(len(inc_rows)), (inc_rows, inc_cols)),
            shape=(num_paths, self.num_regions))
        self._path_setup = np.array(
            [path.setup_ps for path in self.paths])

    # -- field views ------------------------------------------------------

    def as_row(self, scales: Mapping[str, float] | np.ndarray
               ) -> np.ndarray:
        """A per-gate scale field as a ``(num_gates,)`` array in this
        grid's ``gate_names`` order (missing gates default to 1.0)."""
        if isinstance(scales, Mapping):
            return np.array([scales.get(name, 1.0)
                             for name in self.gate_names])
        row = np.asarray(scales, dtype=float)
        if row.shape != (len(self.gate_names),):
            raise TuningError(
                f"scale field needs shape ({len(self.gate_names)},), "
                f"got {row.shape}")
        return row

    # -- sensing ----------------------------------------------------------

    def estimate_region_betas(self, scales: Mapping[str, float] | np.ndarray
                              ) -> np.ndarray:
        """Each monitor's slowdown reading of the field, shape (R,)."""
        row = self.as_row(scales)
        weighted = np.zeros(self.num_regions)
        np.add.at(weighted, self.gate_region, self._sense_weight * row)
        safe = np.maximum(self._region_weight, 1e-12)
        estimates = weighted / safe - 1.0
        return np.where(self._region_weight > 0, estimates, 0.0)

    def row_betas(self, region_betas: np.ndarray) -> np.ndarray:
        """Expand per-region estimates into the per-row slowdown vector
        ``build_problem`` consumes, floored at zero."""
        region_betas = np.asarray(region_betas, dtype=float)
        if region_betas.shape != (self.num_regions,):
            raise TuningError(
                f"need {self.num_regions} region betas, got "
                f"{region_betas.shape}")
        return np.maximum(region_betas[self.region_of_row], 0.0)

    def estimate_row_betas(self, scales: Mapping[str, float] | np.ndarray
                           ) -> np.ndarray:
        """Sense the field and expand to rows in one step."""
        return self.row_betas(self.estimate_region_betas(scales))

    def group_betas(self, region_betas: np.ndarray,
                    grouping: RowGrouping) -> np.ndarray:
        """Map the monitors' per-region readings onto bias domains.

        Each domain takes the *worst* (maximum) reading over the rows
        it spans — conservative by construction, because one
        domain-wide bias must recover the domain's slowest region.
        This is the sensor-side of bias-domain grouping (DESIGN.md,
        "Bias-domain grouping"): with domains coarser than the monitor
        grid, several regions fold into one estimate; with finer
        domains, neighbouring domains share their region's reading.
        Returns shape ``(grouping.num_groups,)``, floored at zero like
        :meth:`row_betas`.
        """
        if grouping.num_rows != self.num_rows:
            raise TuningError(
                f"grouping {grouping.name!r} covers {grouping.num_rows} "
                f"rows, grid has {self.num_rows}")
        return grouping.aggregate_max(self.row_betas(region_betas))

    # -- alarm localization ------------------------------------------------

    def alarm_regions(self, scales: Mapping[str, float] | np.ndarray,
                      tcrit_ps: float) -> np.ndarray:
        """Boolean mask of regions whose monitored paths violate
        ``tcrit_ps`` under a combined (die x bias) scale field."""
        if not self.paths:
            return np.zeros(self.num_regions, dtype=bool)
        delays = self._path_delay @ self.as_row(scales) + self._path_setup
        violated = delays > tcrit_ps
        return np.asarray(
            self._path_region.T @ violated, dtype=float).ravel() > 0
