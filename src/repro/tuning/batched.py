"""Batched population calibration: the paper's closed sense/allocate/
apply/verify loop (Sec. 3.1, Fig. 2) advanced for a whole wafer per
matrix pass instead of die by die.

The per-die loop is dominated by work that is *identical across dies at
the same estimate*: sensors quantise slowdowns to the ``beta_step``
grid, so a thousand-die population reads only ~``beta_max / beta_step``
distinct estimates, and the allocate step (problem build + clustering
heuristic) depends on nothing but that estimate and the controller's
grouping.  This engine exploits both collisions:

1. **Sense** — one batched-STA sweep classifies every out-of-budget die
   (no alarm unbiased -> converged with zero iterations), and each
   remaining die gets its quantised estimate.
2. **Allocate** — solve once per *distinct* estimate this pass, through
   a cache shared across passes (bumped estimates stay on the grid, so
   pass ``p+1`` mostly re-reads pass ``p``'s solutions).
3. **Apply** — stack the per-estimate scale rows into the population's
   ``(dies, gates)`` bias matrix.
4. **Verify** — one :class:`~repro.sta.batched.BatchedTimingAnalyzer`
   pass over all still-active dies; converged dies leave the active
   set, alarmed dies bump their estimate one step, exactly the scalar
   controller's policy.  From the second pass on, verification goes
   through :meth:`~repro.sta.batched.BatchedTimingAnalyzer.refine`,
   re-propagating only the fan-out cones of gates whose bias moved.

Every arithmetic step reuses the scalar path's operations in the scalar
path's order (the controller's estimate bumps stay Python floats, the
scale rows are the array twin of ``_gate_scales``, the batched/scalar
STA contract covers the verify), so the records — and therefore the
:class:`~repro.tuning.population.PopulationTuningSummary` — are
bit-identical to the per-die loop.  The equivalence is enforced by
``tests/tuning/test_batched_equivalence.py`` and the throughput gate by
``benchmarks/bench_tuning_throughput.py``; see DESIGN.md, "Batched
calibration".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TuningError
from repro.tuning.controller import TuningController
from repro.tuning.population import DieTuningRecord


def calibrate_dies_batched(controller: TuningController,
                           dies: Sequence[tuple[int, float]],
                           beta_budget: float,
                           unbiased_leakage_nw: float,
                           scales_out: dict[int, np.ndarray | None] | None
                           = None) -> list[DieTuningRecord]:
    """Calibrate ``(index, beta)`` dies population-at-a-time.

    The batched twin of mapping
    :func:`repro.tuning.population.calibrate_die` over ``dies``: the
    returned records (in input order) are bit-identical to that serial
    sweep.  Dies within budget short-circuit to ``"ok-unbiased"`` and an
    empty ``dies`` returns without touching the STA or allocation
    machinery at all — zero matrix passes.

    ``scales_out``, when given, is filled with each die's *applied* bias
    row (the :meth:`~TuningController.scale_row_of` vector of the last
    programmed solution, in the batched engine's gate order) — ``None``
    for dies that ended up unbiased (within budget, recovered at pass 0,
    or beyond FBB range).  The lifetime engine uses this to carry each
    die's programmed bias forward between re-calibrations; the records
    themselves are unchanged.
    """
    if beta_budget < 0:
        raise TuningError("beta budget cannot be negative")
    if not dies:
        return []
    records: dict[int, DieTuningRecord] = {}
    beta_of = dict(dies)

    def _record(index: int, status: str, iterations: int,
                leakage_nw: float,
                scale_row: np.ndarray | None = None) -> None:
        records[index] = DieTuningRecord(
            index=index, beta=beta_of[index], status=status,
            iterations=iterations, leakage_nw=float(leakage_nw))
        if scales_out is not None:
            scales_out[index] = scale_row

    # The budget relaxation calibrate_die applies before entering the
    # controller: tuning to the budgeted Dcrit at slowdown beta is
    # tuning to Dcrit at the effective slowdown below.
    active: list[int] = []
    effective: dict[int, float] = {}
    for index, beta in dies:
        if beta <= beta_budget:
            _record(index, "ok-unbiased", 0, unbiased_leakage_nw)
        else:
            effective[index] = (1.0 + beta) / (1.0 + beta_budget) - 1.0
            active.append(index)
    if not active:
        return [records[index] for index, _ in dies]

    batched = controller.batched_analyzer()
    monitor = controller.monitor
    alarm_at_ps = monitor.tcrit_ps - monitor.detection_window_ps

    # Pass 0 — batched sense: dies already meeting spec unbiased are the
    # scalar loop's zero-iteration early exit.
    derate = np.array([1.0 + effective[index] for index in active])
    unbiased_critical = batched.critical_delays(derate=derate)
    still: list[int] = []
    for index, critical in zip(active, unbiased_critical):
        if float(critical) > alarm_at_ps:
            still.append(index)
        else:
            _record(index, "recovered", 0, unbiased_leakage_nw)
    active = still

    estimates = {index: controller.initial_sensor_estimate(effective[index])
                 for index in active}
    # Allocation cache shared across passes: estimate -> (scale row,
    # leakage) or None when infeasible at that estimate.  Bumped
    # estimates stay on the beta_step grid, so later passes mostly hit.
    solved: dict[float, tuple[np.ndarray, float] | None] = {}
    prev_position: dict[int, int] = {}
    prev_arrival: np.ndarray | None = None
    prev_scales: np.ndarray | None = None

    for iteration in range(1, controller.max_iterations + 1):
        if not active:
            break
        for value in sorted({estimates[index] for index in active}):
            if value not in solved:
                try:
                    solution = controller.allocate_for_estimate(value)
                    # The apply step: program_solution releases every
                    # rail before re-programming, so its rail-budget
                    # check is a pure function of the solution — a
                    # 3-rail solution fails every die at this estimate,
                    # exactly like the scalar loop's apply-time raise.
                    controller.generator.program_solution(
                        [solution.vbs_of_row(r)
                         for r in range(controller.placed.num_rows)])
                except TuningError:
                    solved[value] = None
                else:
                    solved[value] = (controller.scale_row_of(solution),
                                     solution.leakage_nw)
        still = []
        for index in active:
            if solved[estimates[index]] is None:
                # The scalar loop raises out of calibrate(); the die
                # record is calibrate_die's yield-loss catch.
                _record(index, "yield-loss", 0, unbiased_leakage_nw)
            else:
                still.append(index)
        active = still
        if not active:
            break

        scales = np.stack(
            [solved[estimates[index]][0] for index in active])
        derate = np.array([1.0 + effective[index] for index in active])
        if prev_arrival is not None and all(
                index in prev_position for index in active):
            keep = np.array([prev_position[index] for index in active],
                            dtype=np.intp)
            changed = (scales != prev_scales[keep]).any(axis=0)
            report = batched.refine(prev_arrival[keep], changed,
                                    scales=scales, derate=derate)
        else:
            report = batched.analyze(scales=scales, derate=derate)
        prev_position = {index: pos for pos, index in enumerate(active)}
        prev_arrival = report.arrival_ps
        prev_scales = scales

        alarms = report.critical_delay_ps > alarm_at_ps
        still = []
        for position, index in enumerate(active):
            if not alarms[position]:
                _record(index, "recovered", iteration,
                        solved[estimates[index]][1],
                        solved[estimates[index]][0])
            elif iteration == controller.max_iterations:
                # Scalar loop exhausted: not converged, last solution's
                # leakage (the estimate is bumped after the verify, so
                # the record prices the allocation actually applied).
                _record(index, "not-converged", controller.max_iterations,
                        solved[estimates[index]][1],
                        solved[estimates[index]][0])
            else:
                estimates[index] = round(
                    estimates[index] + controller.beta_step, 9)
                still.append(index)
        active = still

    return [records[index] for index, _ in dies]
