"""Closed-loop lifetime workload: re-calibrate an aging die population.

The paper's closed sense/allocate/apply/verify loop (Sec. 3.1, Fig. 2)
is usually exercised once, at time-zero test.  Its cited motivation is
broader: FBB is the *recovery knob* for lifetime degradation (Mitra's
failure-prediction work, [3]).  This module closes that loop over the
die's whole service life — each epoch the per-row drift process of
:mod:`repro.variation.drift` slows the population a little more, and at
a configurable **cadence** the tuning controller re-senses and
re-allocates body biases, trading tester/in-field calibration time
against the yield that decays between visits.

Epoch topology: epoch ``e`` (0-based) covers service years
``(e, e+1] * epoch_years``; its drift field applies for the whole epoch
and re-calibration (when ``e % cadence == 0``) happens at the epoch's
*start*, i.e. the loop re-tunes first and then the epoch's yield is
measured with those biases applied.  ``cadence=1`` re-tunes every
epoch; ``cadence=epochs`` tunes once at time zero and coasts.

Two calibration modes mirror the population tuner's:

* ``mode="model"`` — each die is sensed through one batched-STA sweep
  of its composed (process x aging) field, then modelled by that scalar
  slowdown (the paper's die-wide derate) and re-tuned population-at-a-
  time by :func:`repro.tuning.batched.calibrate_dies_batched`;
* ``mode="spatial"`` — each out-of-budget die is calibrated against its
  composed per-gate field through a ``num_regions`` sensor grid — the
  clustered compensation arm, which *sees* the row-correlated aging
  skew the scalar model averages away.

Either way the epoch's reported yield is measured against the **real**
composed field with the applied biases (one batched verify pass), so a
model-mode allocation that under-compensates a spatially skewed die
shows up as yield loss — that gap is the experiment's signal.

Every count over an empty set (no dies, no recovered dies, an epoch
where every die is beyond FBB range) degrades to a well-formed zero or
a yield of 1.0 for an empty population — never a ``ZeroDivisionError``
(regression-tested in ``tests/tuning/test_lifetime.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import TuningError
from repro.tuning.batched import calibrate_dies_batched
from repro.tuning.controller import (DEFAULT_SENSOR_REGIONS,
                                     TuningController)
from repro.variation.drift import DriftModel, row_betas_epochs
from repro.variation.montecarlo import MonteCarloResult

#: supported lifetime calibration modes (see module docstring)
LIFETIME_MODES = ("model", "spatial")

#: verify-pass slack tolerance, picoseconds — matches the core
#: problem's TIMING_TOL_PS scale so boundary dies don't flap between
#: epochs on float noise.
MEETS_TOL_PS = 1e-9


@dataclass(frozen=True)
class EpochOutcome:
    """One epoch of the lifetime loop: drift state, tuning, yield."""

    epoch: int
    """0-based epoch index."""
    age_years: float
    """Service age at the epoch's end, years."""
    recalibrated: bool
    """Whether the controller re-tuned at this epoch's start."""
    mean_row_beta: float
    """Mean per-row aging slowdown of the epoch's drift field."""
    max_row_beta: float
    meets: int
    """Dies meeting the budgeted Dcrit under the composed field with
    their currently programmed biases applied."""
    total: int
    yield_fraction: float
    """``meets / total`` (1.0 for an empty population)."""
    recovered: int
    """Dies the re-calibration biased back into spec (0 when the epoch
    did not re-calibrate)."""
    lost: int
    """Dies beyond FBB recovery range or not converged at this epoch's
    re-calibration (0 when the epoch did not re-calibrate)."""
    mean_leakage_nw: float
    """Population-mean leakage with the current biases, nanowatts."""


@dataclass(frozen=True)
class LifetimeSummary:
    """Aggregate outcome of a lifetime re-calibration run."""

    design: str
    mode: str
    epochs: int
    cadence: int
    epoch_years: float
    beta_budget: float
    grouping: str
    num_dies: int
    num_regions: int | None
    """Sensor-grid resolution of a spatial run (None for model mode)."""
    recalibrations: int
    """Number of epochs that re-ran the calibration loop."""
    final_yield: float
    min_yield: float
    """Worst epoch yield — the number a service-level agreement sees."""
    mean_yield: float
    outcomes: tuple[EpochOutcome, ...]
    runtime_s: float = 0.0

    def yield_curve(self) -> tuple[float, ...]:
        """Epoch yields in age order — the yield-vs-age trajectory."""
        return tuple(outcome.yield_fraction for outcome in self.outcomes)


def run_lifetime(controller: TuningController,
                 population: MonteCarloResult,
                 drift: DriftModel | None = None,
                 *,
                 epochs: int = 8,
                 cadence: int = 1,
                 beta_budget: float = 0.0,
                 mode: str = "model",
                 num_regions: int = DEFAULT_SENSOR_REGIONS,
                 seed: int = 0) -> LifetimeSummary:
    """Age a die population through ``epochs`` and re-tune at ``cadence``.

    ``population`` must retain its sampled scale matrix (``sample_dies``
    keeps it by default) — the lifetime loop composes each die's process
    field with the epoch's aging field, so it needs the per-gate data,
    not just the scalar betas.  ``seed`` drives the drift trajectory
    (independent of the population's sampling seed).

    The per-epoch loop: compose the fields, re-calibrate when
    ``epoch % cadence == 0`` (sense -> allocate -> apply, in the chosen
    mode), then verify every die's composed field times its programmed
    bias row in one batched pass and count who meets
    ``tcrit * (1 + beta_budget)``.
    """
    if epochs < 1:
        raise TuningError(f"epochs must be >= 1, got {epochs}")
    if cadence < 1:
        raise TuningError(f"cadence must be >= 1, got {cadence}")
    if cadence > epochs:
        raise TuningError(
            f"cadence {cadence} exceeds the {epochs}-epoch lifetime: "
            "the controller would never re-calibrate")
    if beta_budget < 0:
        raise TuningError("beta budget cannot be negative")
    if mode not in LIFETIME_MODES:
        raise TuningError(
            f"unknown lifetime mode {mode!r}; choose from {LIFETIME_MODES}")
    if drift is None:
        drift = DriftModel()

    started = time.perf_counter()
    placed = controller.placed
    total = len(population.samples)
    if total and population.scale_matrix is None:
        raise TuningError(
            "lifetime tuning needs the population's scale matrix "
            "(sample with store_scales or the default sample_dies path)")

    beta_rows = row_betas_epochs(placed, placed.library.tech, drift,
                                 seed, epochs)
    spatial = mode == "spatial"
    regions = min(num_regions, placed.num_rows) if spatial else None
    if spatial and num_regions < 1:
        raise TuningError(
            f"need at least one sensor region, got {num_regions}")

    if total == 0:
        # Empty population: the drift trajectory is still well-defined,
        # the yield is vacuously 1.0 and no calibration machinery runs.
        outcomes = tuple(
            EpochOutcome(
                epoch=epoch, age_years=(epoch + 1) * drift.epoch_years,
                recalibrated=epoch % cadence == 0,
                mean_row_beta=float(beta_rows[epoch].mean()),
                max_row_beta=float(beta_rows[epoch].max()),
                meets=0, total=0, yield_fraction=1.0,
                recovered=0, lost=0, mean_leakage_nw=0.0)
            for epoch in range(epochs))
        return LifetimeSummary(
            design=placed.netlist.name, mode=mode, epochs=epochs, cadence=cadence,
            epoch_years=drift.epoch_years, beta_budget=beta_budget,
            grouping=controller.grouping or "identity", num_dies=0,
            num_regions=regions,
            recalibrations=sum(1 for o in outcomes if o.recalibrated),
            final_yield=1.0, min_yield=1.0, mean_yield=1.0,
            outcomes=outcomes,
            runtime_s=time.perf_counter() - started)

    batched = controller.batched_analyzer()
    if (population.gate_names
            and tuple(population.gate_names) != tuple(batched.gate_names)):
        raise TuningError(
            "population gate order does not match the controller's "
            "batched engine — was the population sampled from a "
            "different design?")
    # Row index of each scale-matrix column: maps the per-row drift
    # field onto the per-gate composed field.
    gate_rows = np.array([placed.row_of(name)
                          for name in batched.gate_names], dtype=np.intp)
    scale_matrix = np.asarray(population.scale_matrix, dtype=float)
    nominal = population.nominal_delay_ps
    limit_ps = controller.monitor.tcrit_ps * (1.0 + beta_budget)
    unbiased = controller.clib_leakage_unbiased()

    # Per-die state carried between re-calibrations: the programmed
    # bias row (None = rails released) and the leakage being paid.
    bias_rows: list[np.ndarray | None] = [None] * total
    leakage = np.full(total, unbiased)
    grid = None
    outcomes: list[EpochOutcome] = []

    for epoch in range(epochs):
        aging = 1.0 + beta_rows[epoch][gate_rows]
        composed = scale_matrix * aging[None, :]
        recalibrated = epoch % cadence == 0
        recovered = 0
        lost = 0
        if recalibrated:
            # Sense: the population's real slowdowns under the aged
            # field, rails released (the controller's own sense pass
            # also reads the unbiased die).
            criticals = batched.critical_delays(scales=composed)
            sensed = criticals / nominal - 1.0
            if spatial:
                if grid is None:
                    grid = controller.sensor_grid(num_regions)
                for index in range(total):
                    if float(sensed[index]) <= beta_budget:
                        bias_rows[index] = None
                        leakage[index] = unbiased
                        continue
                    relaxed = dict(zip(
                        batched.gate_names,
                        (composed[index] / (1.0 + beta_budget)).tolist()))
                    try:
                        outcome = controller.calibrate_spatial(
                            relaxed, grid=grid)
                    except TuningError:
                        bias_rows[index] = None
                        leakage[index] = unbiased
                        lost += 1
                        continue
                    bias_rows[index] = (
                        controller.scale_row_of(outcome.solution)
                        if outcome.solution is not None else None)
                    leakage[index] = outcome.leakage_nw
                    if outcome.converged:
                        recovered += 1
                    else:
                        lost += 1
            else:
                scales_out: dict[int, np.ndarray | None] = {}
                records = calibrate_dies_batched(
                    controller,
                    [(index, float(beta))
                     for index, beta in enumerate(sensed)],
                    beta_budget, unbiased, scales_out=scales_out)
                for record in records:
                    bias_rows[record.index] = scales_out.get(record.index)
                    leakage[record.index] = record.leakage_nw
                    if record.status == "recovered":
                        recovered += 1
                    elif record.status in ("yield-loss", "not-converged"):
                        lost += 1

        # Verify: the composed field with the programmed biases, one
        # batched pass over the whole population.
        combined = composed.copy()
        for index, row in enumerate(bias_rows):
            if row is not None:
                combined[index] *= row
        verified = batched.critical_delays(scales=combined)
        meets = int((verified <= limit_ps + MEETS_TOL_PS).sum())
        outcomes.append(EpochOutcome(
            epoch=epoch,
            age_years=(epoch + 1) * drift.epoch_years,
            recalibrated=recalibrated,
            mean_row_beta=float(beta_rows[epoch].mean()),
            max_row_beta=float(beta_rows[epoch].max()),
            meets=meets,
            total=total,
            yield_fraction=meets / total,
            recovered=recovered,
            lost=lost,
            mean_leakage_nw=float(leakage.mean()),
        ))

    yields = [outcome.yield_fraction for outcome in outcomes]
    return LifetimeSummary(
        design=placed.netlist.name, mode=mode, epochs=epochs, cadence=cadence,
        epoch_years=drift.epoch_years, beta_budget=beta_budget,
        grouping=controller.grouping or "identity", num_dies=total,
        num_regions=regions,
        recalibrations=sum(1 for o in outcomes if o.recalibrated),
        final_yield=yields[-1],
        min_yield=min(yields),
        mean_yield=float(np.mean(yields)),
        outcomes=tuple(outcomes),
        runtime_s=time.perf_counter() - started)
