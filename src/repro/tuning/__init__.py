"""Post-silicon tuning (paper Sec. 3.1, Fig. 2): sensors, bias
generator, closed-loop controller, and wafer-scale population
calibration — including the spatial per-region compensation mode."""

from repro.tuning.batched import calibrate_dies_batched
from repro.tuning.controller import (DEFAULT_SENSOR_REGIONS,
                                     TuningController, TuningOutcome)
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.population import (DIE_STATUSES, TUNING_MODES,
                                     DieTuningRecord,
                                     PopulationTuningSummary, calibrate_die,
                                     calibrate_die_spatial, tune_population)
from repro.tuning.sensors import (InSituMonitor, PathReplicaSensor,
                                  PopulationMonitor, SpatialSensorGrid)

__all__ = [
    "BodyBiasGenerator",
    "DEFAULT_SENSOR_REGIONS",
    "DIE_STATUSES",
    "DieTuningRecord",
    "InSituMonitor",
    "PathReplicaSensor",
    "PopulationMonitor",
    "PopulationTuningSummary",
    "SpatialSensorGrid",
    "TUNING_MODES",
    "TuningController",
    "TuningOutcome",
    "calibrate_die",
    "calibrate_die_spatial",
    "calibrate_dies_batched",
    "tune_population",
]
