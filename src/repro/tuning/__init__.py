"""Post-silicon tuning: sensors, bias generator, closed-loop controller."""

from repro.tuning.controller import TuningController, TuningOutcome
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.sensors import InSituMonitor, PathReplicaSensor

__all__ = [
    "BodyBiasGenerator",
    "InSituMonitor",
    "PathReplicaSensor",
    "TuningController",
    "TuningOutcome",
]
