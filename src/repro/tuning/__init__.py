"""Post-silicon tuning: sensors, bias generator, closed-loop controller,
and wafer-scale population calibration."""

from repro.tuning.controller import TuningController, TuningOutcome
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.population import (DIE_STATUSES, DieTuningRecord,
                                     PopulationTuningSummary, calibrate_die,
                                     tune_population)
from repro.tuning.sensors import (InSituMonitor, PathReplicaSensor,
                                  PopulationMonitor)

__all__ = [
    "BodyBiasGenerator",
    "DIE_STATUSES",
    "DieTuningRecord",
    "InSituMonitor",
    "PathReplicaSensor",
    "PopulationMonitor",
    "PopulationTuningSummary",
    "TuningController",
    "TuningOutcome",
    "calibrate_die",
    "tune_population",
]
