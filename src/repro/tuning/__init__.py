"""Post-silicon tuning (paper Sec. 3.1, Fig. 2): sensors, bias
generator, closed-loop controller, and wafer-scale population
calibration — including the spatial per-region compensation mode, the
epoch-based lifetime re-calibration loop and the incremental ECO
re-solver behind it."""

from repro.tuning.batched import calibrate_dies_batched
from repro.tuning.controller import (DEFAULT_SENSOR_REGIONS,
                                     TuningController, TuningOutcome)
from repro.tuning.eco import (DEFAULT_QUANT_STEP, EcoResult, EcoSolver,
                              quantise_betas)
from repro.tuning.generator import BodyBiasGenerator
from repro.tuning.lifetime import (LIFETIME_MODES, EpochOutcome,
                                   LifetimeSummary, run_lifetime)
from repro.tuning.population import (DIE_STATUSES, TUNING_MODES,
                                     DieTuningRecord,
                                     PopulationTuningSummary, calibrate_die,
                                     calibrate_die_spatial, tune_population)
from repro.tuning.sensors import (InSituMonitor, PathReplicaSensor,
                                  PopulationMonitor, SpatialSensorGrid)

__all__ = [
    "BodyBiasGenerator",
    "DEFAULT_QUANT_STEP",
    "DEFAULT_SENSOR_REGIONS",
    "DIE_STATUSES",
    "DieTuningRecord",
    "EcoResult",
    "EcoSolver",
    "EpochOutcome",
    "InSituMonitor",
    "LIFETIME_MODES",
    "LifetimeSummary",
    "PathReplicaSensor",
    "PopulationMonitor",
    "PopulationTuningSummary",
    "SpatialSensorGrid",
    "TUNING_MODES",
    "TuningController",
    "TuningOutcome",
    "calibrate_die",
    "calibrate_die_spatial",
    "calibrate_dies_batched",
    "quantise_betas",
    "run_lifetime",
    "tune_population",
]
