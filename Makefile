# Convenience targets; everything is plain pytest underneath.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test docs-check bench bench-batched

test:
	$(PYTEST) -x -q

docs-check:
	$(PYTEST) -q tests/test_docs.py

bench:
	$(PYTEST) -q benchmarks/

bench-batched:
	$(PYTEST) -q benchmarks/bench_batched_sta.py
