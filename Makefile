# Convenience targets; everything is plain pytest underneath.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test lint docs-check bench bench-aging bench-batched \
	bench-cache bench-parallel bench-placer bench-serve bench-spatial \
	bench-grouping bench-tuning-throughput test-aging test-parallel \
	test-placement test-serve test-spatial test-grouping test-batched \
	examples

test:
	$(PYTEST) -x -q

# Static checks, three layers: ruff (style families, config in
# ruff.toml), the repro.lint AST contract checkers (determinism,
# hash-stability, units-suffix, registry-docstring, paper-anchor; see
# DESIGN.md "Static contract checking"), and the registry/docs policy
# suites.  ruff is optional locally but required (and installed) in CI;
# repro.lint has no dependencies beyond the repo itself and always runs.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping style pass (CI runs it)"; \
	fi
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples
	$(PYTEST) -q tests/core/test_registry.py \
		tests/grouping/test_grouping.py tests/test_docs.py \
		tests/lint/

docs-check:
	$(PYTEST) -q tests/test_docs.py

# Run every example script at full size (tests/test_examples.py smoke-
# runs the same scripts with REPRO_EXAMPLE_TINY=1 on every `make test`).
examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		PYTHONPATH=src python $$script; \
	done

bench:
	$(PYTEST) -q benchmarks/

# The temporal-scenario engine, gated: incremental ECO re-solve >= 5x
# faster than the cold-cache full re-solve over a drift lifetime on
# industrial3 (tiered by cores), bit-identical assignments either way,
# zero-drift epochs collapsing to pure cache hits.
bench-aging:
	$(PYTEST) -q benchmarks/bench_aging.py

bench-batched:
	$(PYTEST) -q benchmarks/bench_batched_sta.py

bench-cache:
	$(PYTEST) -q benchmarks/bench_cache.py

bench-parallel:
	$(PYTEST) -q benchmarks/bench_parallel.py

# The annealing placer, gated: anneal:default <= 0.8x the BFS well
# boundaries at equal-or-better leakage on industrial3, batched
# delta-HPWL >= 10x the scalar oracle at equal move count, plus the
# knob-sweep Pareto table.
bench-placer:
	$(PYTEST) -q benchmarks/bench_placer.py

# The allocation service, gated: warm-path dominance on a mixed
# hot/cold workload, sustained hot req/s over loopback HTTP, and
# single-flight collapse of concurrent identical specs.
bench-serve:
	$(PYTEST) -q benchmarks/bench_serve.py

# The paper's central claim, gated: spatial-vs-uniform dominance,
# monotone yield advantage in correlation length, worker determinism.
bench-spatial:
	$(PYTEST) -q benchmarks/bench_spatial.py

# Bias-domain grouping, gated: >= 3x ILP+heuristic solve-time speedup
# at bands:8 on the largest catalog circuit, the coarser-groups ->
# fewer-boundaries / higher-leakage monotone trade-off, and identity-
# grouping bit-identity.
bench-grouping:
	$(PYTEST) -q benchmarks/bench_grouping.py

# Batched population calibration, gated: >= 10x tuned dies/s over the
# per-die loop on c1355/1000 dies (tiered by cores), summaries
# bit-identical either way.
bench-tuning-throughput:
	$(PYTEST) -q benchmarks/bench_tuning_throughput.py

# The temporal-scenario suite on its own: the NBTI drift process, the
# closed-loop lifetime engine, and the incremental-vs-full ECO
# equivalence property harness (CI's aging-smoke job).
test-aging:
	$(PYTEST) -q tests/variation/test_aging.py \
		tests/tuning/test_lifetime.py \
		tests/tuning/test_eco_equivalence.py

# The batched-calibration suite on its own: batched-vs-serial summary
# equivalence (randomized populations, groupings, workers) plus the
# incremental-STA refine() oracle tests.
test-batched:
	$(PYTEST) -q tests/tuning/test_batched_equivalence.py \
		tests/sta/test_incremental.py

# The parallel/concurrency suite on its own: cache hammering across
# processes plus serial-vs-parallel equivalence (CI's smoke job).
test-parallel:
	$(PYTEST) -q tests/flow/test_parallel.py \
		tests/tuning/test_population_parallel.py

# The placement suite on its own: floorplan/BFS placer, the HPWL
# kernel's vectorized-vs-scalar equivalence, and the seeded annealer's
# determinism contract (CI's placer-smoke job).
test-placement:
	$(PYTEST) -q tests/placement/

# The serving-layer suite on its own: engine backends, HTTP framing,
# single-flight semantics and graceful drain (CI's serve-smoke job).
test-serve:
	$(PYTEST) -q tests/serve/ tests/flow/test_executor.py

# The spatial compensation engine suite on its own.
test-spatial:
	$(PYTEST) -q tests/tuning/test_spatial.py

# The bias-domain grouping suite on its own (unit + property tests +
# grouped tuning).
test-grouping:
	$(PYTEST) -q tests/grouping/ tests/tuning/test_grouping_tuning.py
