#!/usr/bin/env python3
"""Post-silicon process-variation compensation (the paper's motivation).

Samples a population of dies from the process-variation model, finds the
slow ones (timing-yield loss), and tunes each slow die with the
closed-loop controller.  Reports yield before/after tuning and the
leakage premium paid, comparing clustered FBB against block-level FBB.

Run:  python examples/process_variation_compensation.py
"""

import numpy as np

from repro import build_problem, implement, solve_heuristic, solve_single_bb
from repro.errors import TuningError
from repro.tuning import TuningController
from repro.variation import ProcessModel, sample_dies

NUM_DIES = 30


def main() -> None:
    print("implementing c3540-class ALU...")
    flow = implement("c3540")
    print(f"  {flow.num_gates} gates, {flow.num_rows} rows, "
          f"Dcrit = {flow.dcrit_ps:.0f} ps\n")

    model = ProcessModel(sigma_inter_v=0.02, sigma_intra_v=0.012)
    population = sample_dies(flow.placed, NUM_DIES, model, seed=42)
    betas = population.betas
    print(f"sampled {NUM_DIES} dies: slowdown mean {betas.mean():+.2%}, "
          f"worst {betas.max():+.2%}")
    print(f"timing yield before tuning: "
          f"{population.timing_yield():.0%}\n")

    controller = TuningController(flow.placed, flow.clib, max_clusters=3)
    unbiased_leakage = controller.clib_leakage_unbiased()

    recovered = 0
    lost = 0
    clustered_leakages = []
    single_bb_leakages = []
    for die in population.slow_dies():
        try:
            outcome = controller.calibrate(die.beta)
        except TuningError:
            lost += 1  # beyond FBB recovery range: true yield loss
            continue
        if not outcome.converged:
            lost += 1
            continue
        recovered += 1
        clustered_leakages.append(outcome.leakage_nw)
        problem = build_problem(flow.placed, flow.clib,
                                outcome.estimated_beta,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        single_bb_leakages.append(solve_single_bb(problem).leakage_nw)
        print(f"  die {die.index:2d}: beta {die.beta:+.2%} recovered in "
              f"{outcome.iterations} iteration(s), leakage "
              f"{outcome.leakage_nw / 1e3:.3f} uW "
              f"({outcome.leakage_nw / unbiased_leakage:.2f}x unbiased)")

    total_good = int(population.timing_yield() * NUM_DIES) + recovered
    print(f"\ntiming yield after tuning: {total_good / NUM_DIES:.0%} "
          f"({recovered} dies recovered, {lost} beyond FBB range)")
    if clustered_leakages:
        clustered = float(np.mean(clustered_leakages))
        single = float(np.mean(single_bb_leakages))
        print(f"mean leakage on recovered dies: {clustered / 1e3:.3f} uW "
              f"clustered vs {single / 1e3:.3f} uW block-level "
              f"({100 * (1 - clustered / single):.1f}% saved)")


if __name__ == "__main__":
    main()
