#!/usr/bin/env python3
"""Post-silicon process-variation compensation (the paper's motivation).

First measures the timing yield of a wafer-scale population (10k dies)
in one batched-STA sweep, then samples a small detailed population,
finds the slow dies (timing-yield loss), and tunes each one with the
closed-loop controller.  Reports yield before/after tuning and the
leakage premium paid, comparing clustered FBB against block-level FBB.

Reproduces: the paper's motivating experiment (Sec. 1/3.1) — the beta
population Table 1's slowdowns are drawn from, plus the Fig. 2
calibration loop on every slow die.  Expected runtime: ~4 s.

Run:  python examples/process_variation_compensation.py
(set REPRO_EXAMPLE_TINY=1 for the smoke configuration
tests/test_examples.py runs)
"""

import os

import numpy as np

from repro import build_problem, implement, solve_single_bb
from repro.errors import TuningError
from repro.tuning import TuningController
from repro.variation import ProcessModel, sample_dies

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"
DESIGN = "c1355" if TINY else "c3540"
WAFER_DIES = 300 if TINY else 10_000
NUM_DIES = 8 if TINY else 30


def main() -> None:
    print(f"implementing {DESIGN}-class module...")
    flow = implement(DESIGN)
    print(f"  {flow.num_gates} gates, {flow.num_rows} rows, "
          f"Dcrit = {flow.dcrit_ps:.0f} ps\n")

    model = ProcessModel(sigma_inter_v=0.02, sigma_intra_v=0.012)

    # Wafer-scale view first: the batched STA backend prices 10k dies in
    # one array sweep (see DESIGN.md, "Scaling to die populations").
    wafer = sample_dies(flow.placed, WAFER_DIES, model, seed=7,
                        store_scales=False)
    print(f"wafer scale: {WAFER_DIES} dies through batched STA -> "
          f"yield {wafer.timing_yield():.1%}, "
          f"beta p99 {np.percentile(wafer.betas, 99):+.2%}, "
          f"worst {wafer.betas.max():+.2%}\n")

    population = sample_dies(flow.placed, NUM_DIES, model, seed=42)
    betas = population.betas
    print(f"sampled {NUM_DIES} dies: slowdown mean {betas.mean():+.2%}, "
          f"worst {betas.max():+.2%}")
    print(f"timing yield before tuning: "
          f"{population.timing_yield():.0%}\n")

    controller = TuningController(flow.placed, flow.clib, max_clusters=3)
    unbiased_leakage = controller.clib_leakage_unbiased()

    recovered = 0
    lost = 0
    clustered_leakages = []
    single_bb_leakages = []
    for die in population.slow_dies():
        try:
            outcome = controller.calibrate(die.beta)
        except TuningError:
            lost += 1  # beyond FBB recovery range: true yield loss
            continue
        if not outcome.converged:
            lost += 1
            continue
        recovered += 1
        clustered_leakages.append(outcome.leakage_nw)
        problem = build_problem(flow.placed, flow.clib,
                                outcome.estimated_beta,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        single_bb_leakages.append(solve_single_bb(problem).leakage_nw)
        print(f"  die {die.index:2d}: beta {die.beta:+.2%} recovered in "
              f"{outcome.iterations} iteration(s), leakage "
              f"{outcome.leakage_nw / 1e3:.3f} uW "
              f"({outcome.leakage_nw / unbiased_leakage:.2f}x unbiased)")

    total_good = int(population.timing_yield() * NUM_DIES) + recovered
    print(f"\ntiming yield after tuning: {total_good / NUM_DIES:.0%} "
          f"({recovered} dies recovered, {lost} beyond FBB range)")
    if clustered_leakages:
        clustered = float(np.mean(clustered_leakages))
        single = float(np.mean(single_bb_leakages))
        print(f"mean leakage on recovered dies: {clustered / 1e3:.3f} uW "
              f"clustered vs {single / 1e3:.3f} uW block-level "
              f"({100 * (1 - clustered / single):.1f}% saved)")


if __name__ == "__main__":
    main()
