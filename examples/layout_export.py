#!/usr/bin/env python3
"""Physical-design interchange: LEF/DEF/Liberty/SVG export (Fig. 6).

Reproduces the paper's placed-and-routed demonstrator: a c5315-class
design with two distributed vbs rail pairs routed through the core.
Writes the artefacts a commercial flow would consume:

* ``out/repro45.lef``      — site, layers, cell macros
* ``out/repro45.lib``      — characterized delay/leakage vs vbs
* ``out/c5315_fbb.def``    — placement + bias rails as SPECIALNETS
* ``out/c5315_fbb.svg``    — rendered clustered layout

Reproduces: Fig. 6 (routed bias rails on the placed demonstrator) and
the Sec. 3.3 physical-implementation rules.  Expected runtime: ~1 s.

Run:  python examples/layout_export.py
"""

import os
from pathlib import Path

from repro import build_problem, implement, solve_heuristic
from repro.layout import ascii_layout, route_bias_rails, svg_layout
from repro.lefdef import read_def, read_lef, write_def, write_lef
from repro.tech import write_liberty

OUT = Path(__file__).parent / "out"
TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"
DESIGN = "c1355" if TINY else "c5315"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    flow = implement(DESIGN)
    problem = build_problem(flow.placed, flow.clib, 0.05,
                            analyzer=flow.analyzer, paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    solution = solve_heuristic(problem, max_clusters=3)
    print(solution.describe())

    route = route_bias_rails(flow.placed, solution.levels_array,
                             problem.vbs_levels)
    print(f"routed {len(route.rails)} bias rails "
          f"({route.num_bias_values} voltages) on "
          f"{flow.clib.tech.bias_rules.rail_layer}")

    lef_path = OUT / "repro45.lef"
    write_lef(flow.clib.library, lef_path)
    print(f"wrote {lef_path} ({len(read_lef(lef_path).macros)} macros)")

    lib_path = OUT / "repro45.lib"
    write_liberty(flow.clib, lib_path)
    print(f"wrote {lib_path}")

    def_path = OUT / f"{DESIGN}_fbb.def"
    write_def(flow.placed, def_path, special_nets=route.special_nets())
    parsed = read_def(def_path)
    print(f"wrote {def_path} ({len(parsed.components)} components, "
          f"{len(parsed.special_nets)} special nets)")

    svg_path = OUT / f"{DESIGN}_fbb.svg"
    svg_layout(flow.placed, solution.levels, svg_path, route=route)
    print(f"wrote {svg_path}")

    print("\nASCII preview:")
    print(ascii_layout(flow.placed, solution.levels, width_chars=56,
                       route=route))


if __name__ == "__main__":
    main()
