#!/usr/bin/env python3
"""NBTI aging compensation over a 10-year lifetime.

Transistor aging slows a die gradually; the paper positions FBB as the
recovery knob for exactly this drift (Sec. 1, refs [3]).  This example
re-tunes a design at yearly checkpoints against the NBTI power-law
model, showing how the required bias and the leakage premium grow over
the product lifetime — and how much of that premium row-clustering
claws back compared to block-level FBB.

Reproduces: the aging-compensation scenario of the paper's
introduction (Sec. 1, refs [3]), re-tuned with the Sec. 4 allocators
at each lifetime checkpoint.  Expected runtime: ~1 s.

Run:  python examples/aging_compensation.py
(set REPRO_EXAMPLE_TINY=1 for the smoke configuration
tests/test_examples.py runs)
"""

import os

from repro import build_problem, implement, solve_heuristic, solve_single_bb
from repro.errors import InfeasibleError
from repro.variation import SECONDS_PER_YEAR, NbtiModel

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"
DESIGN = "c1355" if TINY else "adder_128bits"
YEARS = (1, 10) if TINY else (1, 2, 3, 5, 7, 10)


def main() -> None:
    print(f"implementing {DESIGN} (registered datapath)...")
    flow = implement(DESIGN)
    tech = flow.clib.tech
    model = NbtiModel()
    print(f"  {flow.num_gates} gates, Dcrit = {flow.dcrit_ps:.0f} ps")
    print(f"  NBTI model: dVth(1y) = {model.prefactor_v * 1000:.0f} mV, "
          f"exponent {model.exponent}\n")

    print(f"{'year':>5} {'beta':>8} {'jopt vbs':>9} {'single BB':>10} "
          f"{'clustered':>10} {'saved':>7}")
    for year in YEARS:
        beta = model.slowdown_beta(tech, year * SECONDS_PER_YEAR)
        try:
            problem = build_problem(flow.placed, flow.clib, beta,
                                    analyzer=flow.analyzer,
                                    paths=list(flow.paths),
                                    dcrit_ps=flow.dcrit_ps)
            baseline = solve_single_bb(problem)
            clustered = solve_heuristic(problem, max_clusters=3)
        except InfeasibleError:
            print(f"{year:>5} {beta:>8.2%}  -- beyond FBB recovery range --")
            continue
        saved = clustered.savings_vs(baseline.leakage_nw)
        jopt_vbs = problem.vbs_levels[baseline.extras["jopt"]]
        print(f"{year:>5} {beta:>8.2%} {jopt_vbs * 1000:>6.0f} mV "
              f"{baseline.leakage_uw:>9.3f}u {clustered.leakage_uw:>9.3f}u "
              f"{saved:>6.1f}%")

    print("\nreading: the bias needed (and its leakage cost) grows with "
          "age; clustering pays off most in late life when block-level "
          "FBB would bias everything at a high voltage.")


if __name__ == "__main__":
    main()
