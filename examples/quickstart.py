#!/usr/bin/env python3
"""Quickstart: clustered FBB allocation on one benchmark.

Implements a c5315-class design (synthesis -> placement -> STA), builds
the allocation problem for a 5 % die slowdown, and compares block-level
FBB (the paper's baseline) against the clustered ILP and heuristic.

Reproduces: the methodology behind one Table 1 row (c5315, beta=5%)
plus a Fig. 3-style clustered layout.  Expected runtime: ~3 s.

Run:  python examples/quickstart.py
(set REPRO_EXAMPLE_TINY=1 for the seconds-scale smoke configuration
tests/test_examples.py runs)
"""

import os

from repro import (build_problem, implement, solve_heuristic, solve_ilp,
                   solve_single_bb)
from repro.layout import area_report, ascii_layout, route_bias_rails

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"
DESIGN = "c1355" if TINY else "c5315"


def main() -> None:
    print(f"implementing {DESIGN} "
          "(generate -> map -> size -> place -> STA)...")
    flow = implement(DESIGN)
    print(f"  {flow.num_gates} gates on {flow.num_rows} rows, "
          f"Dcrit = {flow.dcrit_ps:.0f} ps")

    beta = 0.05
    problem = build_problem(flow.placed, flow.clib, beta,
                            analyzer=flow.analyzer, paths=list(flow.paths),
                            dcrit_ps=flow.dcrit_ps)
    print(f"  beta = {beta:.0%}: {problem.num_constraints} violating paths "
          "to recover\n")

    baseline = solve_single_bb(problem)
    print("block-level FBB baseline:")
    print(f"  {baseline.describe()}\n")

    heuristic = solve_heuristic(problem, max_clusters=3)
    ilp = solve_ilp(problem, max_clusters=3)
    for solution in (heuristic, ilp):
        print(solution.describe())
        print(f"  leakage savings vs single BB: "
              f"{solution.savings_vs(baseline.leakage_nw):.2f}%")
    print()

    print("physical implementation cost of the heuristic solution:")
    report = area_report(flow.placed, heuristic.levels_array,
                         problem.vbs_levels)
    print(report.format())
    print()

    route = route_bias_rails(flow.placed, heuristic.levels_array,
                             problem.vbs_levels)
    print("clustered layout (rows coloured by bias, '|' = vbs rails):")
    print(ascii_layout(flow.placed, heuristic.levels, width_chars=60,
                       route=route))


if __name__ == "__main__":
    main()
