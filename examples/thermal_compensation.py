#!/usr/bin/env python3
"""Temperature-induced timing compensation (paper Sec. 1, ref [4]).

A die that meets timing at the 300 K characterization point slows down
as it heats.  This example sweeps the operating temperature, converts
each point into an equivalent slowdown beta, and lets the clustered-FBB
machinery compensate — reporting the bias leakage premium against the
block-level alternative.  Leakage numbers include the thermal leakage
multiplier itself, which is why compensating at high temperature is so
expensive and worth clustering.

Reproduces: the temperature-drift compensation scenario of the paper's
introduction (Sec. 1, ref [4]), priced with the Table 1 machinery at
each operating point.  Expected runtime: ~1 s.

Run:  python examples/thermal_compensation.py
(set REPRO_EXAMPLE_TINY=1 for the smoke configuration
tests/test_examples.py runs)
"""

import os

from repro import build_problem, implement, solve_heuristic, solve_single_bb
from repro.errors import InfeasibleError
from repro.variation import TemperatureModel

TINY = os.environ.get("REPRO_EXAMPLE_TINY") == "1"
DESIGN = "c1355" if TINY else "c7552"
TEMPERATURES_K = ((300.0, 360.0, 400.0) if TINY
                  else (300.0, 320.0, 340.0, 360.0, 380.0, 400.0))


def main() -> None:
    print(f"implementing {DESIGN}-class module...")
    flow = implement(DESIGN)
    model = TemperatureModel()
    print(f"  {flow.num_gates} gates, Dcrit = {flow.dcrit_ps:.0f} ps at "
          "300 K\n")

    print(f"{'T (K)':>6} {'beta':>7} {'thermal x':>10} {'single BB':>10} "
          f"{'clustered':>10} {'saved':>7}")
    for temperature in TEMPERATURES_K:
        beta = model.slowdown_beta(temperature)
        thermal = model.leakage_multiplier(temperature)
        if beta == 0.0:
            print(f"{temperature:>6.0f} {beta:>7.2%} {thermal:>9.1f}x"
                  f"       meets timing unbiased")
            continue
        try:
            problem = build_problem(flow.placed, flow.clib, beta,
                                    analyzer=flow.analyzer,
                                    paths=list(flow.paths),
                                    dcrit_ps=flow.dcrit_ps)
            baseline = solve_single_bb(problem)
            clustered = solve_heuristic(problem, max_clusters=3)
        except InfeasibleError:
            print(f"{temperature:>6.0f} {beta:>7.2%}  -- beyond FBB "
                  "recovery range --")
            continue
        single_uw = baseline.leakage_uw * thermal
        clustered_uw = clustered.leakage_uw * thermal
        saved = clustered.savings_vs(baseline.leakage_nw)
        print(f"{temperature:>6.0f} {beta:>7.2%} {thermal:>9.1f}x "
              f"{single_uw:>9.2f}u {clustered_uw:>9.2f}u {saved:>6.1f}%")

    print("\nreading: hotter silicon needs more bias AND leaks more per "
          "nW of bias cost; row clustering trims the premium where block-"
          "level FBB pays it everywhere.")


if __name__ == "__main__":
    main()
