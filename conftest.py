"""Pytest bootstrap: make `src/` importable without an installed package.

The canonical install is `pip install -e .` (or `python setup.py develop`
in offline environments without the `wheel` package).  This hook is a
safety net so that `pytest` run from a fresh checkout still finds the
`repro` package.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
