"""Tree-level lint tests: the shipped repo is contract-clean.

The paper reproduction's guarantees (determinism, hash stability,
base-unit naming, documented registries, paper anchors) are enforced
statically by ``python -m repro.lint``; this module asserts that the
tree as shipped passes, that the CLI front ends agree on exit codes
and JSON shape, and that the RunSpec hash-fate declarations stay
exhaustive at runtime.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import EXECUTION_KNOBS, HASHED_FIELDS, RunSpec
from repro.lint import checker_registry, lint_paths, load_builtin_checkers
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

LINT_TARGETS = [REPO_ROOT / name
                for name in ("src", "tests", "benchmarks", "examples")]


def test_shipped_tree_is_lint_clean():
    """The tree ships with zero findings — the same self-check that
    ``make lint`` and CI gate on."""
    findings = lint_paths(LINT_TARGETS, root=REPO_ROOT)
    assert not findings, "\n".join(f.format() for f in findings)


def test_all_six_rules_registered():
    load_builtin_checkers()
    assert checker_registry.names() == (
        "async-blocking", "determinism", "hash-stability",
        "paper-anchor", "registry-docstring", "units-suffix")


def test_runspec_hash_fate_declarations_are_exhaustive():
    """Every RunSpec field appears in exactly one of HASHED_FIELDS /
    EXECUTION_KNOBS — the runtime mirror of the hash-stability rule."""
    fields = {f.name for f in dataclasses.fields(RunSpec)}
    assert set(HASHED_FIELDS) | set(EXECUTION_KNOBS) == fields
    assert not set(HASHED_FIELDS) & set(EXECUTION_KNOBS)


def test_execution_knobs_do_not_perturb_the_hash():
    base = RunSpec(kind="population", design="c1355", seed=7)
    for knob, value in (("workers", 4), ("tuning_engine", "batched")):
        assert dataclasses.replace(base, **{knob: value}).spec_hash() \
            == base.spec_hash()


class TestCli:
    def test_module_cli_clean_exit(self):
        assert lint_main([str(path) for path in LINT_TARGETS]) == 0

    def test_module_cli_reports_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir()
        bad.write_text('"""No anchor here."""\n')
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[paper-anchor]" in out

    def test_module_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert lint_main(["--format", "json", str(bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == len(report["findings"]) >= 1
        assert report["files_scanned"] == 1
        assert {"path", "line", "rule", "message"} \
            <= set(report["findings"][0])

    def test_module_cli_rule_selection(self, tmp_path):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir()
        bad.write_text('"""No anchor here."""\n')
        assert lint_main(["--rule", "determinism", str(bad)]) == 0
        assert lint_main(["--rule", "paper-anchor", str(bad)]) == 1

    def test_missing_target_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            lint_main(["--rule", "no-such-rule", "src"])

    def test_repro_fbb_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as fbb_main
        assert fbb_main(["lint", str(REPO_ROOT / "src")]) == 0
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir()
        bad.write_text('"""No anchor here."""\n')
        assert fbb_main(["lint", str(bad)]) == 1
        assert fbb_main(["lint", "--format", "json", str(bad)]) == 1
        capsys.readouterr()

    def test_repro_fbb_lint_unknown_rule_is_usage_error(self):
        from repro.cli import main as fbb_main
        assert fbb_main(["lint", "--rule", "no-such-rule",
                         str(REPO_ROOT / "src")]) == 2
