"""Checker-level tests for :mod:`repro.lint` over the string corpus.

Every rule is exercised with at least one flagging and one passing
snippet from ``tests/lint/corpus.py``, plus the acceptance scenarios
of the lint framework itself: a RunSpec field with no declared hash
fate is flagged, an unseeded ``np.random.rand`` is flagged, inline
suppressions silence exactly their rule on their line, and unparseable
files degrade to a single ``syntax`` finding.
"""

from repro.lint import SourceFile, lint_sources
from tests.lint import corpus


def findings_for(text, rule, role="library", path="snippet.py"):
    source = SourceFile(path=path, text=text, role=role)
    return lint_sources([source], rules=[rule])


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestDeterminism:
    def test_legacy_np_random_flagged(self):
        found = findings_for(corpus.BAD_DETERMINISM_LEGACY_NP,
                             "determinism")
        assert len(found) == 2  # np.random.seed and np.random.rand
        assert all("global state" in f.message for f in found)

    def test_legacy_np_random_flagged_tree_wide(self):
        """The sampling rules hold in tests/benchmarks/examples too."""
        assert findings_for(corpus.BAD_DETERMINISM_LEGACY_NP,
                            "determinism", role="tests")

    def test_bare_random_flagged(self):
        found = findings_for(corpus.BAD_DETERMINISM_BARE_RANDOM,
                             "determinism")
        assert found and "random.Random(seed)" in found[0].message

    def test_wall_clock_flagged_in_library(self):
        found = findings_for(corpus.BAD_DETERMINISM_WALL_CLOCK,
                             "determinism")
        messages = " ".join(f.message for f in found)
        assert "time.time()" in messages
        assert "datetime.now()" in messages

    def test_wall_clock_allowed_outside_library(self):
        assert not findings_for(corpus.BAD_DETERMINISM_WALL_CLOCK,
                                "determinism", role="tests")

    def test_untyped_rng_parameter_flagged(self):
        found = findings_for(corpus.BAD_DETERMINISM_UNTYPED_RNG,
                             "determinism")
        assert found and "np.random.Generator" in found[0].message

    def test_seeded_generator_and_perf_counter_pass(self):
        assert not findings_for(corpus.GOOD_DETERMINISM, "determinism")

    def test_unseeded_drift_process_flagged(self):
        """The temporal-scenario contract: an aging-drift sampler on
        hidden global state must fail lint."""
        found = findings_for(corpus.BAD_DETERMINISM_UNSEEDED_DRIFT,
                             "determinism")
        assert found and "np.random.normal" in found[0].message

    def test_seeded_child_generator_drift_passes(self):
        """The shipped drift idiom — default_rng([seed, epoch]) child
        generators — must stay clean."""
        assert not findings_for(corpus.GOOD_DETERMINISM_SEEDED_DRIFT,
                                "determinism")

    def test_unseeded_move_proposal_flagged(self):
        """The annealer contract: move proposals on hidden global
        state must fail lint."""
        found = findings_for(corpus.BAD_PLACER_UNSEEDED_MOVES,
                             "determinism")
        messages = " ".join(f.message for f in found)
        assert "np.random.randint" in messages
        assert "np.random.rand" in messages

    def test_seeded_move_proposal_passes(self):
        """The shipped annealer idiom — one typed generator built by
        ``default_rng(seed)`` — must stay clean."""
        assert not findings_for(corpus.GOOD_PLACER_SEEDED,
                                "determinism")


class TestHashStability:
    def test_missing_exclusion_tuple_flagged(self):
        found = findings_for(corpus.BAD_HASH_NO_KNOBS_TUPLE,
                             "hash-stability")
        assert found and "EXECUTION_KNOBS" in found[0].message

    def test_undeclared_field_flagged(self):
        """The acceptance scenario: a new RunSpec-like field absent
        from both tuples and from cache_material() fails lint."""
        found = findings_for(corpus.BAD_HASH_UNDECLARED_FIELD,
                             "hash-stability")
        assert any("sneaky_new_field" in f.message for f in found)

    def test_complete_declaration_passes(self):
        assert not findings_for(corpus.GOOD_HASH, "hash-stability")


class TestUnitsSuffix:
    def test_display_suffix_flagged(self):
        found = findings_for(corpus.BAD_UNITS_DISPLAY_SUFFIX,
                             "units-suffix")
        names = " ".join(f.message for f in found)
        assert "delay_ns" in names and "slack_ns" in names

    def test_bare_quantity_word_flagged(self):
        found = findings_for(corpus.BAD_UNITS_BARE_QUANTITY,
                             "units-suffix")
        assert found and "no unit" in found[0].message

    def test_base_units_and_conversion_helpers_pass(self):
        assert not findings_for(corpus.GOOD_UNITS, "units-suffix")

    def test_rule_is_library_only(self):
        assert not findings_for(corpus.BAD_UNITS_DISPLAY_SUFFIX,
                                "units-suffix", role="tests")


class TestRegistryDocstring:
    def test_undocumented_decorated_entry_flagged(self):
        found = findings_for(corpus.BAD_REGISTRY_UNDOCUMENTED,
                             "registry-docstring")
        assert found and "solve_mystery" in found[0].message

    def test_lambda_entry_flagged(self):
        found = findings_for(corpus.BAD_REGISTRY_LAMBDA,
                             "registry-docstring")
        assert found and "lambda" in found[0].message

    def test_documented_entries_pass(self):
        assert not findings_for(corpus.GOOD_REGISTRY,
                                "registry-docstring")


class TestPaperAnchor:
    def test_anchorless_docstring_flagged(self):
        found = findings_for(corpus.BAD_PAPER_ANCHOR, "paper-anchor")
        assert found and "paper anchor" in found[0].message

    def test_missing_docstring_flagged(self):
        found = findings_for(corpus.BAD_PAPER_NO_DOCSTRING,
                             "paper-anchor")
        assert found and "missing module docstring" in found[0].message

    def test_anchored_docstring_passes(self):
        assert not findings_for(corpus.GOOD_PAPER_ANCHOR, "paper-anchor")

    def test_private_modules_exempt(self):
        assert not findings_for(corpus.BAD_PAPER_ANCHOR, "paper-anchor",
                                path="_private.py")

    def test_rule_is_library_only(self):
        assert not findings_for(corpus.BAD_PAPER_ANCHOR, "paper-anchor",
                                role="tests")


class TestAsyncBlocking:
    def test_sleep_open_and_pickle_flagged(self):
        found = findings_for(corpus.BAD_ASYNC_BLOCKING_IO,
                             "async-blocking")
        messages = " ".join(f.message for f in found)
        assert len(found) == 3
        assert "asyncio.sleep" in messages
        assert "open()" in messages
        assert "pickle.load()" in messages

    def test_socket_and_urlopen_flagged(self):
        found = findings_for(corpus.BAD_ASYNC_SOCKET, "async-blocking")
        messages = " ".join(f.message for f in found)
        assert len(found) == 2
        assert "asyncio.open_connection" in messages
        assert "urlopen()" in messages

    def test_from_imported_alias_flagged(self):
        found = findings_for(corpus.BAD_ASYNC_ALIASED_SLEEP,
                             "async-blocking")
        assert found and "time.sleep()" in found[0].message

    def test_executor_bridge_passes(self):
        assert not findings_for(corpus.GOOD_ASYNC_BRIDGED,
                                "async-blocking")

    def test_nested_sync_helper_exempt(self):
        assert not findings_for(corpus.GOOD_ASYNC_NESTED_SYNC,
                                "async-blocking")

    def test_rule_is_library_only(self):
        assert not findings_for(corpus.BAD_ASYNC_BLOCKING_IO,
                                "async-blocking", role="tests")

    def test_sanctioned_suppression(self):
        assert not findings_for(corpus.SUPPRESSED_ASYNC_BLOCKING,
                                "async-blocking")


class TestSuppressions:
    def test_named_rule_suppressed_on_its_line(self):
        assert not findings_for(corpus.SUPPRESSED_UNITS, "units-suffix")

    def test_wildcard_suppresses_every_rule(self):
        assert not findings_for(corpus.SUPPRESSED_WILDCARD,
                                "determinism")

    def test_suppression_is_line_scoped(self):
        """The same violation on an unsuppressed line still fires."""
        text = corpus.SUPPRESSED_UNITS.replace(
            "  # repro-lint: ignore[units-suffix] -- native us spec", "")
        assert findings_for(text, "units-suffix")


class TestEngine:
    def test_syntax_error_degrades_to_finding(self):
        source = SourceFile(path="broken.py", text=corpus.SYNTAX_ERROR,
                            role="library")
        found = lint_sources([source])
        assert rules_of(found) == {"syntax"}

    def test_findings_sorted_by_location(self):
        source = SourceFile(path="snippet.py",
                            text=corpus.BAD_DETERMINISM_LEGACY_NP,
                            role="library")
        found = lint_sources([source], rules=["determinism"])
        assert [f.line for f in found] == sorted(f.line for f in found)
