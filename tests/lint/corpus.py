"""Fixture corpus for the :mod:`repro.lint` checkers (tests only).

Each checker gets at least one flagging and one passing snippet.  The
snippets live as *strings* on purpose: the AST checkers never look
inside string constants, so ``python -m repro.lint tests`` stays clean
while the corpus still exercises every rule the paper reproduction's
contracts depend on.
"""

# -- determinism -----------------------------------------------------------

BAD_DETERMINISM_LEGACY_NP = '''\
"""Module under test."""
import numpy as np

def sample():
    np.random.seed(42)
    return np.random.rand(4)
'''

BAD_DETERMINISM_BARE_RANDOM = '''\
"""Module under test."""
import random

def pick(items):
    return random.choice(items)
'''

BAD_DETERMINISM_WALL_CLOCK = '''\
"""Module under test."""
import time
import datetime as dt

def stamp():
    return time.time(), dt.datetime.now()
'''

BAD_DETERMINISM_UNTYPED_RNG = '''\
"""Module under test."""

def sample(rng, count):
    return rng.normal(size=count)
'''

GOOD_DETERMINISM = '''\
"""Module under test."""
import time
import numpy as np

def sample(rng: np.random.Generator, count: int):
    start = time.perf_counter()
    values = np.random.default_rng(0).normal(size=count)
    return values, time.perf_counter() - start
'''

BAD_DETERMINISM_UNSEEDED_DRIFT = '''\
"""An aging-drift process drawn from hidden global state: the same
lifetime run would produce a different trajectory every invocation,
breaking the epoch-composition contract."""
import numpy as np

def epoch_increment(num_rows, sigma):
    return sigma * np.random.normal(size=num_rows)
'''

GOOD_DETERMINISM_SEEDED_DRIFT = '''\
"""The seeded twin: each epoch draws from its own child generator, so
trajectories reproduce and epoch composition is order-independent."""
import numpy as np

def epoch_increment(seed, epoch, num_rows, sigma):
    rng = np.random.default_rng([seed, epoch])
    return sigma * rng.normal(size=num_rows)
'''

BAD_PLACER_UNSEEDED_MOVES = '''\
"""An annealing move proposer drawing from hidden global state: the
same placement run would explore a different move sequence every
invocation, breaking the same-seed bit-identity contract."""
import numpy as np

def propose_moves(num_gates, num_moves):
    gates = np.random.randint(0, num_gates, num_moves)
    return gates, np.random.rand(num_moves)
'''

GOOD_PLACER_SEEDED = '''\
"""The seeded twin: all annealer randomness flows from one
``default_rng(seed)`` with a fixed draw order, so a seed replays the
whole move stream bit-identically."""
import numpy as np

def propose_moves(rng: np.random.Generator, num_gates, num_moves):
    gates = rng.integers(0, num_gates, num_moves)
    return gates, rng.random(num_moves)

def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
'''

# -- hash-stability --------------------------------------------------------

BAD_HASH_NO_KNOBS_TUPLE = '''\
"""Module under test."""
from dataclasses import dataclass

HASHED_FIELDS = ("design", "seed")

@dataclass(frozen=True)
class Spec:
    design: str = "c1355"
    seed: int = 0

    def cache_material(self) -> dict:
        return {"design": self.design, "seed": self.seed}
'''

BAD_HASH_UNDECLARED_FIELD = '''\
"""Module under test."""
from dataclasses import dataclass

EXECUTION_KNOBS = ("workers",)
HASHED_FIELDS = ("design", "seed")

@dataclass(frozen=True)
class Spec:
    design: str = "c1355"
    seed: int = 0
    workers: int = 1
    sneaky_new_field: float = 0.0

    def cache_material(self) -> dict:
        material = {"design": self.design, "seed": self.seed}
        for knob in EXECUTION_KNOBS:
            material.pop(knob, None)
        return material
'''

GOOD_HASH = '''\
"""Module under test."""
from dataclasses import dataclass

EXECUTION_KNOBS = ("workers",)
HASHED_FIELDS = ("design", "seed")

@dataclass(frozen=True)
class Spec:
    design: str = "c1355"
    seed: int = 0
    workers: int = 1

    def cache_material(self) -> dict:
        material = {"design": self.design, "seed": self.seed,
                    "workers": self.workers}
        for knob in EXECUTION_KNOBS:
            del material[knob]
        return material
'''

# -- units-suffix ----------------------------------------------------------

BAD_UNITS_DISPLAY_SUFFIX = '''\
"""Module under test."""
from dataclasses import dataclass

@dataclass
class Timing:
    delay_ns: float = 0.0

def slack_ns(arrival_ps: float) -> float:
    return arrival_ps / 1000.0
'''

BAD_UNITS_BARE_QUANTITY = '''\
"""Module under test."""

def leakage(width_nm: float) -> float:
    return width_nm * 2.0
'''

GOOD_UNITS = '''\
"""Module under test."""
from dataclasses import dataclass

@dataclass
class Timing:
    delay_ps: float = 0.0
    leakage_nw: float = 0.0

def slack_ps(arrival_ps: float, tcrit_ps: float) -> float:
    return tcrit_ps - arrival_ps

def ps_to_ns(delay_ps: float) -> float:
    return delay_ps / 1000.0
'''

# -- registry-docstring ----------------------------------------------------

BAD_REGISTRY_UNDOCUMENTED = '''\
"""Module under test."""
from somewhere import registry

@registry.register("mystery")
def solve_mystery(problem, clusters):
    return None
'''

BAD_REGISTRY_LAMBDA = '''\
"""Module under test."""
from somewhere import grouping_registry

grouping_registry.register("quick", lambda context, param: None)
'''

GOOD_REGISTRY = '''\
"""Module under test."""
from somewhere import registry

@registry.register("documented")
def solve_documented(problem, clusters):
    """A documented solver entry."""
    return None

def named(problem, clusters):
    """A documented call-form entry."""
    return None

registry.register("named", named)
'''

# -- paper-anchor ----------------------------------------------------------

BAD_PAPER_ANCHOR = '''\
"""Helpers for things."""

def helper():
    return 1
'''

BAD_PAPER_NO_DOCSTRING = '''\
def helper():
    return 1
'''

GOOD_PAPER_ANCHOR = '''\
"""Clustered allocation (paper Sec. 4.2, Table 1)."""

def helper():
    return 1
'''

# -- async-blocking --------------------------------------------------------

BAD_ASYNC_BLOCKING_IO = '''\
"""Module under test."""
import pickle
import time


async def handler(path):
    time.sleep(0.1)
    with open(path, "rb") as handle:
        return pickle.load(handle)
'''

BAD_ASYNC_SOCKET = '''\
"""Module under test."""
import socket
from urllib.request import urlopen


async def probe(host):
    urlopen(f"http://{host}/healthz")
    return socket.create_connection((host, 80))
'''

BAD_ASYNC_ALIASED_SLEEP = '''\
"""Module under test."""
from time import sleep


async def backoff():
    sleep(1.0)
'''

GOOD_ASYNC_BRIDGED = '''\
"""Module under test."""
import asyncio
import pickle


def _read(path):
    with open(path, "rb") as handle:
        return pickle.load(handle)


async def handler(loop, path):
    await asyncio.sleep(0.1)
    return await loop.run_in_executor(None, _read, path)
'''

GOOD_ASYNC_NESTED_SYNC = '''\
"""Module under test."""


async def handler(loop):
    def reader(path):
        with open(path, "rb") as handle:
            return handle.read()
    return await loop.run_in_executor(None, reader, "artifact.pkl")
'''

SUPPRESSED_ASYNC_BLOCKING = '''\
"""Module under test."""


async def announce(port_file, port):
    open(port_file, "w").write(str(port))  # repro-lint: ignore[async-blocking] -- one-shot startup write
'''

# -- suppressions ----------------------------------------------------------

SUPPRESSED_UNITS = '''\
"""Module under test."""
from dataclasses import dataclass

@dataclass
class Generator:
    settle_time_us: float = 5.0  # repro-lint: ignore[units-suffix] -- native us spec
'''

SUPPRESSED_WILDCARD = '''\
"""Module under test."""
import numpy as np

def sample():
    return np.random.rand(4)  # repro-lint: ignore[*] -- corpus demo
'''

# -- engine edge cases -----------------------------------------------------

SYNTAX_ERROR = '''\
def broken(:
    pass
'''
