"""Round-trip tests for LEF and DEF I/O."""

import pytest

from repro.circuits import c1355_like
from repro.errors import ParseError
from repro.lefdef import (SpecialNet, read_def, read_lef,
                          rebuild_placed_design, validate_against_library,
                          write_def, write_lef)
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import reduced_library

LIBRARY = reduced_library()


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=8, check_bits=4), LIBRARY)
    return place_design(mapped, LIBRARY)


class TestLef:
    def test_round_trip_macros(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        assert set(lef.macros) == set(LIBRARY.cell_names)

    def test_site_geometry(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        assert lef.site_width_um == pytest.approx(
            LIBRARY.tech.site_width_um)
        assert lef.site_height_um == pytest.approx(
            LIBRARY.tech.row_height_um)

    def test_macro_sizes_match_library(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        validate_against_library(lef, LIBRARY)

    def test_pins_present(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        nand2 = lef.macro("NAND2_X1")
        assert set(nand2.pins) == {"A1", "A2", "ZN"}
        dff = lef.macro("DFF_X1")
        assert set(dff.pins) == {"D", "CK", "Q"}

    def test_layers_include_top_metal(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        assert LIBRARY.tech.bias_rules.rail_layer in lef.layers

    def test_missing_site_rejected(self, tmp_path):
        path = tmp_path / "bad.lef"
        path.write_text("VERSION 5.7 ;\nEND LIBRARY\n")
        with pytest.raises(ParseError):
            read_lef(path)

    def test_unknown_macro_lookup(self, tmp_path):
        path = tmp_path / "lib.lef"
        write_lef(LIBRARY, path)
        lef = read_lef(path)
        with pytest.raises(ParseError):
            lef.macro("NOT_A_CELL")


class TestDef:
    def test_round_trip_components(self, placed, tmp_path):
        path = tmp_path / "design.def"
        write_def(placed, path)
        parsed = read_def(path)
        assert parsed.design_name == placed.netlist.name
        assert set(parsed.components) == set(placed.netlist.gates)

    def test_row_statements(self, placed, tmp_path):
        path = tmp_path / "design.def"
        write_def(placed, path)
        parsed = read_def(path)
        assert len(parsed.rows) == placed.num_rows

    def test_rebuild_equals_original(self, placed, tmp_path):
        path = tmp_path / "design.def"
        write_def(placed, path)
        parsed = read_def(path)
        rebuilt = rebuild_placed_design(
            parsed, placed.netlist.copy(), LIBRARY)
        for name, placement in placed.placements.items():
            other = rebuilt.placements[name]
            assert (placement.row, placement.site) == (other.row, other.site)

    def test_pins_cover_io(self, placed, tmp_path):
        path = tmp_path / "design.def"
        write_def(placed, path)
        parsed = read_def(path)
        expected = (placed.netlist.primary_inputs
                    + placed.netlist.primary_outputs)
        assert parsed.pins == expected

    def test_special_nets_round_trip(self, placed, tmp_path):
        rails = [SpecialNet("vbs1_n", "metal7",
                            [(1.0, 0.0, 1.4, 50.0)]),
                 SpecialNet("vbs1_p", "metal7",
                            [(2.0, 0.0, 2.4, 50.0)])]
        path = tmp_path / "design.def"
        write_def(placed, path, special_nets=rails)
        parsed = read_def(path)
        assert [s.name for s in parsed.special_nets] == ["vbs1_n", "vbs1_p"]
        assert parsed.special_nets[0].layer == "metal7"
        assert parsed.special_nets[0].rects_um[0] == pytest.approx(
            (1.0, 0.0, 1.4, 50.0))

    def test_missing_diearea_rejected(self, tmp_path):
        path = tmp_path / "bad.def"
        path.write_text("DESIGN x ;\nEND DESIGN\n")
        with pytest.raises(ParseError):
            read_def(path)

    def test_bad_component_line_rejected(self, tmp_path):
        path = tmp_path / "bad.def"
        path.write_text(
            "DESIGN x ;\nDIEAREA ( 0 0 ) ( 100 100 ) ;\n"
            "ROW row_0 core 0 0 N DO 10 BY 1 STEP 200 0 ;\n"
            "COMPONENTS 1 ;\n  - broken line here ;\nEND COMPONENTS\n"
            "END DESIGN\n")
        with pytest.raises(ParseError):
            read_def(path)
