"""Tests for netlist statistics."""


from repro.circuits import adder_128bits, c6288_like
from repro.netlist import Netlist, netlist_stats


class TestStats:
    def test_counts_consistent(self):
        netlist = adder_128bits(width=8)
        stats = netlist_stats(netlist)
        assert stats.num_gates == netlist.num_gates
        assert (stats.num_combinational + stats.num_sequential
                == stats.num_gates)
        assert stats.num_primary_inputs == 17   # 2*8 + cin
        assert stats.num_primary_outputs == 9   # 8 + cout

    def test_depth_matches_netlist(self):
        netlist = c6288_like(width=4)
        stats = netlist_stats(netlist)
        assert stats.logic_depth == netlist.logic_depth()
        assert stats.logic_depth > 5

    def test_fanout_statistics(self):
        netlist = Netlist("fan")
        netlist.add_input("a")
        for index in range(5):
            netlist.add_output(f"y{index}")
            netlist.add_gate(f"g{index}", "INV", ("a",), f"y{index}")
        stats = netlist_stats(netlist)
        assert stats.max_fanout == 5
        assert stats.avg_fanout < stats.max_fanout

    def test_format_readable(self):
        stats = netlist_stats(adder_128bits(width=4))
        text = stats.format()
        assert "adder_128bits" in text
        assert "logic depth" in text
        assert "DFF" in text

    def test_empty_histogram(self):
        netlist = Netlist("io_only")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g", "BUF", ("a",), "y")
        stats = netlist_stats(netlist)
        assert stats.function_histogram == {"BUF": 1}
