"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist import Netlist, read_bench, write_bench

SAMPLE = """\
# tiny sequential sample
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(q)
n1 = NAND(a, b)
y = NOT(n1)
q = DFF(n1)
"""


def write_sample(tmp_path, text=SAMPLE, name="t.bench"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestRead:
    def test_parses_sample(self, tmp_path):
        netlist = read_bench(write_sample(tmp_path))
        assert netlist.num_gates == 3
        assert netlist.primary_inputs == ["a", "b"]
        assert netlist.primary_outputs == ["y", "q"]

    def test_function_translation(self, tmp_path):
        netlist = read_bench(write_sample(tmp_path))
        functions = sorted(g.function for g in netlist.gates.values())
        assert functions == ["DFF", "INV", "NAND2"]

    def test_variable_arity(self, tmp_path):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n"
        netlist = read_bench(write_sample(tmp_path, text))
        assert netlist.gate("y_g").function == "AND3"

    def test_wide_gate_decomposed(self, tmp_path):
        inputs = [f"i{k}" for k in range(9)]
        text = "".join(f"INPUT({net})\n" for net in inputs)
        text += "OUTPUT(y)\ny = NAND(%s)\n" % ", ".join(inputs)
        netlist = read_bench(write_sample(tmp_path, text))
        assert netlist.num_gates > 1
        functions = {g.function for g in netlist.gates.values()}
        assert functions <= {"AND2", "AND3", "AND4", "NAND2", "NAND3", "NAND4"}
        netlist.validate()

    def test_comments_and_blank_lines(self, tmp_path):
        text = "# header\n\nINPUT(a)\nOUTPUT(y)\n\ny = NOT(a)  # trailing\n"
        netlist = read_bench(write_sample(tmp_path, text))
        assert netlist.num_gates == 1

    def test_unknown_gate_type(self, tmp_path):
        text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"
        with pytest.raises(ParseError):
            read_bench(write_sample(tmp_path, text))

    def test_unparseable_line(self, tmp_path):
        text = "INPUT(a)\nOUTPUT(y)\nthis is nonsense\ny = NOT(a)\n"
        with pytest.raises(ParseError) as excinfo:
            read_bench(write_sample(tmp_path, text))
        assert "3" in str(excinfo.value)

    def test_undriven_output_rejected(self, tmp_path):
        text = "INPUT(a)\nOUTPUT(y)\n"
        with pytest.raises(ParseError):
            read_bench(write_sample(tmp_path, text))

    def test_empty_gate_args(self, tmp_path):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND()\n"
        with pytest.raises(ParseError):
            read_bench(write_sample(tmp_path, text))


class TestRoundTrip:
    def test_sample_round_trip(self, tmp_path):
        original = read_bench(write_sample(tmp_path))
        out = tmp_path / "out.bench"
        write_bench(original, out)
        reparsed = read_bench(out)
        assert reparsed.num_gates == original.num_gates
        assert reparsed.primary_inputs == original.primary_inputs
        assert reparsed.primary_outputs == original.primary_outputs
        assert reparsed.function_histogram() == original.function_histogram()

    def test_generated_benchmark_round_trip(self, tmp_path):
        from repro.circuits import c3540_like
        original = c3540_like(width=6)
        out = tmp_path / "c3540.bench"
        write_bench(original, out)
        reparsed = read_bench(out)
        assert reparsed.num_gates == original.num_gates
        assert reparsed.function_histogram() == original.function_histogram()

    def test_xor_preserved(self, tmp_path):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_gate("g1", "XOR2", ("a", "b"), "y")
        out = tmp_path / "x.bench"
        write_bench(netlist, out)
        assert read_bench(out).gate("y_g").function == "XOR2"
