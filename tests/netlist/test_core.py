"""Tests for the netlist core data structures."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.netlist import Gate, Netlist


def tiny_netlist() -> Netlist:
    """a, b -> NAND -> INV -> y with a DFF on a side path."""
    netlist = Netlist("tiny")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_output("q")
    netlist.add_gate("g1", "NAND2", ("a", "b"), "n1")
    netlist.add_gate("g2", "INV", ("n1",), "y")
    netlist.add_gate("f1", "DFF", ("n1",), "q")
    return netlist


class TestConstruction:
    def test_counts(self):
        netlist = tiny_netlist()
        assert netlist.num_gates == 3
        assert len(netlist.primary_inputs) == 2
        assert len(netlist.primary_outputs) == 2

    def test_duplicate_gate_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate("g1", "INV", ("a",), "n9")

    def test_double_driver_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate("g3", "INV", ("a",), "n1")

    def test_driving_primary_input_rejected(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate("g3", "INV", ("n1",), "a")

    def test_wrong_arity_rejected(self):
        with pytest.raises(NetlistError):
            Gate("g", "NAND2", ("a",), "y")

    def test_unknown_function_rejected(self):
        with pytest.raises(NetlistError):
            Gate("g", "MAJ3", ("a", "b", "c"), "y")

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("")

    def test_fresh_names_unique(self):
        netlist = tiny_netlist()
        names = {netlist.fresh_net() for _ in range(50)}
        assert len(names) == 50


class TestQueries:
    def test_fanout_gates(self):
        netlist = tiny_netlist()
        fanout = {g.name for g in netlist.fanout_gates("n1")}
        assert fanout == {"g2", "f1"}

    def test_driver_gate(self):
        netlist = tiny_netlist()
        assert netlist.driver_gate("n1").name == "g1"
        assert netlist.driver_gate("a") is None

    def test_histogram(self):
        histogram = tiny_netlist().function_histogram()
        assert histogram == {"DFF": 1, "INV": 1, "NAND2": 1}

    def test_sequential_split(self):
        netlist = tiny_netlist()
        assert [g.name for g in netlist.sequential_gates()] == ["f1"]
        assert len(netlist.combinational_gates()) == 2

    def test_missing_gate_and_net(self):
        netlist = tiny_netlist()
        with pytest.raises(NetlistError):
            netlist.gate("nope")
        with pytest.raises(NetlistError):
            netlist.net("nope")


class TestValidation:
    def test_valid_netlist_passes(self):
        tiny_netlist().validate()

    def test_undriven_net_detected(self):
        netlist = Netlist("bad")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "NAND2", ("a", "ghost"), "y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_undriven_output_detected(self):
        netlist = Netlist("bad")
        netlist.add_input("a")
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_combinational_cycle_detected(self):
        netlist = Netlist("loop")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "NAND2", ("a", "n2"), "n1")
        netlist.add_gate("g2", "INV", ("n1",), "n2")
        netlist.add_gate("g3", "INV", ("n1",), "y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_sequential_loop_allowed(self):
        netlist = Netlist("counter")
        netlist.add_output("q")
        netlist.add_gate("g1", "INV", ("q",), "d")
        netlist.add_gate("f1", "DFF", ("d",), "q")
        netlist.validate()

    def test_dangling_nets_reported(self):
        netlist = tiny_netlist()
        netlist.add_gate("g9", "INV", ("a",), "unused")
        assert netlist.dangling_nets() == ["unused"]


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        netlist = tiny_netlist()
        order = [g.name for g in netlist.topological_order()]
        assert order.index("g1") < order.index("g2")

    def test_dff_breaks_cycles(self):
        netlist = Netlist("counter")
        netlist.add_output("q")
        netlist.add_gate("g1", "INV", ("q",), "d")
        netlist.add_gate("f1", "DFF", ("d",), "q")
        assert len(netlist.topological_order()) == 2

    def test_logic_depth_chain(self):
        netlist = Netlist("chain")
        netlist.add_input("a")
        netlist.add_output("y")
        previous = "a"
        for index in range(10):
            out = "y" if index == 9 else f"n{index}"
            netlist.add_gate(f"g{index}", "INV", (previous,), out)
            previous = out
        assert netlist.logic_depth() == 10

    @given(st.integers(min_value=1, max_value=40), st.integers(0, 2 ** 30))
    def test_random_dag_topo_order_sound(self, num_gates, seed):
        import random
        rng = random.Random(seed)
        netlist = Netlist("rand")
        netlist.add_input("a")
        nets = ["a"]
        for index in range(num_gates):
            fanins = [rng.choice(nets), rng.choice(nets)]
            out = f"n{index}"
            netlist.add_gate(f"g{index}", "NAND2", fanins, out)
            nets.append(out)
        netlist.add_output("y")
        netlist.add_gate("gout", "INV", (nets[-1],), "y")
        position = {g.name: i for i, g in
                    enumerate(netlist.topological_order())}
        for gate in netlist.gates.values():
            for net_name in gate.inputs:
                driver = netlist.nets[net_name].driver
                if driver is not None:
                    assert position[driver] < position[gate.name]


class TestCopy:
    def test_copy_is_deep(self):
        netlist = tiny_netlist()
        clone = netlist.copy()
        clone.add_gate("extra", "INV", ("a",), "n99")
        assert "extra" not in netlist.gates

    def test_copy_preserves_structure(self):
        netlist = tiny_netlist()
        clone = netlist.copy("renamed")
        assert clone.name == "renamed"
        assert set(clone.gates) == set(netlist.gates)
        assert clone.primary_inputs == netlist.primary_inputs
