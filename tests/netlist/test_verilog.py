"""Tests for the structural Verilog subset."""

import pytest

from repro.errors import ParseError
from repro.netlist import Netlist, read_verilog, write_verilog
from repro.synth import map_netlist
from repro.tech import reduced_library


def sample_netlist() -> Netlist:
    netlist = Netlist("sample")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_output("q")
    netlist.add_gate("g1", "NAND2", ("a", "b"), "n1")
    netlist.add_gate("g2", "XOR2", ("n1", "a"), "y")
    netlist.add_gate("f1", "DFF", ("n1",), "q")
    return netlist


class TestGenericRoundTrip:
    def test_round_trip_structure(self, tmp_path):
        original = sample_netlist()
        path = tmp_path / "sample.v"
        write_verilog(original, path)
        parsed = read_verilog(path)
        assert parsed.name == original.name
        assert parsed.num_gates == original.num_gates
        assert parsed.function_histogram() == original.function_histogram()
        assert parsed.primary_inputs == original.primary_inputs

    def test_benchmark_round_trip(self, tmp_path):
        from repro.circuits import c1355_like
        original = c1355_like(data_width=8, check_bits=4)
        path = tmp_path / "c.v"
        write_verilog(original, path)
        parsed = read_verilog(path)
        assert parsed.num_gates == original.num_gates


class TestMappedRoundTrip:
    def test_mapped_cells_preserved(self, tmp_path):
        library = reduced_library()
        mapped = map_netlist(sample_netlist(), library)
        path = tmp_path / "mapped.v"
        write_verilog(mapped, path)
        parsed = read_verilog(path)
        assert parsed.num_gates == mapped.num_gates
        for name, gate in mapped.gates.items():
            parsed_gate = parsed.gate(name)
            if gate.function == "DFF":
                assert parsed_gate.function == "DFF"
            else:
                assert parsed_gate.cell_name == gate.cell_name


class TestErrors:
    def _write(self, tmp_path, text):
        path = tmp_path / "bad.v"
        path.write_text(text)
        return path

    def test_no_module(self, tmp_path):
        with pytest.raises(ParseError):
            read_verilog(self._write(tmp_path, "wire w;\n"))

    def test_unknown_primitive(self, tmp_path):
        text = ("module m (a, y);\n  input a;\n  output y;\n"
                "  frobnicate g1 (y, a);\nendmodule\n")
        with pytest.raises(ParseError):
            read_verilog(self._write(tmp_path, text))

    def test_statement_before_module(self, tmp_path):
        with pytest.raises(ParseError):
            read_verilog(self._write(tmp_path, "input a;\nmodule m(a);\n"))

    def test_instance_without_output_pin(self, tmp_path):
        text = ("module m (a, y);\n  input a;\n  output y;\n"
                "  INV_X1 g1 (.A(a));\nendmodule\n")
        with pytest.raises(ParseError):
            read_verilog(self._write(tmp_path, text))

    def test_undriven_output_rejected(self, tmp_path):
        text = "module m (y);\n  output y;\nendmodule\n"
        with pytest.raises(ParseError):
            read_verilog(self._write(tmp_path, text))
