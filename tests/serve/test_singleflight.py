"""Unit tests for single-flight deduplication
(``repro.serve.singleflight``): one execution per concurrently
requested key, shared exceptions, counter bookkeeping."""

import asyncio

import pytest

from repro.serve.singleflight import SingleFlight


def run(coroutine):
    return asyncio.run(coroutine)


class TestSingleFlight:
    def test_concurrent_duplicates_execute_once(self):
        flight = SingleFlight()
        calls = []

        async def main():
            started = asyncio.Event()
            release = asyncio.Event()

            async def supplier():
                calls.append(1)
                started.set()
                await release.wait()
                return "value"

            async def leader():
                return await flight.run("key", supplier)

            async def follower():
                await started.wait()
                return await flight.run("key", supplier)

            tasks = [asyncio.create_task(leader())] + [
                asyncio.create_task(follower()) for _ in range(3)]
            await started.wait()
            assert flight.in_flight == 1
            release.set()
            return await asyncio.gather(*tasks)

        results = run(main())
        assert len(calls) == 1
        assert [value for value, _ in results] == ["value"] * 4
        coalesced_flags = sorted(flag for _, flag in results)
        assert coalesced_flags == [False, True, True, True]
        assert flight.leaders == 1 and flight.coalesced == 3
        assert flight.in_flight == 0

    def test_sequential_calls_execute_each(self):
        flight = SingleFlight()
        calls = []

        async def supplier():
            calls.append(1)
            return len(calls)

        async def main():
            first = await flight.run("key", supplier)
            second = await flight.run("key", supplier)
            return first, second

        (v1, c1), (v2, c2) = run(main())
        assert (v1, v2) == (1, 2)
        assert (c1, c2) == (False, False)
        assert flight.leaders == 2 and flight.coalesced == 0

    def test_leader_exception_shared_with_followers(self):
        flight = SingleFlight()

        async def main():
            started = asyncio.Event()

            async def supplier():
                started.set()
                await asyncio.sleep(0.01)
                raise ValueError("boom")

            async def follower():
                await started.wait()
                with pytest.raises(ValueError):
                    await flight.run("key", supplier)
                return "follower-saw-it"

            leader = asyncio.create_task(flight.run("key", supplier))
            trailer = asyncio.create_task(follower())
            with pytest.raises(ValueError):
                await leader
            return await trailer

        assert run(main()) == "follower-saw-it"
        assert flight.in_flight == 0

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        calls = []

        async def main():
            async def supplier():
                calls.append(1)
                return "v"

            await asyncio.gather(flight.run("a", supplier),
                                 flight.run("b", supplier))

        run(main())
        assert len(calls) == 2
        assert flight.coalesced == 0

    def test_snapshot_shape(self):
        flight = SingleFlight()
        assert flight.snapshot() == {"leaders": 0, "coalesced": 0,
                                     "in_flight": 0}
