"""Unit tests for the serving layer's HTTP framing
(``repro.serve.http``): request parsing, size ceilings, malformed
input and response rendering."""

import asyncio

import pytest

from repro.serve.http import HttpError, read_request, response_bytes


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)
    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.target == "/stats"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_content_length_body(self):
        request = parse(b"POST /run HTTP/1.1\r\n"
                        b"Content-Length: 4\r\n\r\nabcd")
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_query_string_stripped_by_path(self):
        request = parse(b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.target == "/stats?verbose=1"
        assert request.path == "/stats"

    def test_closed_connection_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
                  max_bytes=100)
        assert excinfo.value.status == 413

    def test_oversized_headers_are_413(self):
        raw = (b"GET / HTTP/1.1\r\n"
               + b"X-Pad: " + b"a" * 200 + b"\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_bytes=100)
        assert excinfo.value.status == 413


class TestResponseBytes:
    def test_shape_and_content_length(self):
        raw = response_bytes(200, '{"ok":true}')
        text = raw.decode()
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 11\r\n" in text
        assert "Connection: close\r\n" in text
        assert text.endswith('{"ok":true}')

    def test_unknown_status_still_renders(self):
        assert response_bytes(299, "x").startswith(b"HTTP/1.1 299 ")
