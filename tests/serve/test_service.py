"""End-to-end tests for the allocation service (``repro.serve``).

Every test drives the real socket path through
:class:`repro.serve.client.ServerThread`; spec *execution* is
monkeypatched to a counting stub so the contracts under test —
single-flight collapse, cache-hit accounting, graceful drain —
are observable without paying for real allocations.

The acceptance scenario lives in
:meth:`TestSingleFlightService.test_concurrent_identical_specs_execute_once`:
N concurrent identical specs produce exactly one ``execute_spec``
call and N identical responses.
"""

import threading
import time

import pytest

from repro.api import RunSpec
from repro.errors import ServeError
from repro.flow.cache import ArtifactCache
from repro.serve import (ServerThread, fetch_stats, request_shutdown,
                         submit_spec)

SPEC = RunSpec(kind="allocate", design="c1355", beta=0.05)


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace ``repro.api.execute_spec`` with a fast counting stub.

    Returns a namespace with ``calls`` (one entry per execution),
    ``started`` (set when an execution begins) and ``release`` (the
    stub blocks on it when ``slow`` is enabled) so tests can hold an
    execution open while concurrent requests pile up.
    """
    class Stub:
        def __init__(self):
            self.calls = []
            self.started = threading.Event()
            self.release = threading.Event()
            self.slow = False
            self.lock = threading.Lock()

        def __call__(self, spec, cache=None):
            with self.lock:
                self.calls.append(spec.spec_hash())
            self.started.set()
            if self.slow:
                assert self.release.wait(timeout=30.0)
            return {"value": spec.beta}

    stub = Stub()
    monkeypatch.setattr("repro.api.execute_spec", stub)
    yield stub
    stub.release.set()  # never leave a bridge thread blocked


class TestServiceEndpoints:
    def test_miss_then_hit_roundtrip(self, stub_execute):
        with ServerThread(cache=ArtifactCache()) as srv:
            first = submit_spec(srv.url, SPEC)
            second = submit_spec(srv.url, SPEC)
            stats = fetch_stats(srv.url)
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert first.payload == second.payload == {"value": 0.05}
        assert first.spec == SPEC
        assert len(stub_execute.calls) == 1
        run_stats = stats["endpoints"]["run"]
        assert run_stats["requests"] == 2
        assert run_stats["cache_misses"] == 1
        assert run_stats["cache_hits"] == 1
        assert run_stats["coalesced"] == 0
        assert run_stats["errors"] == 0
        assert run_stats["latency"]["count"] == 2

    def test_stats_document_shape(self, stub_execute):
        with ServerThread(cache=ArtifactCache()) as srv:
            stats = fetch_stats(srv.url)
        assert stats["schema_version"] == 1
        assert stats["backend"] == {"name": "inline", "workers": 1}
        assert stats["single_flight"] == {"leaders": 0, "coalesced": 0,
                                          "in_flight": 0}
        assert stats["draining"] is False
        assert "by_kind" in stats["cache"]

    def test_bad_spec_is_400(self, stub_execute):
        from repro.serve.client import _request
        with ServerThread(cache=ArtifactCache()) as srv:
            with pytest.raises(ServeError, match="HTTP 400"):
                _request(f"{srv.url}/run", data=b"this is not a spec",
                         method="POST")
            stats = fetch_stats(srv.url)
        assert not stub_execute.calls
        assert stats["endpoints"]["run"]["errors"] == 1

    def test_unknown_endpoint_is_404_and_wrong_method_is_405(
            self, stub_execute):
        from repro.serve.client import _request
        with ServerThread(cache=ArtifactCache()) as srv:
            with pytest.raises(ServeError, match="HTTP 404"):
                _request(f"{srv.url}/nope")
            with pytest.raises(ServeError, match="HTTP 405"):
                _request(f"{srv.url}/run")  # GET on a POST endpoint

    def test_healthz_reports_liveness(self, stub_execute):
        import json

        from repro.serve.client import _request
        with ServerThread(cache=ArtifactCache()) as srv:
            body = json.loads(_request(f"{srv.url}/healthz"))
        assert body == {"status": "ok", "draining": False}


class TestSingleFlightService:
    def test_concurrent_identical_specs_execute_once(self, stub_execute):
        """N concurrent identical specs -> one execute_spec call and
        N identical responses (the issue's acceptance scenario)."""
        total = 4
        stub_execute.slow = True
        results = []
        results_lock = threading.Lock()

        def client():
            result = submit_spec(srv.url, SPEC)
            with results_lock:
                results.append(result)

        with ServerThread(cache=ArtifactCache()) as srv:
            leader = threading.Thread(target=client)
            leader.start()
            assert stub_execute.started.wait(timeout=30.0)
            followers = [threading.Thread(target=client)
                         for _ in range(total - 1)]
            for thread in followers:
                thread.start()
            deadline = time.monotonic() + 30.0
            while (srv.server.single_flight.coalesced < total - 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert srv.server.single_flight.coalesced == total - 1
            stub_execute.release.set()
            for thread in [leader, *followers]:
                thread.join(timeout=30.0)
            stats = fetch_stats(srv.url)

        assert len(stub_execute.calls) == 1
        assert len(results) == total
        payloads = [result.to_json() for result in results]
        leader_json = min(payloads)  # all identical, order irrelevant
        assert all(payload == leader_json for payload in payloads)
        run_stats = stats["endpoints"]["run"]
        assert run_stats["requests"] == total
        assert run_stats["cache_misses"] == 1
        assert run_stats["coalesced"] == total - 1
        assert run_stats["cache_hits"] == 0
        assert stats["single_flight"]["leaders"] == 1
        assert stats["single_flight"]["coalesced"] == total - 1
        assert stats["single_flight"]["in_flight"] == 0

    def test_distinct_specs_do_not_coalesce(self, stub_execute):
        other = RunSpec(kind="allocate", design="c1355", beta=0.10)
        with ServerThread(cache=ArtifactCache()) as srv:
            submit_spec(srv.url, SPEC)
            submit_spec(srv.url, other)
            stats = fetch_stats(srv.url)
        assert len(stub_execute.calls) == 2
        assert stats["single_flight"]["coalesced"] == 0
        assert stats["endpoints"]["run"]["cache_misses"] == 2


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_work(self, stub_execute):
        """POST /shutdown: in-flight requests complete and deliver
        their responses; new connections are refused; the server
        thread exits."""
        stub_execute.slow = True
        outcome = {}

        srv = ServerThread(cache=ArtifactCache()).start()
        try:
            def client():
                outcome["result"] = submit_spec(srv.url, SPEC)

            in_flight = threading.Thread(target=client)
            in_flight.start()
            assert stub_execute.started.wait(timeout=30.0)

            reply = request_shutdown(srv.url)
            assert reply == {"status": "draining"}

            # the listener closes once drain begins
            deadline = time.monotonic() + 30.0
            refused = False
            while time.monotonic() < deadline and not refused:
                try:
                    fetch_stats(srv.url, timeout_s=1.0)
                    time.sleep(0.01)
                except ServeError:
                    refused = True
            assert refused

            stub_execute.release.set()
            in_flight.join(timeout=30.0)
            assert not in_flight.is_alive()
            assert outcome["result"].cache_hit is False
            assert outcome["result"].payload == {"value": 0.05}

            srv._thread.join(timeout=30.0)
            assert not srv._thread.is_alive()
        finally:
            stub_execute.release.set()
            srv.stop()

    def test_stop_is_idempotent_and_joins(self, stub_execute):
        srv = ServerThread(cache=ArtifactCache()).start()
        srv.stop()
        srv.stop()
        assert not srv._thread.is_alive()
