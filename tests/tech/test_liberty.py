"""Round-trip and error tests for the Liberty-subset reader/writer."""

import pytest

from repro.errors import ParseError
from repro.tech import (Technology, characterize_library, read_liberty,
                        reduced_library, write_liberty)

TECH = Technology()


@pytest.fixture(scope="module")
def clib():
    return characterize_library(reduced_library(TECH))


class TestRoundTrip:
    def test_cells_preserved(self, clib, tmp_path):
        path = tmp_path / "repro45.lib"
        write_liberty(clib, path)
        loaded = read_liberty(path, TECH)
        assert loaded.library.cell_names == clib.library.cell_names

    def test_grid_preserved(self, clib, tmp_path):
        path = tmp_path / "repro45.lib"
        write_liberty(clib, path)
        loaded = read_liberty(path, TECH)
        assert loaded.vbs_levels == pytest.approx(clib.vbs_levels)
        assert loaded.delay_scales == pytest.approx(clib.delay_scales)

    def test_cell_attributes_preserved(self, clib, tmp_path):
        path = tmp_path / "repro45.lib"
        write_liberty(clib, path)
        loaded = read_liberty(path, TECH)
        for name in clib.library.cell_names:
            original = clib.cell(name)
            parsed = loaded.cell(name)
            assert parsed.function == original.function
            assert parsed.drive == original.drive
            assert parsed.width_sites == original.width_sites
            assert parsed.input_cap_ff == pytest.approx(original.input_cap_ff)
            assert parsed.is_sequential == original.is_sequential

    def test_leakage_tables_preserved(self, clib, tmp_path):
        path = tmp_path / "repro45.lib"
        write_liberty(clib, path)
        loaded = read_liberty(path, TECH)
        for name in clib.library.cell_names:
            assert loaded.characterization(name).leakage_nw == pytest.approx(
                clib.characterization(name).leakage_nw)


class TestErrors:
    def _write(self, tmp_path, text):
        path = tmp_path / "bad.lib"
        path.write_text(text)
        return path

    def test_missing_header(self, tmp_path):
        path = self._write(tmp_path, "cell (INV_X1) {\n}\n")
        with pytest.raises(ParseError):
            read_liberty(path, TECH)

    def test_unrecognised_line(self, tmp_path):
        path = self._write(
            tmp_path, "library (x) {\n  what is this\n}\n")
        with pytest.raises(ParseError):
            read_liberty(path, TECH)

    def test_missing_required_header_key(self, tmp_path):
        path = self._write(tmp_path, "library (x) {\n  voltage: 1.0;\n}\n")
        with pytest.raises(ParseError):
            read_liberty(path, TECH)

    def test_voltage_mismatch(self, clib, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(clib, path)
        with pytest.raises(ParseError):
            read_liberty(path, Technology(vdd=1.2, vth0_n=0.45, vth0_p=0.45))

    def test_cell_missing_attribute(self, tmp_path):
        text = (
            "library (x) {\n"
            "  voltage: 1.0;\n"
            "  vbs_levels: 0.0 0.05;\n"
            "  delay_scales: 1.0 0.99;\n"
            "  cell (INV_X1) {\n"
            "    function: INV;\n"
            "  }\n"
            "}\n")
        with pytest.raises(ParseError) as excinfo:
            read_liberty(self._write(tmp_path, text), TECH)
        assert "INV_X1" in str(excinfo.value)

    def test_leakage_vector_length_mismatch(self, tmp_path):
        text = (
            "library (x) {\n"
            "  voltage: 1.0;\n"
            "  vbs_levels: 0.0 0.05;\n"
            "  delay_scales: 1.0 0.99;\n"
            "  cell (INV_X1) {\n"
            "    function: INV;\n    drive: 1;\n    inputs: 1;\n"
            "    width_sites: 3;\n    input_cap_ff: 0.9;\n"
            "    intrinsic_delay_ps: 8.0;\n    load_slope_ps_per_ff: 10.0;\n"
            "    device_width_um: 1.0;\n    sequential: 0;\n"
            "    setup_ps: 0.0;\n"
            "    leakage_nw: 0.17;\n"
            "  }\n"
            "}\n")
        with pytest.raises(ParseError):
            read_liberty(self._write(tmp_path, text), TECH)

    def test_parse_error_reports_location(self, tmp_path):
        path = self._write(tmp_path, "library (x) {\n  ???\n}\n")
        with pytest.raises(ParseError) as excinfo:
            read_liberty(path, TECH)
        assert "2" in str(excinfo.value)
