"""Tests for body-bias characterization tables."""

import pytest

from repro.errors import TechnologyError
from repro.tech import Technology, characterize_library, reduced_library
from repro.tech.characterize import CellCharacterization

TECH = Technology()


@pytest.fixture(scope="module")
def clib():
    return characterize_library(reduced_library(TECH))


class TestGrid:
    def test_eleven_levels(self, clib):
        """Paper: P = 11 voltages, 0..0.5 V at 50 mV resolution."""
        assert clib.num_levels == 11
        assert clib.vbs_levels[0] == 0.0
        assert clib.vbs_levels[-1] == pytest.approx(0.5)

    def test_level_lookup(self, clib):
        assert clib.level_for_vbs(0.0) == 0
        assert clib.level_for_vbs(0.25) == 5
        assert clib.level_for_vbs(0.5) == 10

    def test_off_grid_lookup_rejected(self, clib):
        with pytest.raises(TechnologyError):
            clib.level_for_vbs(0.123)

    def test_bad_level_rejected(self, clib):
        with pytest.raises(TechnologyError):
            clib.delay_scale(11)
        with pytest.raises(TechnologyError):
            clib.leakage_nw("INV_X1", -1)


class TestDelayScales:
    def test_no_bias_is_unity(self, clib):
        assert clib.delay_scale(0) == pytest.approx(1.0)

    def test_monotone_decreasing(self, clib):
        scales = clib.delay_scales
        assert all(b < a for a, b in zip(scales, scales[1:]))

    def test_speedup_complements_scale(self, clib):
        for level in range(clib.num_levels):
            assert clib.speedup(level) == pytest.approx(
                1.0 - clib.delay_scale(level))

    def test_max_speedup_supports_beta_10pct(self, clib):
        assert clib.speedup(clib.num_levels - 1) > 1 - 1 / 1.10


class TestLeakageTables:
    def test_leakage_monotone_in_bias(self, clib):
        for name in clib.library.cell_names:
            series = clib.characterization(name).leakage_nw
            assert all(b > a for a, b in zip(series, series[1:]))

    def test_zero_bias_matches_library(self, clib):
        for name in clib.library.cell_names:
            cell = clib.cell(name)
            assert clib.leakage_nw(name, 0) == pytest.approx(
                cell.leakage_nw, rel=1e-6)

    def test_leakage_growth_is_exponential_like(self, clib):
        """Ratio between consecutive levels should be roughly constant."""
        series = clib.characterization("INV_X1").leakage_nw
        ratios = [b / a for a, b in zip(series, series[1:])]
        assert max(ratios) / min(ratios) < 1.05

    def test_unknown_cell_rejected(self, clib):
        with pytest.raises(TechnologyError):
            clib.leakage_nw("FOO_X1", 0)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TechnologyError):
            CellCharacterization("X", (0.0, 0.1), (1.0,), (0.5, 0.6))

    def test_missing_cell_characterization_rejected(self, clib):
        from repro.tech.characterize import CharacterizedLibrary
        chars = {name: clib.characterization(name)
                 for name in clib.library.cell_names[:-1]}
        with pytest.raises(TechnologyError):
            CharacterizedLibrary(clib.library, chars)
