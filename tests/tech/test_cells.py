"""Tests for the reduced standard-cell library."""

import pytest

from repro.errors import TechnologyError
from repro.tech import CellLibrary, Technology, reduced_library

TECH = Technology()


@pytest.fixture(scope="module")
def library():
    return reduced_library(TECH)


class TestComposition:
    def test_paper_reduced_cell_set(self, library):
        """Paper: inverters, and, or, nor, nand and D-flip-flops."""
        families = {cell.function.rstrip("234") for cell in library}
        assert families == {"INV", "AND", "OR", "NOR", "NAND", "DFF"}

    def test_no_xor_cell(self, library):
        assert all("XOR" not in cell.function for cell in library)

    def test_multiple_drive_strengths(self, library):
        inverters = library.drives_for("INV")
        assert [cell.drive for cell in inverters] == [1, 2, 4]

    def test_dff_is_sequential_with_setup(self, library):
        dff = library.cell("DFF_X1")
        assert dff.is_sequential
        assert dff.setup_ps > 0

    def test_combinational_cells_have_no_setup(self, library):
        for cell in library:
            if not cell.is_sequential:
                assert cell.setup_ps == 0.0


class TestGeometry:
    def test_widths_positive(self, library):
        for cell in library:
            assert cell.width_sites > 0
            assert cell.width_um(TECH) == pytest.approx(
                cell.width_sites * TECH.site_width_um)

    def test_higher_drive_wider(self, library):
        inv1 = library.cell("INV_X1")
        inv4 = library.cell("INV_X4")
        assert inv4.width_sites > inv1.width_sites

    def test_dff_is_widest(self, library):
        dff = library.cell("DFF_X1")
        for cell in library:
            if not cell.is_sequential and cell.drive == 1:
                assert dff.width_sites > cell.width_sites

    def test_area_consistent(self, library):
        inv = library.cell("INV_X1")
        assert inv.area_um2(TECH) == pytest.approx(
            inv.width_um(TECH) * TECH.row_height_um)


class TestDelayModel:
    def test_delay_increases_with_load(self, library):
        inv = library.cell("INV_X1")
        assert inv.delay_ps(4.0) > inv.delay_ps(1.0)

    def test_higher_drive_less_load_sensitive(self, library):
        inv1 = library.cell("INV_X1")
        inv4 = library.cell("INV_X4")
        assert inv4.load_slope_ps_per_ff < inv1.load_slope_ps_per_ff

    def test_bias_scale_reduces_delay(self, library):
        inv = library.cell("INV_X1")
        assert inv.delay_ps(2.0, delay_scale=0.9) == pytest.approx(
            0.9 * inv.delay_ps(2.0))

    def test_negative_load_rejected(self, library):
        with pytest.raises(TechnologyError):
            library.cell("INV_X1").delay_ps(-1.0)


class TestLeakage:
    def test_all_cells_leak(self, library):
        for cell in library:
            assert cell.leakage_nw > 0

    def test_stacked_gates_leak_less_per_input(self, library):
        nand2 = library.cell("NAND2_X1")
        inv = library.cell("INV_X1")
        assert nand2.leakage_nw < 2 * inv.leakage_nw

    def test_buffered_cells_leak_more_than_single_stage(self, library):
        assert (library.cell("AND2_X1").leakage_nw
                > library.cell("NAND2_X1").leakage_nw)

    def test_drive_scales_leakage(self, library):
        inv1 = library.cell("INV_X1")
        inv2 = library.cell("INV_X2")
        assert inv2.leakage_nw == pytest.approx(2 * inv1.leakage_nw, rel=1e-6)


class TestLibraryContainer:
    def test_lookup_unknown_cell(self, library):
        with pytest.raises(TechnologyError):
            library.cell("XYZZY")

    def test_unknown_function(self, library):
        with pytest.raises(TechnologyError):
            library.drives_for("XOR9")

    def test_smallest_returns_x1(self, library):
        assert library.smallest("INV").drive == 1

    def test_contains(self, library):
        assert "INV_X1" in library
        assert "MUX21_X1" not in library

    def test_empty_library_rejected(self):
        with pytest.raises(TechnologyError):
            CellLibrary(TECH, [])

    def test_duplicate_names_rejected(self, library):
        inv = library.cell("INV_X1")
        with pytest.raises(TechnologyError):
            CellLibrary(TECH, [inv, inv])
