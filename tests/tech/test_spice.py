"""Tests for the inverter measurement bench (Figure 1 reproduction)."""

import pytest

from repro.tech import InverterBench, Technology, sweep_inverter, usable_bias_limit


class TestSweep:
    def test_sweep_covers_paper_range(self):
        points = sweep_inverter()
        assert points[0].vbs == 0.0
        assert points[-1].vbs == pytest.approx(0.95)
        assert len(points) == 20

    def test_reference_point_normalised(self):
        points = sweep_inverter()
        assert points[0].speedup_fraction == pytest.approx(0.0)
        assert points[0].leakage_ratio == pytest.approx(1.0)

    def test_figure1_leakage_anchor(self):
        """Paper: 12.74x leakage increase at vbs = 0.95 V."""
        points = sweep_inverter()
        assert points[-1].leakage_ratio == pytest.approx(12.74, rel=0.02)

    def test_figure1_speedup_anchor(self):
        """Paper: up to 21% speed-up at vbs = 0.95 V."""
        points = sweep_inverter()
        assert points[-1].speedup_fraction == pytest.approx(0.21, abs=0.005)

    def test_delay_monotone_decreasing(self):
        points = sweep_inverter()
        delays = [p.delay_ps for p in points]
        assert delays == sorted(delays, reverse=True)

    def test_leakage_monotone_increasing(self):
        points = sweep_inverter()
        leaks = [p.leakage_nw for p in points]
        assert leaks == sorted(leaks)

    def test_leakage_superexponential_tail(self):
        """Junction current makes the last decade grow faster than the first."""
        points = sweep_inverter()
        first_ratio = points[4].leakage_nw / points[0].leakage_nw
        last_ratio = points[-1].leakage_nw / points[-5].leakage_nw
        assert last_ratio > first_ratio

    def test_junction_share_grows(self):
        points = sweep_inverter()
        assert points[-1].junction_fraction > 100 * points[10].junction_fraction


class TestUsableLimit:
    def test_limit_is_half_volt(self):
        """Paper Sec. 3.2: junction current clamps usable FBB to 0..0.5 V."""
        assert usable_bias_limit() == pytest.approx(0.5)

    def test_stricter_threshold_lowers_limit(self):
        strict = usable_bias_limit(junction_share_limit=1e-6)
        assert strict <= usable_bias_limit()


class TestBench:
    def test_delay_positive(self):
        bench = InverterBench()
        assert bench.propagation_delay_ps(0.0) > 0

    def test_larger_load_slower(self):
        slow = InverterBench(load_ff=5.0)
        fast = InverterBench(load_ff=1.0)
        assert slow.propagation_delay_ps(0.0) > fast.propagation_delay_ps(0.0)

    def test_junction_power_zero_unbiased(self):
        assert InverterBench().junction_power_nw(0.0) == 0.0

    def test_custom_technology(self):
        tech = Technology(vdd=1.1, vth0_n=0.4, vth0_p=0.4)
        bench = InverterBench(tech=tech)
        assert bench.propagation_delay_ps(0.0) > 0
