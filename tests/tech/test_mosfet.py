"""Device-model tests, including the Figure 1 calibration anchors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.tech import Mosfet, Technology, delay_scale, required_vbs, speedup
from repro.tech.mosfet import subthreshold_leakage_scale

TECH = Technology()


class TestThreshold:
    def test_vth_decreases_with_forward_bias(self):
        nmos = Mosfet("nmos", 0.4)
        assert nmos.vth(0.3) < nmos.vth(0.0)

    def test_vth_linear_in_vbs(self):
        nmos = Mosfet("nmos", 0.4)
        drop1 = nmos.vth(0.0) - nmos.vth(0.1)
        drop2 = nmos.vth(0.1) - nmos.vth(0.2)
        assert drop1 == pytest.approx(drop2)

    def test_vth_floor(self):
        tech = Technology(body_effect_gamma=0.45)
        device = Mosfet("nmos", 0.4, tech=tech)
        assert device.vth(0.95) >= 0.05

    def test_reverse_bias_rejected(self):
        with pytest.raises(TechnologyError):
            Mosfet("nmos", 0.4).vth(-0.1)

    def test_bad_polarity_rejected(self):
        with pytest.raises(TechnologyError):
            Mosfet("cmos", 0.4)

    def test_bad_width_rejected(self):
        with pytest.raises(TechnologyError):
            Mosfet("nmos", -0.4)


class TestCurrents:
    def test_on_current_increases_with_bias(self):
        nmos = Mosfet("nmos", 0.4)
        assert nmos.on_current_ua(0.3) > nmos.on_current_ua(0.0)

    def test_off_current_increases_with_bias(self):
        nmos = Mosfet("nmos", 0.4)
        assert nmos.off_current_na(0.3) > nmos.off_current_na(0.0)

    def test_pmos_weaker_than_nmos(self):
        nmos = Mosfet("nmos", 0.4)
        pmos = Mosfet("pmos", 0.4)
        assert pmos.on_current_ua(0.0) < nmos.on_current_ua(0.0)

    def test_currents_scale_with_width(self):
        narrow = Mosfet("nmos", 0.4)
        wide = Mosfet("nmos", 0.8)
        ratio = wide.on_current_ua(0.0) / narrow.on_current_ua(0.0)
        assert ratio == pytest.approx(2.0)

    def test_stack_factor_reduces_leakage(self):
        nmos = Mosfet("nmos", 0.4)
        stacked = nmos.subthreshold_current_na(0.0, stack_factor=0.4)
        single = nmos.subthreshold_current_na(0.0)
        assert stacked == pytest.approx(0.4 * single)

    def test_junction_current_zero_without_bias(self):
        assert Mosfet("nmos", 0.4).junction_current_na(0.0) == 0.0

    def test_junction_current_negligible_at_half_volt(self):
        nmos = Mosfet("nmos", 0.4)
        junction = nmos.junction_current_na(0.5)
        subthreshold = nmos.subthreshold_current_na(0.5)
        assert junction < 0.01 * subthreshold

    def test_junction_current_significant_near_vdd(self):
        nmos = Mosfet("nmos", 0.4)
        junction = nmos.junction_current_na(0.95)
        subthreshold = nmos.subthreshold_current_na(0.95)
        assert junction > 0.05 * subthreshold


class TestScaleFactors:
    def test_delay_scale_unity_at_zero(self):
        assert delay_scale(TECH, 0.0) == pytest.approx(1.0)

    def test_leakage_scale_unity_at_zero(self):
        assert subthreshold_leakage_scale(TECH, 0.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=0.9, allow_nan=False))
    def test_delay_scale_monotone_decreasing(self, vbs):
        assert delay_scale(TECH, vbs + 0.05) < delay_scale(TECH, vbs) + 1e-12

    @given(st.floats(min_value=0.0, max_value=0.9, allow_nan=False))
    def test_leakage_scale_monotone_increasing(self, vbs):
        low = subthreshold_leakage_scale(TECH, vbs)
        high = subthreshold_leakage_scale(TECH, vbs + 0.05)
        assert high > low

    def test_speedup_nearly_linear(self):
        """Fig. 1 shows a linear speed-up; check second differences small."""
        points = [speedup(TECH, 0.1 * i) for i in range(10)]
        diffs = [b - a for a, b in zip(points, points[1:])]
        for first, second in zip(diffs, diffs[1:]):
            assert abs(second - first) < 0.2 * abs(first)


class TestFigure1Anchors:
    """The two quantitative anchors the paper reports for Fig. 1."""

    def test_speedup_21_percent_at_095(self):
        assert speedup(TECH, 0.95) == pytest.approx(0.21, abs=0.005)

    def test_max_usable_speedup_exceeds_10pct_compensation(self):
        # beta = 10% requires 1 - 1/1.1 = 9.09% delay reduction.
        assert speedup(TECH, TECH.vbs_max) > 0.0909


class TestRequiredVbs:
    def test_zero_target_needs_zero(self):
        assert required_vbs(TECH, 0.0) == 0.0

    def test_round_trip_with_speedup(self):
        for target in (0.01, 0.05, 0.09, 0.12):
            vbs = required_vbs(TECH, target)
            assert speedup(TECH, vbs) == pytest.approx(target, rel=1e-6)

    def test_unreachable_target_raises(self):
        with pytest.raises(TechnologyError):
            required_vbs(TECH, 0.20)

    def test_impossible_target_raises(self):
        with pytest.raises(TechnologyError):
            required_vbs(TECH, 1.0)

    @given(st.floats(min_value=0.0, max_value=0.11, allow_nan=False))
    def test_required_vbs_monotone(self, target):
        assert required_vbs(TECH, target + 0.005) > required_vbs(TECH, target) - 1e-12
