"""Tests for the technology node description."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.tech import Technology


class TestBiasGrid:
    def test_default_grid_matches_paper(self):
        tech = Technology()
        assert tech.num_bias_levels == 11
        levels = tech.bias_levels()
        assert levels[0] == 0.0
        assert levels[-1] == pytest.approx(0.5)
        assert len(levels) == 11

    def test_grid_is_uniform_50mv(self):
        tech = Technology()
        levels = tech.bias_levels()
        steps = [b - a for a, b in zip(levels, levels[1:])]
        assert all(step == pytest.approx(0.05) for step in steps)

    def test_custom_resolution(self):
        tech = Technology(vbs_resolution=0.025)
        assert tech.num_bias_levels == 21

    def test_resolution_must_divide_range(self):
        with pytest.raises(TechnologyError):
            Technology(vbs_resolution=0.03)


class TestQuantize:
    def test_zero_stays_zero(self):
        assert Technology().quantize_vbs(0.0) == 0.0

    def test_negative_clamps_to_zero(self):
        assert Technology().quantize_vbs(-0.3) == 0.0

    def test_rounds_up_to_guarantee_speedup(self):
        tech = Technology()
        assert tech.quantize_vbs(0.11) == pytest.approx(0.15)
        assert tech.quantize_vbs(0.151) == pytest.approx(0.20)

    def test_exact_grid_value_unchanged(self):
        tech = Technology()
        for level in tech.bias_levels():
            assert tech.quantize_vbs(level) == pytest.approx(level)

    def test_clamps_to_vbs_max(self):
        tech = Technology()
        assert tech.quantize_vbs(0.9) == pytest.approx(0.5)

    @given(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    def test_quantized_value_on_grid_and_not_smaller(self, vbs):
        tech = Technology()
        snapped = tech.quantize_vbs(vbs)
        assert snapped in tech.bias_levels()
        assert snapped >= vbs - 1e-9

    @given(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    def test_quantize_is_idempotent(self, vbs):
        tech = Technology()
        once = tech.quantize_vbs(vbs)
        assert tech.quantize_vbs(once) == pytest.approx(once)


class TestBodyVoltageConvention:
    def test_nmos_body_equals_vbs(self):
        tech = Technology()
        assert tech.nmos_body_voltage(0.3) == pytest.approx(0.3)

    def test_pmos_body_is_vdd_minus_vbs(self):
        tech = Technology()
        assert tech.pmos_body_voltage(0.3) == pytest.approx(tech.vdd - 0.3)

    def test_out_of_range_rejected(self):
        tech = Technology()
        with pytest.raises(TechnologyError):
            tech.nmos_body_voltage(1.5)


class TestValidation:
    def test_negative_vdd_rejected(self):
        with pytest.raises(TechnologyError):
            Technology(vdd=-1.0)

    def test_vth_above_vdd_rejected(self):
        with pytest.raises(TechnologyError):
            Technology(vth0_n=1.5)

    def test_bias_rules_max_clusters(self):
        tech = Technology()
        assert tech.bias_rules.max_clusters() == 3
