"""Tests for the epoch-based NBTI drift process (repro/variation/drift.py)
and the year-denominated NbtiModel helpers it builds on."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import ReproError
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import Technology, reduced_library
from repro.variation import (DriftModel, NbtiModel, epoch_increment_v,
                             row_betas_epochs, row_dvth_epochs)
from repro.variation.drift import row_positions_um

LIBRARY = reduced_library()
TECH = Technology()


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=8, check_bits=4), LIBRARY)
    return place_design(mapped, LIBRARY)


class TestNbtiYears:
    def test_dvth_after_years_matches_power_law(self):
        model = NbtiModel()
        assert model.dvth_after_years(1.0) == pytest.approx(
            model.prefactor_v, rel=1e-9)
        assert model.dvth_after_years(4.0) == pytest.approx(
            model.prefactor_v * 4 ** model.exponent, rel=1e-9)

    def test_dvth_after_years_monotone(self):
        model = NbtiModel()
        shifts = [model.dvth_after_years(y) for y in (0.5, 1, 2, 5, 10)]
        assert all(b > a for a, b in zip(shifts, shifts[1:]))

    def test_beta_after_years_monotone(self):
        model = NbtiModel()
        betas = [model.beta_after_years(TECH, y) for y in (1, 3, 10)]
        assert betas[0] < betas[1] < betas[2]
        assert betas[0] > 0

    def test_years_to_beta_inverts_beta_after_years(self):
        model = NbtiModel()
        target = 0.04
        years = model.years_to_beta(TECH, target)
        assert model.beta_after_years(TECH, years) >= target
        # One resolution step earlier the target was not yet reached.
        if years > 0.05:
            assert model.beta_after_years(TECH, years - 0.05) < target

    def test_years_to_beta_nonpositive_target_is_zero(self):
        model = NbtiModel()
        assert model.years_to_beta(TECH, 0.0) == 0.0
        assert model.years_to_beta(TECH, -0.1) == 0.0

    def test_years_to_beta_unreachable_raises(self):
        with pytest.raises(ReproError):
            NbtiModel().years_to_beta(TECH, 10.0)

    def test_negative_years_rejected(self):
        with pytest.raises(ReproError):
            NbtiModel().dvth_after_years(-1.0)
        with pytest.raises(ReproError):
            NbtiModel().beta_after_years(TECH, -0.5)

    def test_validation(self):
        with pytest.raises(ReproError):
            NbtiModel(prefactor_v=-0.01)
        with pytest.raises(ReproError):
            NbtiModel(exponent=0.0)
        with pytest.raises(ReproError):
            NbtiModel(reference_s=0.0)


class TestDriftModel:
    def test_validation(self):
        with pytest.raises(ReproError):
            DriftModel(epoch_years=0.0)
        with pytest.raises(ReproError):
            DriftModel(activity_sigma_v=-0.001)
        with pytest.raises(ReproError):
            DriftModel(grid_levels=0)  # via ProcessModel validation

    def test_mean_follows_nbti_power_law(self):
        model = DriftModel(epoch_years=2.0)
        for epoch in range(4):
            assert model.mean_dvth_v(epoch) == pytest.approx(
                model.nbti.dvth_after_years((epoch + 1) * 2.0), rel=1e-12)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ReproError):
            DriftModel().mean_dvth_v(-1)


class TestEpochIncrements:
    def test_seed_determinism(self, placed):
        model = DriftModel()
        first = row_dvth_epochs(placed, model, seed=3, num_epochs=4)
        second = row_dvth_epochs(placed, model, seed=3, num_epochs=4)
        other = row_dvth_epochs(placed, model, seed=4, num_epochs=4)
        np.testing.assert_array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_epoch_composition_order_independent(self, placed):
        """Epoch e's field must not depend on how many epochs are
        materialised — the child-generator contract."""
        model = DriftModel()
        short = row_dvth_epochs(placed, model, seed=0, num_epochs=3)
        long = row_dvth_epochs(placed, model, seed=0, num_epochs=8)
        np.testing.assert_array_equal(short, long[:3])

    def test_zero_sigma_is_pure_mean(self, placed):
        model = DriftModel(activity_sigma_v=0.0)
        increments = epoch_increment_v(placed, model, seed=0, epoch=2)
        np.testing.assert_array_equal(increments,
                                      np.zeros(placed.num_rows))
        dvth = row_dvth_epochs(placed, model, seed=0, num_epochs=3)
        for epoch in range(3):
            np.testing.assert_allclose(dvth[epoch],
                                       model.mean_dvth_v(epoch))

    def test_long_correlation_limits_row_spread(self, placed):
        """A die-spanning correlation length must yield near-coherent
        increments across rows; a short one must not."""
        spreads = {}
        for fraction in (1.0, 0.02):
            model = DriftModel(activity_sigma_v=0.01,
                               correlation_length_fraction=fraction,
                               independent_fraction=0.0)
            spread = [np.std(epoch_increment_v(placed, model, seed, 0))
                      for seed in range(10)]
            spreads[fraction] = float(np.mean(spread))
        assert spreads[1.0] < 0.55 * spreads[0.02]

    def test_shifts_clamped_nonnegative(self, placed):
        # No deterministic mean, large walk: raw sums go negative but
        # the published shifts must not (NBTI only degrades).
        model = DriftModel(nbti=NbtiModel(prefactor_v=0.0),
                           activity_sigma_v=0.05)
        dvth = row_dvth_epochs(placed, model, seed=0, num_epochs=4)
        assert (dvth >= 0.0).all()
        assert (dvth == 0.0).any()

    def test_row_betas_shape_and_monotone_mean(self, placed):
        model = DriftModel(activity_sigma_v=0.0)
        betas = row_betas_epochs(placed, placed.library.tech, model,
                                 seed=0, num_epochs=5)
        assert betas.shape == (5, placed.num_rows)
        assert (betas >= 0.0).all()
        means = betas.mean(axis=1)
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_row_positions_one_site_per_row(self, placed):
        xs, ys = row_positions_um(placed)
        assert xs.shape == ys.shape == (placed.num_rows,)
        np.testing.assert_allclose(
            xs, placed.floorplan.core_width_um / 2.0)
        assert len(np.unique(ys)) == placed.num_rows

    def test_bad_epoch_counts_rejected(self, placed):
        model = DriftModel()
        with pytest.raises(ReproError):
            row_dvth_epochs(placed, model, seed=0, num_epochs=0)
        with pytest.raises(ReproError):
            epoch_increment_v(placed, model, seed=0, epoch=-1)
