"""Tests for process/temperature/aging variation models."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import ReproError
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import Technology, reduced_library
from repro.variation import (NbtiModel, ProcessModel, TemperatureModel,
                             delay_multiplier_for_dvth,
                             delay_multipliers_for_dvth, gate_delay_scales,
                             sample_dies, sample_intra_die_dvth,
                             sample_intra_die_dvth_matrix,
                             sample_scale_matrix)

LIBRARY = reduced_library()
TECH = Technology()


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=8, check_bits=4), LIBRARY)
    return place_design(mapped, LIBRARY)


class TestDelaySensitivity:
    def test_zero_shift_is_identity(self):
        assert delay_multiplier_for_dvth(TECH, 0.0) == pytest.approx(1.0)

    def test_slower_for_higher_vth(self):
        assert delay_multiplier_for_dvth(TECH, 0.03) > 1.0
        assert delay_multiplier_for_dvth(TECH, -0.03) < 1.0

    def test_monotone(self):
        shifts = np.linspace(-0.05, 0.08, 12)
        values = [delay_multiplier_for_dvth(TECH, s) for s in shifts]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestProcessModel:
    def test_validation(self):
        with pytest.raises(ReproError):
            ProcessModel(sigma_inter_v=-0.01)
        with pytest.raises(ReproError):
            ProcessModel(intra_independent_fraction=1.5)
        with pytest.raises(ReproError):
            ProcessModel(intra_grid_levels=0)

    def test_intra_die_reproducible(self, placed):
        model = ProcessModel()
        first = sample_intra_die_dvth(placed, model,
                                      np.random.default_rng(5))
        second = sample_intra_die_dvth(placed, model,
                                       np.random.default_rng(5))
        assert first == second

    def test_intra_die_spatially_correlated(self, placed):
        """Neighbouring gates must be more alike than distant ones."""
        model = ProcessModel(sigma_intra_v=0.015,
                             intra_independent_fraction=0.1)
        names = list(placed.netlist.gates)
        positions = {n: placed.gate_position_um(n) for n in names}
        diagonal = np.hypot(placed.floorplan.core_width_um,
                            placed.floorplan.core_height_um)
        near_pairs, far_pairs = [], []
        pair_rng = np.random.default_rng(0)
        # average over several dies: a single die's coarse grid is noisy
        for seed in range(8):
            shifts = sample_intra_die_dvth(
                placed, model, np.random.default_rng(100 + seed))
            for _ in range(2000):
                a, b = pair_rng.choice(len(names), 2, replace=False)
                na, nb = names[a], names[b]
                dist = np.hypot(positions[na][0] - positions[nb][0],
                                positions[na][1] - positions[nb][1])
                diff = abs(shifts[na] - shifts[nb])
                if dist < 0.15 * diagonal:
                    near_pairs.append(diff)
                elif dist > 0.5 * diagonal:
                    far_pairs.append(diff)
        assert near_pairs and far_pairs
        assert np.mean(near_pairs) < np.mean(far_pairs)

    def test_gate_scales_positive(self, placed):
        scales = gate_delay_scales(placed, ProcessModel(),
                                   np.random.default_rng(1))
        assert set(scales) == set(placed.netlist.gates)
        assert all(value > 0.5 for value in scales.values())


class TestScaleMatrix:
    def test_matrix_shape_and_positive(self, placed):
        names = list(placed.netlist.gates)
        matrix = sample_scale_matrix(placed, ProcessModel(),
                                     np.random.default_rng(1), 12, names)
        assert matrix.shape == (12, len(names))
        assert np.all(matrix > 0.5)

    def test_matrix_reproducible(self, placed):
        first = sample_scale_matrix(placed, ProcessModel(),
                                    np.random.default_rng(5), 6)
        second = sample_scale_matrix(placed, ProcessModel(),
                                     np.random.default_rng(5), 6)
        assert np.array_equal(first, second)

    def test_vectorized_multiplier_matches_scalar(self):
        shifts = np.linspace(-0.05, 0.4, 30)
        vectorized = delay_multipliers_for_dvth(TECH, shifts)
        for shift, value in zip(shifts, vectorized):
            assert value == pytest.approx(
                delay_multiplier_for_dvth(TECH, float(shift)), abs=1e-15)

    def test_bad_count_rejected(self, placed):
        with pytest.raises(ReproError):
            sample_intra_die_dvth_matrix(placed, ProcessModel(),
                                         np.random.default_rng(0), 0)


class TestCorrelationLength:
    """The correlation_length_fraction knob of ProcessModel."""

    def test_validation(self):
        with pytest.raises(ReproError):
            ProcessModel(correlation_length_fraction=0.0)
        with pytest.raises(ReproError):
            ProcessModel(correlation_length_fraction=1.5)

    def test_default_weights_unchanged(self):
        weights = ProcessModel().level_weights()
        assert np.allclose(weights, [1.0, 0.5, 0.25])

    def test_long_correlation_is_die_coherent(self):
        """At 1.0 the leading (die-level) entry dominates the bell."""
        weights = ProcessModel(
            correlation_length_fraction=1.0).level_weights()
        assert len(weights) == ProcessModel().intra_grid_levels + 1
        assert weights[0] == weights.max()

    def test_short_correlation_prefers_fine_grids(self):
        weights = ProcessModel(
            correlation_length_fraction=0.125).level_weights()
        assert weights.argmax() == len(weights) - 1

    def test_total_variance_preserved(self, placed):
        """The knob reshapes the field, not its per-gate variance."""
        sigmas = []
        for fraction in (None, 1.0, 0.25):
            model = ProcessModel(
                sigma_intra_v=0.03, intra_independent_fraction=0.1,
                correlation_length_fraction=fraction)
            matrix = sample_intra_die_dvth_matrix(
                placed, model, np.random.default_rng(4), 400)
            sigmas.append(matrix.std())
        assert max(sigmas) < 1.25 * min(sigmas)

    def test_long_correlation_flattens_each_die(self, placed):
        """Within-die spread shrinks as the length grows (the variance
        moves into the die-coherent component)."""
        spreads = {}
        for fraction in (1.0, 0.125):
            model = ProcessModel(
                sigma_intra_v=0.03, intra_independent_fraction=0.05,
                correlation_length_fraction=fraction)
            matrix = sample_intra_die_dvth_matrix(
                placed, model, np.random.default_rng(4), 200)
            spreads[fraction] = matrix.std(axis=1).mean()
        assert spreads[1.0] < spreads[0.125]


class TestMonteCarlo:
    def test_population_statistics(self, placed):
        result = sample_dies(placed, 40, seed=2)
        assert len(result.samples) == 40
        betas = result.betas
        assert betas.std() > 0
        assert -0.3 < betas.mean() < 0.3

    def test_engines_agree_bitwise(self, placed):
        """Batched and scalar engines see the same scale matrix and must
        produce identical betas (the DESIGN.md validation contract)."""
        batched = sample_dies(placed, 25, seed=4, engine="batched")
        scalar = sample_dies(placed, 25, seed=4, engine="scalar")
        assert np.array_equal(batched.betas, scalar.betas)
        assert batched.nominal_delay_ps == scalar.nominal_delay_ps

    def test_unknown_engine_rejected(self, placed):
        with pytest.raises(ReproError):
            sample_dies(placed, 4, engine="gpu")

    def test_store_scales_off_keeps_matrix(self, placed):
        result = sample_dies(placed, 5, seed=1, store_scales=False)
        assert result.samples[0].gate_scales == {}
        assert result.scale_matrix is not None
        rebuilt = result.gate_scales_of(3)
        assert set(rebuilt) == set(placed.netlist.gates)

    def test_gate_scales_match_matrix(self, placed):
        result = sample_dies(placed, 3, seed=6)
        assert result.samples[2].gate_scales == result.gate_scales_of(2)

    def test_direct_construction_derives_betas(self, placed):
        """The pre-batched constructor surface still works: betas are
        derived from samples when not supplied."""
        from repro.variation import DieSample, MonteCarloResult
        samples = (DieSample(0, 0.02, {}), DieSample(1, -0.01, {}))
        result = MonteCarloResult(samples=samples, nominal_delay_ps=100.0)
        assert np.array_equal(result.betas, [0.02, -0.01])
        assert result.timing_yield() == 0.5

    def test_yield_decreases_with_tighter_budget(self, placed):
        result = sample_dies(placed, 40, seed=2)
        assert (result.timing_yield(0.10)
                >= result.timing_yield(0.0))

    def test_slow_dies_filter(self, placed):
        result = sample_dies(placed, 40, seed=2)
        for die in result.slow_dies():
            assert die.beta > 0
            assert die.is_slow

    def test_bad_count_rejected(self, placed):
        with pytest.raises(ReproError):
            sample_dies(placed, 0)


class TestMonteCarloEdgeCases:
    """MonteCarloResult corner cases: single-gate designs, threshold
    boundaries, missing matrices (ISSUE 4 satellite)."""

    @pytest.fixture(scope="class")
    def single_gate_placed(self):
        from repro.netlist.core import Netlist
        from repro.placement import place_design as place
        netlist = Netlist("one_inv")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("u1", "INV", ["a"], "y")
        from repro.synth import map_netlist as remap
        return place(remap(netlist, LIBRARY), LIBRARY)

    def test_single_gate_population(self, single_gate_placed):
        result = sample_dies(single_gate_placed, 16, seed=3)
        assert result.scale_matrix.shape == (16, 1)
        assert result.gate_names == ("u1",)
        assert np.all(result.betas > -1.0)
        rebuilt = result.gate_scales_of(7)
        assert rebuilt == {"u1": result.scale_matrix[7, 0]}

    def test_single_gate_engines_agree(self, single_gate_placed):
        batched = sample_dies(single_gate_placed, 9, seed=2,
                              engine="batched")
        scalar = sample_dies(single_gate_placed, 9, seed=2,
                             engine="scalar")
        assert np.array_equal(batched.betas, scalar.betas)

    def test_gate_scales_of_without_matrix_raises(self, placed):
        import dataclasses
        result = sample_dies(placed, 3, seed=1)
        stripped = dataclasses.replace(result, scale_matrix=None)
        with pytest.raises(ReproError, match="scale matrix"):
            stripped.gate_scales_of(0)

    def test_slow_dies_threshold_is_strict(self, placed):
        """A die exactly at the threshold is *not* slow: the tuning
        budget contract is beta > threshold, matching timing_yield's
        beta <= budget."""
        result = sample_dies(placed, 20, seed=2)
        boundary = float(result.betas[4])
        slow = result.slow_dies(boundary)
        assert all(die.beta > boundary for die in slow)
        assert result.samples[4] not in slow
        # complementarity: yield fraction + slow fraction == 1
        assert (len(slow) / result.num_dies
                == pytest.approx(1.0 - result.timing_yield(boundary)))

    def test_slow_dies_extreme_thresholds(self, placed):
        result = sample_dies(placed, 20, seed=2)
        assert result.slow_dies(result.betas.max()) == []
        assert len(result.slow_dies(-1.0)) == result.num_dies


class TestTemperature:
    def test_reference_is_identity(self):
        model = TemperatureModel()
        assert model.delay_multiplier(300.0) == pytest.approx(1.0)
        assert model.leakage_multiplier(300.0) == pytest.approx(1.0)

    def test_hotter_is_slower_and_leakier(self):
        model = TemperatureModel()
        assert model.delay_multiplier(380.0) > 1.0
        assert model.leakage_multiplier(380.0) > 5.0

    def test_leakage_doubles_per_interval(self):
        model = TemperatureModel(leakage_doubling_k=25.0)
        assert model.leakage_multiplier(325.0) == pytest.approx(2.0)

    def test_beta_clamped_nonnegative(self):
        model = TemperatureModel()
        assert model.slowdown_beta(250.0) == 0.0

    def test_bad_temperature_rejected(self):
        with pytest.raises(ReproError):
            TemperatureModel().delay_multiplier(-5)


class TestAging:
    def test_no_stress_no_shift(self):
        model = NbtiModel()
        assert model.dvth_v(0.0) == 0.0

    def test_power_law_growth(self):
        model = NbtiModel()
        one_year = model.dvth_v(model.reference_s)
        four_years = model.dvth_v(4 * model.reference_s)
        assert four_years == pytest.approx(
            one_year * 4 ** model.exponent, rel=1e-9)

    def test_slowdown_grows_with_stress(self):
        model = NbtiModel()
        betas = [model.slowdown_beta(TECH, y * model.reference_s)
                 for y in (1, 3, 10)]
        assert betas[0] < betas[1] < betas[2]

    def test_years_to_beta_round_trip(self):
        model = NbtiModel()
        years = model.years_to_beta(TECH, 0.05)
        beta = model.slowdown_beta(
            TECH, years * model.reference_s)
        assert beta >= 0.05

    def test_negative_stress_rejected(self):
        with pytest.raises(ReproError):
            NbtiModel().dvth_v(-1.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            NbtiModel(exponent=1.5)
