"""Smoke-run every example script (the paper-scenario walkthroughs).

The examples were lint-checked but never executed, so they could rot
silently against API changes.  This suite runs each ``examples/*.py``
in a subprocess with ``REPRO_EXAMPLE_TINY=1`` — the seconds-scale
configuration every example honours (smallest benchmark, shrunk die
counts) — and asserts a clean exit with real output.  ``make examples``
runs the same scripts at full size.

Discovery is by glob, so a newly added example is guarded the moment
it lands.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: generous per-script budget; tiny runs finish in a few seconds
TIMEOUT_S = 180


def test_examples_discovered():
    """The glob must keep finding the shipped walkthroughs."""
    names = [path.name for path in EXAMPLE_SCRIPTS]
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS,
                         ids=[path.stem for path in EXAMPLE_SCRIPTS])
def test_example_runs_clean_in_tiny_mode(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_TINY"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, str(script)], env=env, cwd=str(REPO_ROOT),
        capture_output=True, text=True, timeout=TIMEOUT_S)
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}")
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_honour_tiny_mode():
    """Every example must read REPRO_EXAMPLE_TINY so the smoke suite
    actually exercises a shrunk configuration, not the full run."""
    for script in EXAMPLE_SCRIPTS:
        text = script.read_text(encoding="utf-8")
        assert "REPRO_EXAMPLE_TINY" in text, (
            f"{script.name} ignores REPRO_EXAMPLE_TINY (add a tiny "
            "configuration so tests/test_examples.py stays fast)")
