"""Tests for the MILP substrate: simplex, branch & bound, HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.ilp import (MilpModel, Sense, Status, solve_branch_bound,
                       solve_highs, solve_lp)


class TestSimplex:
    def test_simple_lp(self):
        # min -x - y  s.t. x + y <= 4, x <= 3, y <= 2
        result = solve_lp([-1, -1], a_ub=[[1, 1]], b_ub=[4],
                          upper=[3, 2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-4)

    def test_equality_constraint(self):
        # min x + y  s.t. x + y == 2
        result = solve_lp([1, 1], a_eq=[[1, 1]], b_eq=[2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(2)

    def test_infeasible(self):
        # x <= 1, x >= 2  (as -x <= -2)
        result = solve_lp([1], a_ub=[[1], [-1]], b_ub=[1, -2])
        assert result.status == "infeasible"

    def test_unbounded(self):
        result = solve_lp([-1])
        assert result.status == "unbounded"

    def test_shifted_lower_bounds(self):
        # min x with x >= 5
        result = solve_lp([1], lower=[5], upper=[10])
        assert result.objective == pytest.approx(5)

    def test_degenerate_redundant_rows(self):
        result = solve_lp([1, 1], a_eq=[[1, 1], [2, 2]], b_eq=[2, 4])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 4), st.integers(0, 10 ** 6))
    def test_matches_scipy_on_random_lps(self, num_vars, num_cons, seed):
        rng = np.random.default_rng(seed)
        c = rng.uniform(-1, 1, num_vars)
        a_ub = rng.uniform(-1, 1, (num_cons, num_vars))
        b_ub = rng.uniform(0.5, 2.0, num_cons)  # x=0 always feasible
        upper = np.full(num_vars, 10.0)
        mine = solve_lp(c, a_ub=a_ub, b_ub=b_ub, upper=upper)
        from scipy.optimize import linprog
        ref = linprog(c, A_ub=a_ub, b_ub=b_ub,
                      bounds=[(0, 10)] * num_vars, method="highs")
        assert mine.status == "optimal"
        assert ref.success
        assert mine.objective == pytest.approx(ref.fun, abs=1e-6)


def knapsack_model() -> MilpModel:
    """max 10x0 + 6x1 + 4x2  s.t. x0+x1+x2<=2 (as minimisation)."""
    model = MilpModel("knapsack")
    items = [model.add_binary(f"item{i}") for i in range(3)]
    model.set_objective({items[0]: -10, items[1]: -6, items[2]: -4})
    model.add_constraint({i: 1 for i in items}, Sense.LE, 2)
    return model


def infeasible_model() -> MilpModel:
    model = MilpModel("bad")
    x = model.add_binary()
    y = model.add_binary()
    model.set_objective({x: 1, y: 1})
    model.add_constraint({x: 1, y: 1}, Sense.GE, 3)
    return model


class TestBranchBound:
    def test_knapsack_optimal(self):
        solution = solve_branch_bound(knapsack_model())
        assert solution.status is Status.OPTIMAL
        assert solution.objective == pytest.approx(-16)
        assert solution.values[:2] == pytest.approx([1, 1])

    def test_infeasible(self):
        solution = solve_branch_bound(infeasible_model())
        assert solution.status is Status.INFEASIBLE

    def test_with_own_simplex(self):
        solution = solve_branch_bound(knapsack_model(), use_scipy_lp=False)
        assert solution.status is Status.OPTIMAL
        assert solution.objective == pytest.approx(-16)

    def test_node_limit_gives_timeout(self):
        model = MilpModel("hard")
        n = 14
        xs = [model.add_binary() for _ in range(n)]
        rng = np.random.default_rng(7)
        weights = rng.integers(3, 17, n)
        model.set_objective({x: -float(w) for x, w in zip(xs, weights)})
        model.add_constraint(
            {x: float(w) + 0.5 for x, w in zip(xs, weights)},
            Sense.LE, float(weights.sum()) / 2)
        solution = solve_branch_bound(model, max_nodes=2)
        assert solution.status in (Status.TIMEOUT, Status.OPTIMAL)

    def test_solution_checker(self):
        model = knapsack_model()
        solution = solve_branch_bound(model)
        assert model.check_solution(solution.values)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 10 ** 6))
    def test_matches_highs_on_random_knapsacks(self, num_items, seed):
        rng = np.random.default_rng(seed)
        model = MilpModel("rand")
        xs = [model.add_binary() for _ in range(num_items)]
        values = rng.integers(1, 20, num_items)
        weights = rng.integers(1, 10, num_items)
        model.set_objective({x: -float(v) for x, v in zip(xs, values)})
        model.add_constraint({x: float(w) for x, w in zip(xs, weights)},
                             Sense.LE, float(weights.sum()) * 0.4)
        mine = solve_branch_bound(model)
        ref = solve_highs(model)
        assert mine.status is Status.OPTIMAL
        assert ref.status is Status.OPTIMAL
        assert mine.objective == pytest.approx(ref.objective, abs=1e-6)


class TestHighs:
    def test_knapsack(self):
        solution = solve_highs(knapsack_model())
        assert solution.status is Status.OPTIMAL
        assert solution.objective == pytest.approx(-16)

    def test_infeasible(self):
        assert solve_highs(infeasible_model()).status is Status.INFEASIBLE

    def test_empty_model_rejected(self):
        with pytest.raises(SolverError):
            solve_highs(MilpModel("empty"))


class TestModel:
    def test_variable_bookkeeping(self):
        model = MilpModel()
        x = model.add_binary("flag")
        y = model.add_continuous(0, 5, "level")
        assert model.num_vars == 2
        assert model.variable_name(x) == "flag"
        assert model.variable_name(y) == "level"
        assert list(model.integer_mask) == [True, False]

    def test_bad_bounds_rejected(self):
        model = MilpModel()
        with pytest.raises(SolverError):
            model.add_continuous(3, 1)

    def test_unknown_index_rejected(self):
        model = MilpModel()
        model.add_binary()
        with pytest.raises(SolverError):
            model.set_objective({5: 1.0})
        with pytest.raises(SolverError):
            model.add_constraint({5: 1.0}, Sense.LE, 1)

    def test_empty_constraint_rejected(self):
        model = MilpModel()
        model.add_binary()
        with pytest.raises(SolverError):
            model.add_constraint({}, Sense.LE, 1)

    def test_matrix_form_flips_ge(self):
        model = MilpModel()
        x = model.add_binary()
        model.set_objective({x: 1})
        model.add_constraint({x: 2.0}, Sense.GE, 1.0)
        _c, a_ub, b_ub, _a_eq, _b_eq = model.to_matrix_form()
        assert a_ub[0, 0] == -2.0
        assert b_ub[0] == -1.0

    def test_check_solution_detects_violations(self):
        model = knapsack_model()
        bad = np.array([1.0, 1.0, 1.0])
        assert not model.check_solution(bad)
        good = np.array([1.0, 1.0, 0.0])
        assert model.check_solution(good)

    def test_check_solution_detects_fractional(self):
        model = knapsack_model()
        assert not model.check_solution(np.array([0.5, 0.0, 0.0]))
